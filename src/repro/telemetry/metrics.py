"""Counters, gauges, and histograms stamped in simulation time.

The registry follows the Prometheus data model — a metric has a name, a
help string, and one sample per label set — but values are driven by the
simulated clock (bytes moved, barrier stall seconds), with one deliberate
exception: wall-clock histograms such as the shim->service IPC hop, which
measure the *reproduction's* processing cost rather than modelled time.

Metric objects are cheap dictionaries; the hot path (``Counter.inc`` from
a flow-completion callback) is one dict lookup plus an add.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

LabelKey = Tuple[Tuple[str, str], ...]

#: Default buckets for simulated-time durations (seconds).  Collectives in
#: the reproduced scenarios span ~100us (small ops) to ~10s (large jobs).
DEFAULT_SIM_BUCKETS: Tuple[float, ...] = (
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

#: Buckets for wall-clock measurements of the reproduction itself
#: (command-queue dispatch, policy compute), in seconds.
WALL_CLOCK_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 1e-2, 0.1, 1.0,
)


def _label_key(labels: Dict[str, object]) -> LabelKey:
    # Hot path: flow lifecycle counters carry zero or one label.
    if not labels:
        return ()
    if len(labels) == 1:
        ((k, v),) = labels.items()
        return ((k, str(v)),)
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value, one stream per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        return sum(self._values.values())

    def samples(self) -> List[Tuple[Dict[str, str], float]]:
        return [(dict(key), value) for key, value in sorted(self._values.items())]


class Gauge:
    """A value that can go up and down (active flows, live versions)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> List[Tuple[Dict[str, str], float]]:
        return [(dict(key), value) for key, value in sorted(self._values.items())]


class _HistogramState:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * (n_buckets + 1)  # + the +Inf bucket
        self.sum = 0.0
        self.count = 0


class Histogram:
    """Bucketed distribution with Prometheus ``le`` (inclusive) semantics."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_SIM_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        if any(math.isinf(b) for b in bounds):
            raise ValueError("the +Inf bucket is implicit; do not pass it")
        self.name = name
        self.help = help
        self.buckets = bounds
        self._states: Dict[LabelKey, _HistogramState] = {}

    def _state(self, labels: Dict[str, object]) -> _HistogramState:
        key = _label_key(labels)
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _HistogramState(len(self.buckets))
        return state

    def observe(self, value: float, **labels: object) -> None:
        state = self._state(labels)
        # First bucket whose upper bound is >= value (le semantics).
        index = bisect.bisect_left(self.buckets, value)
        state.bucket_counts[index] += 1
        state.sum += value
        state.count += 1

    def count(self, **labels: object) -> int:
        state = self._states.get(_label_key(labels))
        return state.count if state else 0

    def total(self, **labels: object) -> float:
        state = self._states.get(_label_key(labels))
        return state.sum if state else 0.0

    def mean(self, **labels: object) -> Optional[float]:
        state = self._states.get(_label_key(labels))
        if state is None or state.count == 0:
            return None
        return state.sum / state.count

    def bucket_counts(self, **labels: object) -> List[Tuple[float, int]]:
        """Cumulative (upper_bound, count) pairs, ending with +Inf."""
        state = self._states.get(_label_key(labels))
        counts = state.bucket_counts if state else [0] * (len(self.buckets) + 1)
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, counts):
            running += n
            cumulative.append((bound, running))
        cumulative.append((math.inf, running + counts[-1]))
        return cumulative

    def samples(self) -> List[Tuple[Dict[str, str], _HistogramState]]:
        return [(dict(key), state) for key, state in sorted(self._states.items())]


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create home of every metric in one telemetry hub."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, help, **kwargs)
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        kwargs = {"buckets": buckets} if buckets is not None else {}
        return self._get_or_create(Histogram, name, help, **kwargs)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def collect(self) -> List[Metric]:
        """All metrics, in registration order."""
        return list(self._metrics.values())

    def counters(self) -> Dict[str, Counter]:
        return {m.name: m for m in self._metrics.values() if isinstance(m, Counter)}

    def gauges(self) -> Dict[str, Gauge]:
        return {m.name: m for m in self._metrics.values() if isinstance(m, Gauge)}

    def histograms(self) -> Dict[str, Histogram]:
        return {m.name: m for m in self._metrics.values() if isinstance(m, Histogram)}

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready dump of every metric and sample."""
        out: Dict[str, object] = {}
        for metric in self._metrics.values():
            if isinstance(metric, Histogram):
                samples = [
                    {
                        "labels": labels,
                        "count": state.count,
                        "sum": state.sum,
                        "buckets": [
                            ["+Inf" if math.isinf(le) else le, n]
                            for le, n in metric.bucket_counts(**labels)
                        ],
                    }
                    for labels, state in metric.samples()
                ]
            else:
                samples = [
                    {"labels": labels, "value": value}
                    for labels, value in metric.samples()
                ]
            out[metric.name] = {
                "kind": metric.kind,
                "help": metric.help,
                "samples": samples,
            }
        return out
