"""Per-tenant SLO accounting: rolling latency windows and QoS targets.

The paper's managed-service framing (§4.3, §6.4) makes the provider — not
the tenant — responsible for per-tenant performance targets.  This module
keeps the books:

* :class:`SloTracker` aggregates, per tenant, rolling p50/p95/p99
  collective latency, goodput, and deadline-miss / retry / shed / abort
  counts.  The registry's histograms are bucketed, so the tracker keeps
  its own bounded raw windows to compute true percentiles.
* :class:`SloPolicy` declares a target p99 per QoS class.  The tracker
  resolves each tenant's class through the admission controller's
  ``class_of`` (when admission control is armed) and emits one
  ``slo_violation`` event per excursion — edge-triggered, so a tenant
  sitting above target does not spam the event log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .ringbuffer import RingBuffer

if False:  # pragma: no cover - typing only
    from .events import EventLog
    from .metrics import MetricsRegistry


def _percentile(ordered: List[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not ordered:
        return 0.0
    rank = max(int(round(q * len(ordered) + 0.5)) - 1, 0)
    return ordered[min(rank, len(ordered) - 1)]


@dataclass(frozen=True)
class SloPolicy:
    """Declarative per-QoS-class latency targets.

    Args:
        p99_targets: QoS class -> target p99 collective latency (seconds).
            Classes absent from the map carry no target.
        window: Rolling-window capacity (samples) per tenant.
        min_samples: Violations are only evaluated once a tenant's window
            holds at least this many samples.
    """

    p99_targets: Dict[str, float] = field(default_factory=dict)
    window: int = 256
    min_samples: int = 20

    def target_for(self, qos_class: str) -> Optional[float]:
        return self.p99_targets.get(qos_class)


@dataclass
class _TenantBook:
    """One tenant's rolling accounts."""

    latencies: RingBuffer
    completed: int = 0
    bytes_moved: int = 0
    busy_seconds: float = 0.0
    deadline_misses: int = 0
    retries: int = 0
    sheds: int = 0
    aborts: int = 0
    violations: int = 0
    violating: bool = False


class SloTracker:
    """Rolling per-tenant SLO accounts with optional violation policy."""

    def __init__(
        self,
        *,
        policy: Optional[SloPolicy] = None,
        metrics: Optional["MetricsRegistry"] = None,
        events: Optional["EventLog"] = None,
    ) -> None:
        self.policy = policy or SloPolicy()
        self.events = events
        self._books: Dict[str, _TenantBook] = {}
        #: Resolves a tenant to its QoS class; the deployment installs the
        #: admission controller's ``class_of`` when admission is armed.
        self.class_resolver: Callable[[str], str] = lambda tenant: "normal"
        #: Fired on each p99-excursion with (tenant, p99, target, now);
        #: the deployment points this at the flight recorder.
        self.on_violation: Optional[
            Callable[[str, float, float, float], None]
        ] = None
        self._p50 = self._p99 = self._goodput = self._violations = None
        if metrics is not None:
            self._p50 = metrics.gauge(
                "mccs_slo_latency_p50_seconds",
                "Rolling-window median collective latency, by tenant.",
            )
            self._p99 = metrics.gauge(
                "mccs_slo_latency_p99_seconds",
                "Rolling-window p99 collective latency, by tenant.",
            )
            self._goodput = metrics.gauge(
                "mccs_slo_goodput_bytes_per_second",
                "Completed collective payload over busy time, by tenant.",
            )
            self._violations = metrics.counter(
                "mccs_slo_violations_total",
                "p99 excursions above the tenant's QoS-class target.",
            )

    # ------------------------------------------------------------------
    def _book(self, tenant: str) -> _TenantBook:
        book = self._books.get(tenant)
        if book is None:
            book = self._books[tenant] = _TenantBook(
                latencies=RingBuffer(self.policy.window)
            )
        return book

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_completion(
        self, tenant: str, duration_s: float, nbytes: int, now: float
    ) -> None:
        book = self._book(tenant)
        book.latencies.append(duration_s)
        book.completed += 1
        book.bytes_moved += nbytes
        book.busy_seconds += duration_s
        self._check_violation(tenant, book, now)

    def record_deadline_miss(self, tenant: str) -> None:
        self._book(tenant).deadline_misses += 1

    def record_retry(self, tenant: str) -> None:
        self._book(tenant).retries += 1

    def record_shed(self, tenant: str) -> None:
        self._book(tenant).sheds += 1

    def record_abort(self, tenant: str) -> None:
        self._book(tenant).aborts += 1

    # ------------------------------------------------------------------
    # violation policy (edge-triggered)
    # ------------------------------------------------------------------
    def _check_violation(self, tenant: str, book: _TenantBook, now: float) -> None:
        if len(book.latencies) < self.policy.min_samples:
            return
        qos_class = self.class_resolver(tenant)
        target = self.policy.target_for(qos_class)
        if target is None:
            return
        ordered = sorted(book.latencies)
        p99 = _percentile(ordered, 0.99)
        if p99 > target:
            if not book.violating:
                book.violating = True
                book.violations += 1
                if self._violations is not None:
                    self._violations.inc(tenant=tenant)
                if self.events is not None:
                    self.events.log(
                        now, "slo_violation",
                        f"tenant {tenant} p99 {p99:.4f}s exceeds "
                        f"{qos_class} target {target:.4f}s",
                        tenant=tenant, qos_class=qos_class,
                        p99=p99, target=target,
                    )
                if self.on_violation is not None:
                    self.on_violation(tenant, p99, target, now)
        else:
            book.violating = False

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def percentiles(self, tenant: str) -> Dict[str, float]:
        book = self._books.get(tenant)
        if book is None or len(book.latencies) == 0:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        ordered = sorted(book.latencies)
        return {
            "p50": _percentile(ordered, 0.50),
            "p95": _percentile(ordered, 0.95),
            "p99": _percentile(ordered, 0.99),
        }

    def tenants(self) -> List[str]:
        return sorted(self._books)

    def publish(self) -> None:
        """Refresh the Prometheus gauges from the rolling windows."""
        if self._p50 is None:
            return
        for tenant in self.tenants():
            book = self._books[tenant]
            pct = self.percentiles(tenant)
            self._p50.set(pct["p50"], tenant=tenant)
            self._p99.set(pct["p99"], tenant=tenant)
            goodput = (
                book.bytes_moved / book.busy_seconds
                if book.busy_seconds > 0
                else 0.0
            )
            self._goodput.set(goodput, tenant=tenant)

    def report(self) -> Dict[str, object]:
        """JSON-ready per-tenant account statement."""
        self.publish()
        out: Dict[str, object] = {}
        for tenant in self.tenants():
            book = self._books[tenant]
            pct = self.percentiles(tenant)
            out[tenant] = {
                "qos_class": self.class_resolver(tenant),
                "completed": book.completed,
                "bytes_moved": book.bytes_moved,
                "goodput_bytes_per_s": (
                    book.bytes_moved / book.busy_seconds
                    if book.busy_seconds > 0
                    else 0.0
                ),
                "latency_s": pct,
                "window_samples": len(book.latencies),
                "deadline_misses": book.deadline_misses,
                "retries": book.retries,
                "sheds": book.sheds,
                "aborts": book.aborts,
                "violations": book.violations,
                "violating": book.violating,
            }
        return out
