"""Bounded ring buffers for telemetry series.

Every unbounded list in a long-running service is a memory leak waiting
to happen; the telemetry layer stores all of its series — link-utilization
samples, spans, decision events — in fixed-capacity buffers with
oldest-first eviction, and keeps count of what it dropped so exporters
can say "truncated" instead of silently lying about coverage.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterator, List, TypeVar

T = TypeVar("T")


class RingBuffer(Generic[T]):
    """Fixed-capacity FIFO buffer with oldest-first eviction."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("ring buffer capacity must be positive")
        self.capacity = capacity
        self._items: Deque[T] = deque()
        self.evicted = 0

    def append(self, item: T) -> None:
        self._items.append(item)
        while len(self._items) > self.capacity:
            self._items.popleft()
            self.evicted += 1

    def extend(self, items) -> None:
        for item in items:
            self.append(item)

    def clear(self) -> None:
        self._items.clear()
        self.evicted = 0

    def to_list(self) -> List[T]:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __getitem__(self, index):
        return list(self._items)[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RingBuffer(len={len(self._items)}, capacity={self.capacity}, "
            f"evicted={self.evicted})"
        )
