"""Span-based tracing of collective and reconfiguration lifecycles.

A :class:`Span` is one named interval on the simulation clock, optionally
nested under a parent span and carrying point events ("rank_launch",
"first_flow_start", ...).  The service opens one root span per collective
as the request crosses the shim->frontend boundary and phase children as
it moves through the proxy and transport layers:

    allreduce c0.s3                    [issue ............. last flow end]
      queued                           [issue .. first proxy launch]
      launch                                    [launch .. first flow]
      network                                            [flows draining]

Reconfigurations get their own root span with a ``barrier`` child, so the
Figure 4 stall is directly visible in a Chrome trace.  The per-collective
:class:`~repro.core.tracing.TraceRecord` timestamps are *views* over these
spans — the spans are the source of truth.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from .ringbuffer import RingBuffer

#: Canonical point-event names stamped on collective spans.
EVENT_RANK_LAUNCH = "rank_launch"
EVENT_FIRST_FLOW_START = "first_flow_start"
EVENT_LAST_FLOW_END = "last_flow_end"
EVENT_BARRIER_RESOLVED = "barrier_resolved"
EVENT_RANK_APPLIED = "rank_applied"
EVENT_HELD = "held_by_reconfig"


class Span:
    """One interval on the simulated clock."""

    __slots__ = ("span_id", "name", "category", "start", "end", "parent_id",
                 "attrs", "events")

    def __init__(
        self,
        span_id: int,
        name: str,
        start: float,
        *,
        category: str = "span",
        parent_id: Optional[int] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        self.span_id = span_id
        self.name = name
        self.category = category
        self.start = start
        self.end: Optional[float] = None
        self.parent_id = parent_id
        self.attrs: Dict[str, object] = dict(attrs or {})
        self.events: List[Tuple[str, float, Dict[str, object]]] = []

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def finish(self, t: float) -> "Span":
        if self.end is not None:
            raise ValueError(f"span {self.name!r} finished twice")
        if t < self.start:
            raise ValueError(f"span {self.name!r} cannot end before it starts")
        self.end = t
        return self

    def mark(self, name: str, t: float, **attrs: object) -> None:
        """Stamp a point event on the span."""
        self.events.append((name, t, dict(attrs)))

    def event_time(self, name: str) -> Optional[float]:
        """Time of the first event called ``name``, or None."""
        for event_name, t, _ in self.events:
            if event_name == name:
                return t
        return None

    def event_times(self, name: str) -> List[float]:
        return [t for event_name, t, _ in self.events if event_name == name]

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
            "events": [
                {"name": name, "time": t, "attrs": attrs}
                for name, t, attrs in self.events
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = f"{self.end:.6f}" if self.end is not None else "..."
        return f"Span({self.name!r}, [{self.start:.6f}, {end}], id={self.span_id})"


class SpanRecorder:
    """Bounded store of every span recorded by one telemetry hub.

    Span ids are assigned from a per-recorder counter, so exports are
    deterministic run to run.  The buffer keeps the most recent
    ``max_spans`` spans; the eviction count is reported by exporters.
    """

    def __init__(self, max_spans: int = 8192) -> None:
        self._spans: RingBuffer[Span] = RingBuffer(max_spans)
        self._ids = itertools.count(1)

    def begin(
        self,
        name: str,
        t: float,
        *,
        category: str = "span",
        parent: Optional[Span] = None,
        **attrs: object,
    ) -> Span:
        span = Span(
            next(self._ids),
            name,
            t,
            category=category,
            parent_id=parent.span_id if parent is not None else None,
            attrs=attrs,
        )
        self._spans.append(span)
        return span

    # ------------------------------------------------------------------
    def spans(self, category: Optional[str] = None) -> List[Span]:
        if category is None:
            return self._spans.to_list()
        return [s for s in self._spans if s.category == category]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self._spans if s.parent_id == span.span_id]

    def find(self, **attrs: object) -> List[Span]:
        """Spans whose attrs contain every given key/value pair."""
        return [
            s
            for s in self._spans
            if all(s.attrs.get(k) == v for k, v in attrs.items())
        ]

    @property
    def evicted(self) -> int:
        return self._spans.evicted

    def __len__(self) -> int:
        return len(self._spans)
