"""Baseline collective libraries the paper compares against."""

from .nccl import CollectiveOp, NcclCommunicator, default_channels

__all__ = ["CollectiveOp", "NcclCommunicator", "default_channels"]
