"""An NCCL-like collective communication library (the paper's baseline).

This models how NCCL v2.17.1 behaves from the perspective that matters to
the evaluation (§2, §4.2):

* the collective **strategy is fixed at communicator initialization** —
  inter-host rings follow the user-specified rank ordering, and nothing
  can change once the job starts;
* the library is **network-agnostic** — it opens one connection per
  (peer, channel) and leaves path selection to ECMP, so connections can
  collide on the same physical path;
* in a virtualized public cloud it **cannot see the fabric**, so it has no
  way to build rack-aware rings (the tenant would need expert knowledge of
  the provider's topology to pick a good GPU-to-rank mapping).

The ``NCCL(OR)`` baseline of the paper — NCCL with a manually injected
optimal ring — is expressed by passing ``ring_order`` to the constructor.

Like the rest of the reproduction, a communicator is driven by a single
simulation process that issues collectives for all ranks at once; this is
the standard collapsed-driver style for simulators and does not change
any traffic or timing behaviour.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.gpu import AsyncOp, GpuDevice, Stream
from ..cluster.specs import Cluster
from ..collectives.cost_model import LatencyModel, NCCL_LATENCY
from ..collectives.ring import RingDataPlane, RingSchedule, identity_ring
from ..collectives.tree import double_binary_trees
from ..collectives.types import Collective, ReduceOp, validate_world
from ..netsim.errors import CommunicatorError
from ..netsim.routing import EcmpSelector, PathSelector
from ..transport.connections import ConnectionTable
from ..transport.launcher import FlowTransport, LaunchHandle

_comm_counter = itertools.count()


def default_channels(gpus: Sequence[GpuDevice]) -> int:
    """NCCL-style default channel count: one per NIC the job can use.

    A job using k GPUs (and hence k virtual NICs) per host opens k
    channels, which is how the testbed's 8-GPU setup drives both 50G
    vNICs per host while the 4-GPU setup drives one.
    """
    per_host: Dict[int, int] = {}
    for gpu in gpus:
        per_host[gpu.host_id] = per_host.get(gpu.host_id, 0) + 1
    return max(per_host.values())


@dataclass
class CollectiveOp:
    """A single issued collective: timing handle plus optional data."""

    kind: Collective
    handle: Optional[LaunchHandle] = None
    outputs: Optional[List[np.ndarray]] = None
    issue_time: float = 0.0
    end_time: Optional[float] = None

    @property
    def completed(self) -> bool:
        return self.end_time is not None

    def duration(self) -> float:
        if self.end_time is None:
            raise ValueError("collective still in flight")
        return self.end_time - self.issue_time


class NcclCommunicator:
    """A communicator in the NCCL mould: strategy frozen at init time.

    Args:
        cluster: The cluster the job runs on.
        gpus: The job's GPUs **in user rank order** (rank i -> gpus[i]).
            NCCL wires the inter-host ring in exactly this order.
        channels: Connections per peer pair; defaults to the number of
            GPUs (== NICs) the job uses per host.
        ring_order: Optional rank permutation overriding the ring — this is
            the paper's NCCL(OR) baseline, where the operator manually
            feeds the locality-optimized ordering to NCCL.
        algorithm: ``"ring"`` or ``"tree"`` (double binary tree AllReduce).
        ecmp_seed: Seed of the ECMP hash function; varying it across trials
            models different 5-tuple hash outcomes.
        latency: Fixed-overhead model; NCCL's by default.
        job_id: Tag applied to all flows for fairness accounting.
    """

    def __init__(
        self,
        cluster: Cluster,
        gpus: Sequence[GpuDevice],
        *,
        channels: Optional[int] = None,
        ring_order: Optional[Sequence[int]] = None,
        algorithm: str = "ring",
        ecmp_seed: int = 0,
        latency: LatencyModel = NCCL_LATENCY,
        job_id: Optional[str] = None,
        selector: Optional[PathSelector] = None,
    ) -> None:
        validate_world(len(gpus))
        if algorithm not in ("ring", "tree", "auto"):
            raise CommunicatorError(f"unknown algorithm {algorithm!r}")
        self.comm_id = next(_comm_counter)
        self.cluster = cluster
        self.gpus = list(gpus)
        self.world = len(gpus)
        self.job_id = job_id or f"ncclcomm{self.comm_id}"
        self.algorithm = algorithm
        self.channels = channels if channels is not None else default_channels(gpus)
        if ring_order is not None:
            self.schedule = RingSchedule(tuple(ring_order))
        else:
            self.schedule = identity_ring(self.world)
        self.trees = double_binary_trees(self.schedule.order)
        self._latency = latency
        self._selector = selector or EcmpSelector(seed=ecmp_seed)
        self._transport = FlowTransport(cluster, latency)
        self._stream = Stream(cluster.sim, name=f"{self.job_id}.comm")
        self._table = ConnectionTable(cluster, discriminator=self.job_id)
        self._establish()
        self.destroyed = False
        self.ops: List[CollectiveOp] = []

    # ------------------------------------------------------------------
    def _establish(self) -> None:
        """Open the peer-to-peer connections the strategy needs.

        NCCL does this once when the communicator is created; the ECMP
        hash decided here sticks for the whole job.  With ``"auto"``
        selection both ring and tree connections are established up front
        (as NCCL does), and the algorithm is chosen per collective from
        the static cost model.
        """
        edges: List[Tuple[GpuDevice, GpuDevice]] = []
        for src_rank, dst_rank in self.schedule.edges():
            edges.append((self.gpus[src_rank], self.gpus[dst_rank]))
        if self.algorithm in ("tree", "auto"):
            for tree in self.trees:
                for child, parent in tree.edges():
                    edges.append((self.gpus[child], self.gpus[parent]))
                    edges.append((self.gpus[parent], self.gpus[child]))
        self._table.establish(edges, self.channels, self._selector)

    def _algorithm_for(self, kind: Collective, out_bytes: int) -> str:
        """Per-collective algorithm choice.

        Mirrors the static selection of classic libraries (§2.1): a
        latency/bandwidth cost model decides between ring and tree from
        the data length and participant count alone — with no knowledge
        of the actual network state, which is precisely the paper's
        critique.
        """
        if self.algorithm != "auto":
            return self.algorithm
        if kind is not Collective.ALL_REDUCE:
            return "ring"
        from ..collectives.cost_model import select_ring_or_tree

        nic_rate = self.cluster.topology.capacity_of(
            self.cluster.nic_of_channel(self.gpus[0], 0) + "->"
            + f"leaf{self.cluster.hosts[self.gpus[0].host_id].rack}"
        )
        return select_ring_or_tree(
            out_bytes, self.world, link_bandwidth=nic_rate * self.channels
        )

    @property
    def connections(self) -> ConnectionTable:
        return self._table

    def destroy(self) -> None:
        """ncclCommDestroy analogue: close all connections."""
        if not self.destroyed:
            self._table.teardown()
            self.destroyed = True

    # ------------------------------------------------------------------
    # collective API
    # ------------------------------------------------------------------
    def all_reduce(
        self,
        out_bytes: int,
        *,
        data: Optional[Sequence[np.ndarray]] = None,
        op: ReduceOp = ReduceOp.SUM,
        stream: Optional[Stream] = None,
        on_complete: Optional[Callable[[CollectiveOp, float], None]] = None,
    ) -> CollectiveOp:
        return self._collective(
            Collective.ALL_REDUCE, out_bytes, data, op, 0, stream, on_complete
        )

    def all_gather(
        self,
        out_bytes: int,
        *,
        data: Optional[Sequence[np.ndarray]] = None,
        stream: Optional[Stream] = None,
        on_complete: Optional[Callable[[CollectiveOp, float], None]] = None,
    ) -> CollectiveOp:
        return self._collective(
            Collective.ALL_GATHER, out_bytes, data, ReduceOp.SUM, 0, stream, on_complete
        )

    def reduce_scatter(
        self,
        out_bytes: int,
        *,
        data: Optional[Sequence[np.ndarray]] = None,
        op: ReduceOp = ReduceOp.SUM,
        stream: Optional[Stream] = None,
        on_complete: Optional[Callable[[CollectiveOp, float], None]] = None,
    ) -> CollectiveOp:
        return self._collective(
            Collective.REDUCE_SCATTER, out_bytes, data, op, 0, stream, on_complete
        )

    def broadcast(
        self,
        out_bytes: int,
        root: int = 0,
        *,
        data: Optional[Sequence[np.ndarray]] = None,
        stream: Optional[Stream] = None,
        on_complete: Optional[Callable[[CollectiveOp, float], None]] = None,
    ) -> CollectiveOp:
        return self._collective(
            Collective.BROADCAST, out_bytes, data, ReduceOp.SUM, root, stream, on_complete
        )

    def reduce(
        self,
        out_bytes: int,
        root: int = 0,
        *,
        data: Optional[Sequence[np.ndarray]] = None,
        op: ReduceOp = ReduceOp.SUM,
        stream: Optional[Stream] = None,
        on_complete: Optional[Callable[[CollectiveOp, float], None]] = None,
    ) -> CollectiveOp:
        return self._collective(
            Collective.REDUCE, out_bytes, data, op, root, stream, on_complete
        )

    # ------------------------------------------------------------------
    def _collective(
        self,
        kind: Collective,
        out_bytes: int,
        data: Optional[Sequence[np.ndarray]],
        op: ReduceOp,
        root: int,
        stream: Optional[Stream],
        on_complete: Optional[Callable[[CollectiveOp, float], None]],
    ) -> CollectiveOp:
        if self.destroyed:
            raise CommunicatorError("communicator has been destroyed")
        if out_bytes <= 0:
            raise CommunicatorError("collective size must be positive")
        if (
            kind is Collective.ALL_REDUCE
            and self._algorithm_for(kind, out_bytes) == "tree"
        ):
            return self._tree_all_reduce(out_bytes, data, op, stream, on_complete)
        result = CollectiveOp(kind=kind, issue_time=self.cluster.sim.now)
        self.ops.append(result)
        target_stream = stream if stream is not None else self._stream

        def finished(handle: LaunchHandle, now: float) -> None:
            result.end_time = now
            if data is not None:
                plane = RingDataPlane(self.schedule)
                result.outputs = plane.run(kind, list(data), op=op, root=root)
            kernel.complete()
            if on_complete is not None:
                on_complete(result, now)

        def inject() -> None:
            result.handle = self._transport.launch_ring(
                kind=kind,
                out_bytes=out_bytes,
                schedule=self.schedule,
                gpus_by_rank=self.gpus,
                table=self._table,
                channels=self.channels,
                job_id=self.job_id,
                root=root,
                on_complete=finished,
                tags={"comm": self.comm_id},
            )

        kernel = AsyncOp(name=f"{kind.value}", on_start=inject)
        target_stream.enqueue(kernel)
        return result

    def _tree_all_reduce(
        self,
        out_bytes: int,
        data: Optional[Sequence[np.ndarray]],
        op: ReduceOp,
        stream: Optional[Stream],
        on_complete: Optional[Callable[[CollectiveOp, float], None]],
    ) -> CollectiveOp:
        from ..collectives.tree import DoubleTreeDataPlane

        result = CollectiveOp(kind=Collective.ALL_REDUCE, issue_time=self.cluster.sim.now)
        self.ops.append(result)
        target_stream = stream if stream is not None else self._stream

        def finished(handle: LaunchHandle, now: float) -> None:
            result.end_time = now
            if data is not None:
                plane = DoubleTreeDataPlane(self.trees)
                result.outputs = plane.all_reduce(list(data), op)
            kernel.complete()
            if on_complete is not None:
                on_complete(result, now)

        def inject() -> None:
            result.handle = self._transport.launch_double_tree(
                out_bytes=out_bytes,
                trees=self.trees,
                gpus_by_rank=self.gpus,
                table=self._table,
                job_id=self.job_id,
                on_complete=finished,
                tags={"comm": self.comm_id},
            )

        kernel = AsyncOp(name="all_reduce_tree", on_start=inject)
        target_stream.enqueue(kernel)
        return result
