"""Simulated GPUs: device memory, streams, events and kernels.

The paper's prototype drives real CUDA devices; here we model exactly the
CUDA surface MCCS relies on (§4.1 of the paper):

* **device memory** — numpy-backed buffers identified by (device, buffer
  id), allocated/freed through the device, with byte-range validation;
* **streams** — in-order queues of operations owned by one process; a
  stream executes its head operation to completion before starting the
  next, on the shared simulation clock;
* **events** — one-shot synchronization objects that can be *recorded* on
  one stream and *waited on* by another, and that (unlike streams) can be
  shared across processes via IPC handles.

These semantics are what make the MCCS shim/service synchronization design
work, so they are reproduced faithfully and covered by their own tests.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

from ..netsim.engine import FlowSimulator
from ..netsim.errors import AllocationError

_buffer_counter = itertools.count()
_stream_counter = itertools.count()
_event_counter = itertools.count()


class DeviceBuffer:
    """A device memory allocation.

    The backing store is a numpy uint8 array; typed views are available via
    :meth:`view`.  ``(device.global_id, buffer_id)`` is globally unique.
    """

    def __init__(self, device: "GpuDevice", size: int) -> None:
        if size <= 0:
            raise AllocationError("allocation size must be positive")
        self.device = device
        self.size = int(size)
        self.buffer_id = next(_buffer_counter)
        self.data = np.zeros(self.size, dtype=np.uint8)
        self.freed = False

    def view(self, dtype: np.dtype = np.float32, offset: int = 0, count: Optional[int] = None) -> np.ndarray:
        """Typed view of the buffer starting at ``offset`` bytes."""
        if self.freed:
            raise AllocationError(f"use-after-free of buffer {self.buffer_id}")
        itemsize = np.dtype(dtype).itemsize
        if offset < 0 or offset % itemsize:
            raise ValueError("offset must be a non-negative multiple of itemsize")
        avail = (self.size - offset) // itemsize
        if count is None:
            count = avail
        if count > avail:
            raise ValueError("view extends past end of allocation")
        start = offset // itemsize
        return self.data.view(dtype)[start : start + count]

    def contains(self, offset: int, nbytes: int) -> bool:
        """True if [offset, offset+nbytes) lies inside this allocation."""
        return 0 <= offset and offset + nbytes <= self.size

    def __repr__(self) -> str:  # pragma: no cover
        return f"DeviceBuffer(dev={self.device.global_id}, id={self.buffer_id}, size={self.size})"


class Event:
    """A CUDA-event-like one-shot synchronization primitive."""

    def __init__(self, name: Optional[str] = None) -> None:
        self.event_id = next(_event_counter)
        self.name = name or f"event{self.event_id}"
        self._fired = False
        self._waiters: List[Callable[[], None]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    def record(self) -> None:
        """Mark the event as reached; release all waiters."""
        self._fired = True
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter()

    def reset(self) -> None:
        """Re-arm the event (CUDA events are reusable after re-record)."""
        self._fired = False

    def on_fire(self, callback: Callable[[], None]) -> None:
        if self._fired:
            callback()
        else:
            self._waiters.append(callback)


class StreamOp:
    """Base class of operations that a stream executes in order."""

    name = "op"

    def start(self, stream: "Stream", done: Callable[[], None]) -> None:
        raise NotImplementedError


class ComputeOp(StreamOp):
    """A kernel occupying the stream for a fixed duration."""

    def __init__(self, duration: float, name: str = "compute") -> None:
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.duration = duration
        self.name = name

    def start(self, stream: "Stream", done: Callable[[], None]) -> None:
        if self.duration == 0:
            done()
        else:
            stream.sim.call_in(self.duration, done)


class MemcpyOp(ComputeOp):
    """A host<->device copy occupying the stream (cudaMemcpyAsync).

    Training loops spend measurable time here (the "Memcpy" share of the
    paper's Figure 2); the duration is bytes over the PCIe link rate.
    """

    def __init__(self, nbytes: int, pcie_rate: float, direction: str = "h2d") -> None:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if pcie_rate <= 0:
            raise ValueError("pcie_rate must be positive")
        if direction not in ("h2d", "d2h"):
            raise ValueError(f"unknown direction {direction!r}")
        super().__init__(nbytes / pcie_rate, name=f"memcpy:{direction}")
        self.nbytes = nbytes
        self.direction = direction


class AsyncOp(StreamOp):
    """An operation completed externally (e.g. a collective kernel).

    The owner calls :meth:`complete` when the underlying work (network
    flows in our model) finishes.
    """

    def __init__(
        self,
        name: str = "async",
        on_start: Optional[Callable[[], None]] = None,
    ) -> None:
        self.name = name
        self.on_start = on_start
        self._done: Optional[Callable[[], None]] = None
        self._completed_early = False
        self.started = False

    def start(self, stream: "Stream", done: Callable[[], None]) -> None:
        self.started = True
        if self._completed_early:
            if self.on_start is not None:
                self.on_start()
            done()
        else:
            self._done = done
            if self.on_start is not None:
                self.on_start()

    def complete(self) -> None:
        if self._done is not None:
            done, self._done = self._done, None
            done()
        else:
            self._completed_early = True


class RecordEventOp(StreamOp):
    """Record ``event`` when the stream reaches this point."""

    def __init__(self, event: Event) -> None:
        self.event = event
        self.name = f"record:{event.name}"

    def start(self, stream: "Stream", done: Callable[[], None]) -> None:
        self.event.record()
        done()


class WaitEventOp(StreamOp):
    """Block the stream until ``event`` fires."""

    def __init__(self, event: Event) -> None:
        self.event = event
        self.name = f"wait:{event.name}"

    def start(self, stream: "Stream", done: Callable[[], None]) -> None:
        self.event.on_fire(done)


class CallbackOp(StreamOp):
    """Run a host callback in stream order (cudaLaunchHostFunc analogue)."""

    def __init__(self, fn: Callable[[], None], name: str = "callback") -> None:
        self.fn = fn
        self.name = name

    def start(self, stream: "Stream", done: Callable[[], None]) -> None:
        self.fn()
        done()


class Stream:
    """An in-order operation queue bound to the simulation clock.

    Streams belong to a single process (this is why the MCCS service cannot
    share the application's streams and must bridge with events — §4.1).
    """

    def __init__(self, sim: FlowSimulator, name: Optional[str] = None) -> None:
        self.sim = sim
        self.stream_id = next(_stream_counter)
        self.name = name or f"stream{self.stream_id}"
        self._queue: Deque[StreamOp] = deque()
        self._running: Optional[StreamOp] = None
        self.ops_executed = 0
        self.history: List[str] = []

    @property
    def idle(self) -> bool:
        return self._running is None and not self._queue

    def enqueue(self, op: StreamOp) -> StreamOp:
        """Append an operation; it runs after everything already queued."""
        self._queue.append(op)
        self._pump()
        return op

    def compute(self, duration: float, name: str = "compute") -> ComputeOp:
        return self.enqueue(ComputeOp(duration, name))  # type: ignore[return-value]

    def record_event(self, event: Event) -> None:
        self.enqueue(RecordEventOp(event))

    def wait_event(self, event: Event) -> None:
        self.enqueue(WaitEventOp(event))

    def add_callback(self, fn: Callable[[], None], name: str = "callback") -> None:
        self.enqueue(CallbackOp(fn, name))

    def synchronize(self, fn: Callable[[float], None]) -> None:
        """Invoke ``fn(now)`` once all currently queued work has drained."""
        self.add_callback(lambda: fn(self.sim.now), name="synchronize")

    def _pump(self) -> None:
        if self._running is not None or not self._queue:
            return
        op = self._queue.popleft()
        self._running = op

        def done() -> None:
            self._running = None
            self.ops_executed += 1
            self.history.append(op.name)
            self._pump()

        op.start(self, done)

    def __repr__(self) -> str:  # pragma: no cover
        state = "idle" if self.idle else f"running {self._running and self._running.name}"
        return f"Stream({self.name}, {state}, queued={len(self._queue)})"


class GpuDevice:
    """One simulated GPU.

    Attributes:
        global_id: Cluster-wide GPU index.
        host_id: Host the GPU is installed in.
        local_index: Index of the GPU within its host.
        memory_capacity: Total device memory in bytes.
    """

    def __init__(
        self,
        sim: FlowSimulator,
        global_id: int,
        host_id: int,
        local_index: int,
        memory_capacity: int = 24 * 1024**3,  # RTX 3090: 24 GB
        pcie_gBps: float = 12.0,  # effective PCIe 4.0 x16 host link
    ) -> None:
        self.sim = sim
        self.global_id = global_id
        self.host_id = host_id
        self.local_index = local_index
        self.memory_capacity = memory_capacity
        self.pcie_rate = pcie_gBps * 1e9
        self.memory_used = 0
        self._allocations: Dict[int, DeviceBuffer] = {}

    # -- memory ---------------------------------------------------------
    def allocate(self, size: int) -> DeviceBuffer:
        """cudaMalloc analogue."""
        if self.memory_used + size > self.memory_capacity:
            raise AllocationError(
                f"GPU {self.global_id} out of memory "
                f"({self.memory_used + size} > {self.memory_capacity})"
            )
        buf = DeviceBuffer(self, size)
        self._allocations[buf.buffer_id] = buf
        self.memory_used += buf.size
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        """cudaFree analogue; double-free raises."""
        if buf.buffer_id not in self._allocations:
            raise AllocationError(f"invalid free of buffer {buf.buffer_id}")
        del self._allocations[buf.buffer_id]
        self.memory_used -= buf.size
        buf.freed = True

    def allocation(self, buffer_id: int) -> Optional[DeviceBuffer]:
        return self._allocations.get(buffer_id)

    def allocations(self) -> List[DeviceBuffer]:
        return list(self._allocations.values())

    # -- execution ------------------------------------------------------
    def create_stream(self, name: Optional[str] = None) -> Stream:
        return Stream(self.sim, name=name or f"gpu{self.global_id}.stream")

    def memcpy(self, stream: Stream, nbytes: int, direction: str = "h2d") -> MemcpyOp:
        """Enqueue a host<->device copy on ``stream``."""
        op = MemcpyOp(nbytes, self.pcie_rate, direction)
        stream.enqueue(op)
        return op

    def __repr__(self) -> str:  # pragma: no cover
        return f"GpuDevice(id={self.global_id}, host={self.host_id}.{self.local_index})"
