"""Hosts and NICs of the simulated cluster.

A :class:`Host` groups GPUs and NICs, owns the host-local IPC registry and
knows its fabric endpoints.  The GPU->NIC affinity is the testbed's: GPU k
of a host sends inter-host traffic through NIC k (the paper emulates "two
50Gbps virtual NICs (one per GPU)" by rate-limiting IB traffic classes;
our fabric gives each virtual NIC its own capacitated link instead, which
is equivalent at the fluid level).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..netsim.fabric import local_link_id, nic_node
from .gpu import GpuDevice
from .ipc import IpcRegistry


@dataclass
class Nic:
    """One (possibly virtual) NIC: an endpoint node in the fabric.

    ``alive`` is flipped by fault injection; dead NICs are skipped by the
    channel->NIC rotation, so re-established connections fail over to the
    host's surviving NICs.
    """

    host_id: int
    index: int
    gbps: float
    alive: bool = True

    @property
    def node_id(self) -> str:
        return nic_node(self.host_id, self.index)


@dataclass
class Host:
    """A server with GPUs and NICs.

    Attributes:
        host_id: Cluster-wide host index.
        rack: Rack (leaf) index, derived from the fabric spec.
        gpus: The host's GPUs, ordered by local index.
        nics: The host's NICs, ordered by index.
        sysfs_visible: Whether guests can read the PCIe topology; public
            cloud virtualization typically hides it (§4.2), which is why
            a tenant-side NCCL cannot optimize the intra-host strategy.
        alive: False once the host has crashed (fault injection); a dead
            host's GPUs, NICs and proxy engines are unusable.
    """

    host_id: int
    rack: int
    gpus: List[GpuDevice] = field(default_factory=list)
    nics: List[Nic] = field(default_factory=list)
    sysfs_visible: bool = False
    alive: bool = True
    ipc: IpcRegistry = field(init=False)

    def __post_init__(self) -> None:
        self.ipc = IpcRegistry(self.host_id)

    @property
    def local_link(self) -> str:
        """Link id of the intra-host (NVLink/shm) channel."""
        return local_link_id(self.host_id)

    def gpu(self, local_index: int) -> GpuDevice:
        return self.gpus[local_index]

    def nic_for_gpu(self, gpu: GpuDevice) -> Nic:
        """GPU->NIC affinity: GPU k uses NIC k (mod NIC count)."""
        if gpu.host_id != self.host_id:
            raise ValueError(f"GPU {gpu.global_id} is not on host {self.host_id}")
        return self.nics[gpu.local_index % len(self.nics)]

    def alive_nics(self) -> List[Nic]:
        """The host's NICs that have not failed, in index order."""
        return [nic for nic in self.nics if nic.alive]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Host(id={self.host_id}, rack={self.rack}, "
            f"gpus={len(self.gpus)}, nics={len(self.nics)})"
        )
