"""Inter-process sharing of device memory and events (cudaIpc analogue).

CUDA lets a process export a device allocation or an event as an opaque
*IPC handle* that another process on the same host can open.  MCCS's memory
management and synchronization design (§4.1) is built on exactly these two
primitives, so we model them explicitly:

* the exporter calls :meth:`IpcRegistry.export_memory` /
  :meth:`IpcRegistry.export_event` and ships the returned handle over the
  command queue;
* the importer calls :meth:`IpcRegistry.open_memory` /
  :meth:`IpcRegistry.open_event` and gets a reference to the same object;
* handles are host-scoped: opening a handle exported on another host
  raises, as real cudaIpc does.

Closing a memory handle (as the shim must do before forwarding a
deallocation request) is tracked so tests can assert the protocol order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Set

from ..netsim.errors import ClusterError
from .gpu import DeviceBuffer, Event

_handle_counter = itertools.count()


class IpcError(ClusterError):
    """Invalid IPC handle usage."""


@dataclass(frozen=True)
class IpcMemHandle:
    """Opaque handle to a device allocation, valid within one host."""

    handle_id: int
    host_id: int


@dataclass(frozen=True)
class IpcEventHandle:
    """Opaque handle to an event, valid within one host."""

    handle_id: int
    host_id: int


class IpcRegistry:
    """Host-local broker for IPC handles.

    One registry exists per simulated host; both the applications and the
    MCCS service on that host share it (they really share the kernel
    driver, which is what the registry stands in for).
    """

    def __init__(self, host_id: int) -> None:
        self.host_id = host_id
        self._memory: Dict[int, DeviceBuffer] = {}
        self._events: Dict[int, Event] = {}
        self._open_memory: Set[int] = set()

    # -- memory ----------------------------------------------------------
    def export_memory(self, buf: DeviceBuffer) -> IpcMemHandle:
        if buf.freed:
            raise IpcError("cannot export a freed allocation")
        handle = IpcMemHandle(next(_handle_counter), self.host_id)
        self._memory[handle.handle_id] = buf
        return handle

    def open_memory(self, handle: IpcMemHandle) -> DeviceBuffer:
        self._check(handle.host_id)
        try:
            buf = self._memory[handle.handle_id]
        except KeyError:
            raise IpcError(f"unknown memory handle {handle.handle_id}") from None
        self._open_memory.add(handle.handle_id)
        return buf

    def close_memory(self, handle: IpcMemHandle) -> None:
        """cudaIpcCloseMemHandle analogue; must precede deallocation."""
        if handle.handle_id not in self._open_memory:
            raise IpcError(f"memory handle {handle.handle_id} is not open")
        self._open_memory.discard(handle.handle_id)

    def is_open(self, handle: IpcMemHandle) -> bool:
        return handle.handle_id in self._open_memory

    def revoke_memory(self, handle: IpcMemHandle) -> None:
        """Drop the export (called by the owner after freeing)."""
        if handle.handle_id in self._open_memory:
            raise IpcError(
                f"memory handle {handle.handle_id} still open at revoke time"
            )
        self._memory.pop(handle.handle_id, None)

    # -- events ----------------------------------------------------------
    def export_event(self, event: Event) -> IpcEventHandle:
        handle = IpcEventHandle(next(_handle_counter), self.host_id)
        self._events[handle.handle_id] = event
        return handle

    def open_event(self, handle: IpcEventHandle) -> Event:
        self._check(handle.host_id)
        try:
            return self._events[handle.handle_id]
        except KeyError:
            raise IpcError(f"unknown event handle {handle.handle_id}") from None

    def _check(self, host_id: int) -> None:
        if host_id != self.host_id:
            raise IpcError(
                f"handle from host {host_id} opened on host {self.host_id}; "
                "cudaIpc handles are host-local"
            )
