"""Cluster assembly: fabric + hosts + GPUs + the shared simulator clock.

A :class:`Cluster` ties the substrate together and is the root object the
baselines, the MCCS service and the experiment harness build upon.  The two
standard instantiations correspond to the paper's testbed (Figure 5a) and
its large-scale simulation (§6.5); the Figure 7 ring fabric gets its own
builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..netsim.engine import FlowSimulator
from ..netsim.errors import HostCrashedError, NicFailedError
from ..netsim.fabric import (
    Fabric,
    FabricSpec,
    RegionSpec,
    RingFabricSpec,
    large_cluster_fabric,
    multi_region,
    switch_ring,
    spine_leaf,
    testbed_fabric,
)
from .gpu import GpuDevice
from .host import Host, Nic


@dataclass
class ClusterSpec:
    """How many GPUs per host and their memory, layered on a fabric spec."""

    fabric: FabricSpec = field(default_factory=FabricSpec)
    gpus_per_host: int = 2
    gpu_memory: int = 24 * 1024**3


class Cluster:
    """The complete simulated installation.

    Attributes:
        sim: The shared :class:`FlowSimulator` clock and network.
        fabric: The built fabric (topology + spec).
        hosts: All hosts, indexed by host id.
        gpus: All GPUs, indexed by global GPU id
            (``host_id * gpus_per_host + local_index``).
    """

    def __init__(
        self,
        fabric: Fabric,
        gpus_per_host: int,
        gpu_memory: int = 24 * 1024**3,
        interference_penalty: float = 0.0,
        incremental: Optional[bool] = None,
        macro: Optional[bool] = None,
        sharded: Optional[bool] = None,
    ) -> None:
        self.fabric = fabric
        self.sim = FlowSimulator(
            fabric.topology,
            interference_penalty=interference_penalty,
            incremental=incremental,
            macro=macro,
            sharded=sharded,
        )
        self.gpus_per_host = gpus_per_host
        self.hosts: List[Host] = []
        self.gpus: List[GpuDevice] = []
        spec = fabric.spec
        for host_id in range(spec.num_hosts):
            host = Host(host_id=host_id, rack=spec.leaf_of_host(host_id))
            for k in range(spec.nics_per_host):
                host.nics.append(Nic(host_id=host_id, index=k, gbps=spec.nic_gbps))
            for k in range(gpus_per_host):
                gpu = GpuDevice(
                    self.sim,
                    global_id=host_id * gpus_per_host + k,
                    host_id=host_id,
                    local_index=k,
                    memory_capacity=gpu_memory,
                )
                host.gpus.append(gpu)
                self.gpus.append(gpu)
            self.hosts.append(host)

    # -- lookups ---------------------------------------------------------
    @property
    def topology(self):
        return self.fabric.topology

    @property
    def num_hosts(self) -> int:
        return len(self.hosts)

    @property
    def num_gpus(self) -> int:
        return len(self.gpus)

    def host_of(self, gpu: GpuDevice) -> Host:
        return self.hosts[gpu.host_id]

    def nic_of(self, gpu: GpuDevice) -> Nic:
        return self.host_of(gpu).nic_for_gpu(gpu)

    def nic_of_channel(self, gpu: GpuDevice, channel: int) -> str:
        """Fabric endpoint used by ``gpu`` for connections of ``channel``.

        Channel 0 uses the GPU's affine NIC; additional channels rotate
        over the host's NICs so multi-channel communicators exercise all
        of them (NCCL's channel->NIC assignment behaves the same way).
        The rotation only considers alive NICs, so connections established
        after a NIC failure fail over to the survivors; with every NIC
        dead (or the host crashed) this raises :class:`NicFailedError`.
        """
        host = self.hosts[gpu.host_id]
        if not host.alive:
            raise HostCrashedError(
                f"host {host.host_id} is down; GPU {gpu.global_id} unreachable"
            )
        nics = host.alive_nics()
        if not nics:
            raise NicFailedError(
                f"host {host.host_id} has no alive NICs for GPU {gpu.global_id}"
            )
        nic = nics[(gpu.local_index + channel) % len(nics)]
        return nic.node_id

    def rack_of(self, gpu: GpuDevice) -> int:
        return self.hosts[gpu.host_id].rack

    def gpu(self, global_id: int) -> GpuDevice:
        return self.gpus[global_id]

    def gpus_of_host(self, host_id: int) -> List[GpuDevice]:
        return list(self.hosts[host_id].gpus)

    def links_of_nic(self, host_id: int, nic_index: int) -> List[str]:
        """Fabric link ids adjacent to one NIC endpoint (both directions)."""
        nic = self.hosts[host_id].nics[nic_index]
        return [link.link_id for link in self.topology.links_of_node(nic.node_id)]

    def links_of_host(self, host_id: int) -> List[str]:
        """Every link that dies with ``host_id``: its NIC uplinks/downlinks
        plus the intra-host (NVLink/shm) channel."""
        host = self.hosts[host_id]
        link_ids = [host.local_link]
        for nic in host.nics:
            link_ids.extend(
                link.link_id for link in self.topology.links_of_node(nic.node_id)
            )
        return link_ids

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Cluster({self.fabric.spec.name!r}, hosts={self.num_hosts}, "
            f"gpus={self.num_gpus})"
        )


def testbed_cluster(interference_penalty: float = 0.0) -> Cluster:
    """The Figure 5a testbed: 4 hosts x 2 GPUs, 2 racks, 2:1 oversub."""
    return Cluster(
        testbed_fabric(),
        gpus_per_host=2,
        interference_penalty=interference_penalty,
    )


def large_cluster() -> Cluster:
    """The §6.5 simulation cluster: 768 GPUs over 96 hosts in 24 racks."""
    return Cluster(large_cluster_fabric(), gpus_per_host=8)


def multi_region_cluster(
    spec: Optional[RegionSpec] = None,
    *,
    gpus_per_host: int = 1,
    **engine_kwargs,
) -> Cluster:
    """A geo-distributed installation: per-region Clos fabrics joined by
    high-RTT, low-bandwidth WAN links (the elastic-WAN experiments)."""
    return Cluster(
        multi_region(spec if spec is not None else RegionSpec()),
        gpus_per_host=gpus_per_host,
        **engine_kwargs,
    )


def ring_cluster() -> Cluster:
    """The Figure 7 showcase: 4 hosts, each on its own switch, switches in
    a ring; 2 GPUs and 2 100G NICs per host (an 8-GPU AllReduce job)."""
    return Cluster(switch_ring(RingFabricSpec()), gpus_per_host=2)


def custom_cluster(
    *,
    num_spines: int,
    num_leaves: int,
    hosts_per_leaf: int,
    gpus_per_host: int,
    nics_per_host: Optional[int] = None,
    nic_gbps: float = 100.0,
    fabric_gbps: float = 100.0,
    name: str = "custom",
) -> Cluster:
    """Build an arbitrary spine-leaf cluster (used by sweeps and tests)."""
    fabric = spine_leaf(
        FabricSpec(
            num_spines=num_spines,
            num_leaves=num_leaves,
            hosts_per_leaf=hosts_per_leaf,
            nics_per_host=nics_per_host if nics_per_host is not None else gpus_per_host,
            nic_gbps=nic_gbps,
            fabric_gbps=fabric_gbps,
            name=name,
        )
    )
    return Cluster(fabric, gpus_per_host=gpus_per_host)
