"""Simulated cluster substrate: GPUs, streams, events, NICs, hosts.

Stands in for the paper's testbed hardware (RTX 3090s + ConnectX-5 NICs)
and for the 768-GPU simulated cluster, while preserving the CUDA semantics
(streams, events, IPC handles) MCCS's design depends on.
"""

from .gpu import (
    AsyncOp,
    CallbackOp,
    ComputeOp,
    DeviceBuffer,
    Event,
    GpuDevice,
    RecordEventOp,
    Stream,
    StreamOp,
    WaitEventOp,
)
from .host import Host, Nic
from .ipc import IpcError, IpcEventHandle, IpcMemHandle, IpcRegistry
from .placement import ClusterAllocator, hosts_spanned, racks_spanned
from .specs import (
    Cluster,
    ClusterSpec,
    custom_cluster,
    large_cluster,
    ring_cluster,
    testbed_cluster,
)

__all__ = [
    "AsyncOp",
    "CallbackOp",
    "Cluster",
    "ClusterAllocator",
    "ClusterSpec",
    "ComputeOp",
    "DeviceBuffer",
    "Event",
    "GpuDevice",
    "Host",
    "IpcError",
    "IpcEventHandle",
    "IpcMemHandle",
    "IpcRegistry",
    "Nic",
    "RecordEventOp",
    "Stream",
    "StreamOp",
    "WaitEventOp",
    "custom_cluster",
    "hosts_spanned",
    "large_cluster",
    "racks_spanned",
    "ring_cluster",
    "testbed_cluster",
]
