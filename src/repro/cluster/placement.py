"""Job-to-GPU placement policies for the large-scale simulation (§6.5).

The paper considers two placements: *random* ("the simulator allocates
randomly GPUs to a job") and *compact* ("the simulator assigns GPUs that
belong to the same rack to a job whenever possible").  Both operate on an
allocator that tracks which GPUs are free as jobs arrive and depart.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Set

from ..netsim.errors import PlacementError
from .gpu import GpuDevice
from .specs import Cluster


class ClusterAllocator:
    """Tracks free GPUs and serves placement requests."""

    def __init__(self, cluster: Cluster, seed: int = 0) -> None:
        self.cluster = cluster
        self._free: Set[int] = {g.global_id for g in cluster.gpus}
        self._rng = random.Random(seed)
        self._jobs: Dict[str, List[int]] = {}

    @property
    def free_count(self) -> int:
        return len(self._free)

    def gpus_of_job(self, job_id: str) -> List[GpuDevice]:
        return [self.cluster.gpu(i) for i in self._jobs.get(job_id, [])]

    def release(self, job_id: str) -> None:
        """Return a job's GPUs to the free pool."""
        for gpu_id in self._jobs.pop(job_id, []):
            self._free.add(gpu_id)

    # ------------------------------------------------------------------
    def place_random(self, job_id: str, num_gpus: int) -> List[GpuDevice]:
        """Uniformly random GPUs from the free pool."""
        if num_gpus > len(self._free):
            raise PlacementError(
                f"job {job_id}: need {num_gpus} GPUs, {len(self._free)} free"
            )
        chosen = self._rng.sample(sorted(self._free), num_gpus)
        self._commit(job_id, chosen)
        return [self.cluster.gpu(i) for i in chosen]

    def place_compact(self, job_id: str, num_gpus: int) -> List[GpuDevice]:
        """Prefer GPUs from as few racks (then hosts) as possible.

        Racks are considered in order of how many free GPUs they have
        (fullest first), so jobs pack into the least number of racks; ties
        are broken deterministically by rack id.
        """
        if num_gpus > len(self._free):
            raise PlacementError(
                f"job {job_id}: need {num_gpus} GPUs, {len(self._free)} free"
            )
        by_rack: Dict[int, List[int]] = {}
        for gpu_id in self._free:
            rack = self.cluster.rack_of(self.cluster.gpu(gpu_id))
            by_rack.setdefault(rack, []).append(gpu_id)
        order = sorted(by_rack, key=lambda r: (-len(by_rack[r]), r))
        chosen: List[int] = []
        for rack in order:
            # Within a rack, pack host by host so intra-host channels get
            # used before crossing hosts at all.
            rack_gpus = sorted(by_rack[rack])
            chosen.extend(rack_gpus[: num_gpus - len(chosen)])
            if len(chosen) == num_gpus:
                break
        self._commit(job_id, chosen)
        return [self.cluster.gpu(i) for i in chosen]

    def place(self, job_id: str, num_gpus: int, strategy: str) -> List[GpuDevice]:
        """Dispatch on strategy name: ``"random"`` or ``"compact"``."""
        if strategy == "random":
            return self.place_random(job_id, num_gpus)
        if strategy == "compact":
            return self.place_compact(job_id, num_gpus)
        raise ValueError(f"unknown placement strategy {strategy!r}")

    def _commit(self, job_id: str, gpu_ids: Sequence[int]) -> None:
        if job_id in self._jobs:
            raise PlacementError(f"job {job_id} already placed")
        for gpu_id in gpu_ids:
            self._free.discard(gpu_id)
        self._jobs[job_id] = list(gpu_ids)


def racks_spanned(cluster: Cluster, gpus: Sequence[GpuDevice]) -> int:
    """Number of distinct racks a GPU set touches."""
    return len({cluster.rack_of(g) for g in gpus})


def hosts_spanned(cluster: Cluster, gpus: Sequence[GpuDevice]) -> int:
    """Number of distinct hosts a GPU set touches."""
    return len({g.host_id for g in gpus})
