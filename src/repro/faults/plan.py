"""Fault plans: seedable, deterministic schedules of infrastructure faults.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent` entries.
Plans are built either explicitly (experiments injecting one well-placed
fault) or randomly from a single ``random.Random`` (chaos tests); both are
fully deterministic, so a failing chaos seed replays exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence, Tuple

if False:  # pragma: no cover - typing only
    from ..cluster.specs import Cluster


class FaultKind(str, Enum):
    """What kind of component fails (or recovers)."""

    LINK_DOWN = "link_down"
    LINK_UP = "link_up"
    LINK_DEGRADE = "link_degrade"
    LINK_RESTORE = "link_restore"
    NIC_FAIL = "nic_fail"
    NIC_RECOVER = "nic_recover"
    HOST_CRASH = "host_crash"
    #: The per-host MCCS *service process* dies; host and GPUs survive.
    SERVICE_CRASH = "service_crash"
    #: The service process is restarted (journal replay).
    ENGINE_RESTART = "engine_restart"
    #: A link's capacity is *resized* (WAN bandwidth drift).  Unlike
    #: ``LINK_DEGRADE`` the factor may exceed 1 and pinned routes are
    #: re-resolved, modelling a provider-side capacity change rather
    #: than a fault on the device.
    BANDWIDTH_DRIFT = "bandwidth_drift"
    #: One rank leaves a communicator gracefully (elastic shrink).
    RANK_LEAVE = "rank_leave"
    #: A new rank joins a communicator (elastic grow).
    RANK_JOIN = "rank_join"
    #: One tenant's request rate spikes by ``factor`` (a runaway app
    #: hammering the service gateway).
    TENANT_STORM = "tenant_storm"
    #: The storming tenant returns to its normal rate.
    TENANT_CALM = "tenant_calm"


#: Kinds that target a link id.
_LINK_KINDS = {
    FaultKind.LINK_DOWN,
    FaultKind.LINK_UP,
    FaultKind.LINK_DEGRADE,
    FaultKind.LINK_RESTORE,
    FaultKind.BANDWIDTH_DRIFT,
}
#: Kinds that target a (host, nic) pair.
_NIC_KINDS = {FaultKind.NIC_FAIL, FaultKind.NIC_RECOVER}
#: Kinds that target a host's service process.
_SERVICE_KINDS = {FaultKind.SERVICE_CRASH, FaultKind.ENGINE_RESTART}
#: Kinds that target a communicator's membership (elastic churn).
_MEMBERSHIP_KINDS = {FaultKind.RANK_LEAVE, FaultKind.RANK_JOIN}
#: Kinds that target one tenant application's traffic.
_TENANT_KINDS = {FaultKind.TENANT_STORM, FaultKind.TENANT_CALM}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes:
        time: Absolute simulation time the fault strikes.
        kind: What happens.
        link_id: Target link (link kinds only).
        host_id: Target host (NIC and host kinds).
        nic_index: Target NIC index within the host (NIC kinds only).
        factor: Remaining capacity fraction for ``LINK_DEGRADE``
            (0.25 = the link keeps a quarter of its capacity), or the
            resize multiplier for ``BANDWIDTH_DRIFT`` (may exceed 1).
        comm_id: Target communicator for the membership kinds
            (``RANK_LEAVE`` / ``RANK_JOIN``); ``None`` lets the injector
            pick one deterministically at fire time.
        app_id: Target tenant for the tenant kinds (``TENANT_STORM`` /
            ``TENANT_CALM``); ``factor`` is the storm's rate multiplier.
    """

    time: float
    kind: FaultKind
    link_id: Optional[str] = None
    host_id: Optional[int] = None
    nic_index: Optional[int] = None
    factor: float = 1.0
    comm_id: Optional[int] = None
    app_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("fault time must be non-negative")
        if self.kind in _LINK_KINDS and self.link_id is None:
            raise ValueError(f"{self.kind.value} needs a link_id")
        if self.kind in _NIC_KINDS and (
            self.host_id is None or self.nic_index is None
        ):
            raise ValueError(f"{self.kind.value} needs host_id and nic_index")
        if self.kind is FaultKind.HOST_CRASH and self.host_id is None:
            raise ValueError("host_crash needs a host_id")
        if self.kind in _SERVICE_KINDS and self.host_id is None:
            raise ValueError(f"{self.kind.value} needs a host_id")
        if self.kind is FaultKind.LINK_DEGRADE and not 0.0 < self.factor < 1.0:
            raise ValueError("degrade factor must be in (0, 1)")
        if self.kind is FaultKind.BANDWIDTH_DRIFT and self.factor <= 0.0:
            raise ValueError("drift factor must be positive")
        if self.kind in _TENANT_KINDS and self.app_id is None:
            raise ValueError(f"{self.kind.value} needs an app_id")
        if self.kind is FaultKind.TENANT_STORM and self.factor <= 1.0:
            raise ValueError("storm factor must exceed 1")

    def describe(self) -> str:
        if self.kind in _LINK_KINDS:
            target = self.link_id
        elif self.kind in _NIC_KINDS:
            target = f"h{self.host_id}.nic{self.nic_index}"
        elif self.kind in _MEMBERSHIP_KINDS:
            target = "comm*" if self.comm_id is None else f"comm{self.comm_id}"
        elif self.kind in _TENANT_KINDS:
            target = str(self.app_id)
        else:
            target = f"h{self.host_id}"
        extra = (
            f" x{self.factor:g}"
            if self.kind
            in (
                FaultKind.LINK_DEGRADE,
                FaultKind.BANDWIDTH_DRIFT,
                FaultKind.TENANT_STORM,
            )
            else ""
        )
        return f"t={self.time:g}s {self.kind.value} {target}{extra}"


@dataclass
class FaultPlan:
    """An ordered schedule of fault events.

    Builder methods append events (optionally with an automatic recovery
    ``duration`` later) and return ``self`` for chaining; :attr:`events`
    yields them sorted by time.
    """

    _events: List[FaultEvent] = field(default_factory=list)

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        return tuple(sorted(self._events, key=lambda e: e.time))

    def __len__(self) -> int:
        return len(self._events)

    def add(self, event: FaultEvent) -> "FaultPlan":
        self._events.append(event)
        return self

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------
    def link_down(
        self, time: float, link_id: str, *, duration: Optional[float] = None
    ) -> "FaultPlan":
        """Take ``link_id`` down at ``time``; back up after ``duration``."""
        self.add(FaultEvent(time, FaultKind.LINK_DOWN, link_id=link_id))
        if duration is not None:
            self.add(FaultEvent(time + duration, FaultKind.LINK_UP, link_id=link_id))
        return self

    def link_degrade(
        self,
        time: float,
        link_id: str,
        factor: float,
        *,
        duration: Optional[float] = None,
    ) -> "FaultPlan":
        """Cut ``link_id`` to ``factor`` of its capacity at ``time``."""
        self.add(
            FaultEvent(time, FaultKind.LINK_DEGRADE, link_id=link_id, factor=factor)
        )
        if duration is not None:
            self.add(
                FaultEvent(time + duration, FaultKind.LINK_RESTORE, link_id=link_id)
            )
        return self

    def nic_fail(
        self,
        time: float,
        host_id: int,
        nic_index: int,
        *,
        duration: Optional[float] = None,
    ) -> "FaultPlan":
        self.add(
            FaultEvent(time, FaultKind.NIC_FAIL, host_id=host_id, nic_index=nic_index)
        )
        if duration is not None:
            self.add(
                FaultEvent(
                    time + duration,
                    FaultKind.NIC_RECOVER,
                    host_id=host_id,
                    nic_index=nic_index,
                )
            )
        return self

    def host_crash(self, time: float, host_id: int) -> "FaultPlan":
        """Crash ``host_id`` at ``time``.  Hosts do not come back."""
        return self.add(FaultEvent(time, FaultKind.HOST_CRASH, host_id=host_id))

    def service_crash(
        self, time: float, host_id: int, *, duration: Optional[float] = None
    ) -> "FaultPlan":
        """Kill the MCCS service process on ``host_id`` at ``time``.

        Unlike a host crash, the host and its GPUs survive.  With
        ``duration`` given, an :attr:`FaultKind.ENGINE_RESTART` is paired
        that many seconds later (modelling an external supervisor); leave
        it ``None`` when the deployment's own
        :class:`~repro.core.supervisor.ServiceSupervisor` handles the
        restart.
        """
        self.add(FaultEvent(time, FaultKind.SERVICE_CRASH, host_id=host_id))
        if duration is not None:
            self.add(
                FaultEvent(
                    time + duration, FaultKind.ENGINE_RESTART, host_id=host_id
                )
            )
        return self

    def engine_restart(self, time: float, host_id: int) -> "FaultPlan":
        """Restart a previously crashed service on ``host_id``."""
        return self.add(
            FaultEvent(time, FaultKind.ENGINE_RESTART, host_id=host_id)
        )

    def bandwidth_drift(
        self,
        time: float,
        link_id: str,
        factor: float,
        *,
        duration: Optional[float] = None,
    ) -> "FaultPlan":
        """Resize ``link_id`` to ``factor`` of its original capacity.

        With ``duration`` given, a ``LINK_RESTORE`` is paired that many
        seconds later, putting the original capacity back.
        """
        self.add(
            FaultEvent(
                time, FaultKind.BANDWIDTH_DRIFT, link_id=link_id, factor=factor
            )
        )
        if duration is not None:
            self.add(
                FaultEvent(time + duration, FaultKind.LINK_RESTORE, link_id=link_id)
            )
        return self

    def rank_leave(
        self, time: float, comm_id: Optional[int] = None
    ) -> "FaultPlan":
        """One rank leaves a communicator gracefully at ``time``."""
        return self.add(
            FaultEvent(time, FaultKind.RANK_LEAVE, comm_id=comm_id)
        )

    def rank_join(
        self, time: float, comm_id: Optional[int] = None
    ) -> "FaultPlan":
        """A spare GPU joins a communicator at ``time``."""
        return self.add(
            FaultEvent(time, FaultKind.RANK_JOIN, comm_id=comm_id)
        )

    def tenant_storm(
        self,
        time: float,
        app_id: str,
        *,
        factor: float = 50.0,
        duration: Optional[float] = None,
    ) -> "FaultPlan":
        """Spike ``app_id``'s request rate by ``factor`` at ``time``.

        Storms are always transient: a paired ``TENANT_CALM`` restores
        the tenant's normal rate after ``duration`` (default 0.5 s).
        """
        if duration is None:
            duration = 0.5
        self.add(
            FaultEvent(
                time, FaultKind.TENANT_STORM, app_id=app_id, factor=factor
            )
        )
        self.add(
            FaultEvent(time + duration, FaultKind.TENANT_CALM, app_id=app_id)
        )
        return self

    def describe(self) -> List[str]:
        return [event.describe() for event in self.events]

    # ------------------------------------------------------------------
    #: Relative draw weights for :meth:`random` at ``version=2``.  Link
    #: faults and bandwidth drift dominate (they are by far the most
    #: common events in production fabrics); host crashes are rare and
    #: permanent, so they get the lowest weight; elastic churn sits in
    #: between.  Kinds absent from the table draw with weight 1.
    DEFAULT_KIND_WEIGHTS = {
        FaultKind.LINK_DOWN: 3,
        FaultKind.LINK_DEGRADE: 3,
        FaultKind.BANDWIDTH_DRIFT: 3,
        FaultKind.NIC_FAIL: 2,
        FaultKind.SERVICE_CRASH: 2,
        FaultKind.HOST_CRASH: 1,
        FaultKind.RANK_LEAVE: 1,
        FaultKind.RANK_JOIN: 1,
        FaultKind.TENANT_STORM: 2,
    }

    @classmethod
    def random(
        cls,
        cluster: "Cluster",
        *,
        rng: Optional[random.Random] = None,
        seed: int = 0,
        horizon: float = 2.0,
        num_faults: int = 2,
        min_time: float = 0.1,
        kinds: Sequence[FaultKind] = (
            FaultKind.LINK_DOWN,
            FaultKind.LINK_DEGRADE,
            FaultKind.NIC_FAIL,
            FaultKind.HOST_CRASH,
            FaultKind.SERVICE_CRASH,
        ),
        link_candidates: Optional[Sequence[str]] = None,
        host_candidates: Optional[Sequence[int]] = None,
        tenant_candidates: Optional[Sequence[str]] = None,
        transient_fraction: float = 0.5,
        version: int = 2,
    ) -> "FaultPlan":
        """Draw a random plan, reproducible from one ``rng``/``seed``.

        Link faults pick from ``link_candidates`` (default: every fabric
        link except the intra-host channels); NIC and host faults pick
        from ``host_candidates`` (default: every host).  A fault is made
        transient (auto-recovery after a random fraction of the remaining
        horizon) with probability ``transient_fraction`` — host crashes
        are always permanent.

        ``version`` selects the kind-draw scheme: ``2`` (default) weighs
        kinds by :attr:`DEFAULT_KIND_WEIGHTS`; ``1`` reproduces the
        historical uniform draw exactly, so chaos seeds recorded against
        older releases replay unchanged.  ``3`` additionally draws
        ``TENANT_STORM`` events (always transient — a paired
        ``TENANT_CALM`` follows) when ``tenant_candidates`` names the
        tenants that may storm; with no candidates it is draw-for-draw
        identical to ``2``.
        """
        if rng is None:
            rng = random.Random(seed)
        if num_faults < 0:
            raise ValueError("num_faults must be non-negative")
        if version not in (1, 2, 3):
            raise ValueError(f"unknown fault-plan version {version!r}")
        if link_candidates is None:
            link_candidates = sorted(
                link_id
                for link_id in cluster.topology.links
                if ".local" not in link_id
            )
        if host_candidates is None:
            host_candidates = list(range(cluster.num_hosts))
        plan = cls()
        crashed: set = set()
        kinds_list = list(kinds)
        if (
            version >= 3
            and tenant_candidates
            and FaultKind.TENANT_STORM not in kinds_list
        ):
            kinds_list = kinds_list + [FaultKind.TENANT_STORM]
        weights = [cls.DEFAULT_KIND_WEIGHTS.get(k, 1) for k in kinds_list]
        for _ in range(num_faults):
            if version == 1:
                kind = rng.choice(kinds_list)
            else:
                kind = rng.choices(kinds_list, weights=weights)[0]
            time = rng.uniform(min_time, horizon)
            transient = rng.random() < transient_fraction
            duration = rng.uniform(0.1, max(horizon - time, 0.2)) if transient else None
            if kind is FaultKind.LINK_DOWN and link_candidates:
                plan.link_down(time, rng.choice(list(link_candidates)), duration=duration)
            elif kind is FaultKind.LINK_DEGRADE and link_candidates:
                plan.link_degrade(
                    time,
                    rng.choice(list(link_candidates)),
                    rng.uniform(0.05, 0.5),
                    duration=duration,
                )
            elif kind is FaultKind.NIC_FAIL and host_candidates:
                host_id = rng.choice(list(host_candidates))
                nic_index = rng.randrange(len(cluster.hosts[host_id].nics))
                plan.nic_fail(time, host_id, nic_index, duration=duration)
            elif kind is FaultKind.HOST_CRASH and host_candidates:
                remaining = [h for h in host_candidates if h not in crashed]
                if not remaining:
                    continue
                host_id = rng.choice(remaining)
                crashed.add(host_id)
                plan.host_crash(time, host_id)
            elif kind is FaultKind.SERVICE_CRASH and host_candidates:
                remaining = [h for h in host_candidates if h not in crashed]
                if not remaining:
                    continue
                host_id = rng.choice(remaining)
                # Transient service crashes pair an explicit restart; the
                # rest rely on the deployment's supervisor (if armed).
                plan.service_crash(time, host_id, duration=duration)
            elif kind is FaultKind.BANDWIDTH_DRIFT and link_candidates:
                plan.bandwidth_drift(
                    time,
                    rng.choice(list(link_candidates)),
                    rng.uniform(0.2, 0.9),
                    duration=duration,
                )
            elif kind is FaultKind.RANK_LEAVE:
                plan.rank_leave(time)
            elif kind is FaultKind.RANK_JOIN:
                plan.rank_join(time)
            elif kind is FaultKind.TENANT_STORM and tenant_candidates:
                # Storms are always transient; ``duration`` doubles as the
                # storm length when the transient coin came up, else a
                # fresh bounded draw keeps the calm inside the horizon.
                storm_for = (
                    duration
                    if duration is not None
                    else rng.uniform(0.1, max(horizon - time, 0.2))
                )
                plan.tenant_storm(
                    time,
                    rng.choice(list(tenant_candidates)),
                    factor=50.0,
                    duration=storm_for,
                )
        return plan


@dataclass
class BandwidthDriftPlan:
    """Seedable random-walk of WAN link capacities.

    Every ``interval`` seconds each link in ``links`` takes one bounded
    step: its capacity factor moves by up to ``max_step`` (uniform,
    either direction) and is clamped to ``factor_range``.  The walk is
    fully determined by ``seed``, so a drifting-WAN experiment replays
    exactly.  With ``restore`` set, every link is restored to its
    original capacity one interval after the last step.
    """

    links: Sequence[str]
    start: float = 0.5
    interval: float = 0.5
    steps: int = 4
    factor_range: Tuple[float, float] = (0.25, 1.0)
    max_step: float = 0.25
    seed: int = 0
    restore: bool = True

    def to_fault_plan(self, plan: Optional[FaultPlan] = None) -> FaultPlan:
        """Materialize the walk as ``BANDWIDTH_DRIFT`` fault events."""
        if plan is None:
            plan = FaultPlan()
        lo, hi = self.factor_range
        if not 0.0 < lo <= hi:
            raise ValueError("factor_range must satisfy 0 < lo <= hi")
        rng = random.Random(self.seed)
        factors = {link: 1.0 for link in self.links}
        for step in range(self.steps):
            time = self.start + step * self.interval
            for link in self.links:
                factor = factors[link] + rng.uniform(-self.max_step, self.max_step)
                factor = min(hi, max(lo, factor))
                factors[link] = factor
                plan.bandwidth_drift(time, link, factor)
        if self.restore:
            time = self.start + self.steps * self.interval
            for link in self.links:
                plan.add(
                    FaultEvent(time, FaultKind.LINK_RESTORE, link_id=link)
                )
        return plan
