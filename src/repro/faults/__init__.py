"""Deterministic fault injection for the netsim and control plane.

The paper's premise is that a *managed* collective-communication service
can react to infrastructure events transparently to tenants (§4.2).  This
package supplies the events: a seedable :class:`FaultPlan` describes link,
NIC and host faults as discrete-event entries, and a :class:`FaultInjector`
schedules them into the shared :class:`~repro.netsim.engine.FlowSimulator`
clock, flipping the cluster's alive flags and killing in-flight flows.

Detection and recovery live in :mod:`repro.core.recovery`; this package is
purely the cause, never the cure — nothing here notifies the control plane
directly, so recovery paths are exercised end to end (flow failures,
dead-proxy launches, missed heartbeats).
"""

from .plan import BandwidthDriftPlan, FaultEvent, FaultKind, FaultPlan
from .injector import FaultInjector

__all__ = [
    "BandwidthDriftPlan",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
]
