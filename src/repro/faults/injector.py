"""The fault injector: applies a :class:`FaultPlan` to a live cluster.

The injector is deliberately one-way: it breaks infrastructure (topology
link state, NIC/host alive flags, in-flight flows, proxy engines) and
counts what it broke, but never tells the control plane.  Detection has to
come from the same signals a real deployment would see — failed flows,
launches hitting a dead proxy, missed heartbeats, blown deadlines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..netsim.errors import HostCrashedError, NicFailedError
from .plan import FaultEvent, FaultKind, FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.specs import Cluster
    from ..core.deployment import MccsDeployment
    from ..telemetry.hub import TelemetryHub


class FaultInjector:
    """Schedules fault events onto a cluster's simulation clock.

    Args:
        cluster: The installation to break.
        deployment: Optional MCCS deployment; when given, host crashes
            also kill the host's proxy engines (otherwise only the
            network side of the crash is modelled).
        telemetry: Optional hub receiving ``mccs_faults_injected_total``
            and decision-log entries.
    """

    def __init__(
        self,
        cluster: "Cluster",
        *,
        deployment: Optional["MccsDeployment"] = None,
        telemetry: Optional["TelemetryHub"] = None,
    ) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.deployment = deployment
        self.telemetry = telemetry
        #: (time, event) pairs in application order, for experiment reports.
        self.injected: List[Tuple[float, FaultEvent]] = []
        # Pre-degradation capacities, so LINK_RESTORE can undo a cut.
        self._saved_caps: Dict[str, float] = {}
        # Links a NIC failure took down, so NIC_RECOVER restores exactly those.
        self._nic_links: Dict[Tuple[int, int], List[str]] = {}
        #: Tenant-storm hooks, wired by whatever drives tenant traffic
        #: (``FleetLoadGenerator.bind_injector``).  Storm receives
        #: ``(app_id, factor)``; calm receives ``(app_id,)``.
        self.on_tenant_storm: Optional[Callable[[str, float], None]] = None
        self.on_tenant_calm: Optional[Callable[[str], None]] = None

    # ------------------------------------------------------------------
    def schedule(self, plan: FaultPlan) -> None:
        """Arm every event of ``plan`` on the simulation clock."""
        for event in plan.events:
            self.sim.schedule(event.time, lambda event=event: self.apply(event))

    def apply(self, event: FaultEvent) -> None:
        """Apply one fault right now (normally called by the scheduler)."""
        handler = {
            FaultKind.LINK_DOWN: lambda: self.fail_link(event.link_id),
            FaultKind.LINK_UP: lambda: self.restore_link(event.link_id),
            FaultKind.LINK_DEGRADE: lambda: self.degrade_link(
                event.link_id, event.factor
            ),
            FaultKind.LINK_RESTORE: lambda: self.restore_capacity(event.link_id),
            FaultKind.NIC_FAIL: lambda: self.fail_nic(event.host_id, event.nic_index),
            FaultKind.NIC_RECOVER: lambda: self.recover_nic(
                event.host_id, event.nic_index
            ),
            FaultKind.HOST_CRASH: lambda: self.crash_host(event.host_id),
            FaultKind.SERVICE_CRASH: lambda: self.crash_service(event.host_id),
            FaultKind.ENGINE_RESTART: lambda: self.restart_service(
                event.host_id
            ),
            FaultKind.BANDWIDTH_DRIFT: lambda: self.drift_bandwidth(
                event.link_id, event.factor
            ),
            FaultKind.RANK_LEAVE: lambda: self.rank_leave(event.comm_id),
            FaultKind.RANK_JOIN: lambda: self.rank_join(event.comm_id),
            FaultKind.TENANT_STORM: lambda: self.tenant_storm(
                event.app_id, event.factor
            ),
            FaultKind.TENANT_CALM: lambda: self.tenant_calm(event.app_id),
        }[event.kind]
        handler()
        self.injected.append((self.sim.now, event))
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "mccs_faults_injected_total",
                "Infrastructure faults applied by the injector, by kind.",
            ).inc(kind=event.kind.value)
            self.telemetry.events.log(
                self.sim.now, "fault_injected", event.describe(),
                fault=event.kind.value,
            )

    # ------------------------------------------------------------------
    # link faults
    # ------------------------------------------------------------------
    def fail_link(self, link_id: str) -> None:
        self.sim.fail_link(link_id)

    def restore_link(self, link_id: str) -> None:
        self.sim.restore_link(link_id)

    def degrade_link(self, link_id: str, factor: float) -> None:
        """Cut the link to ``factor`` of its *original* capacity."""
        if link_id not in self._saved_caps:
            self._saved_caps[link_id] = self.sim.link_capacity(link_id)
        self.sim.set_link_capacity(link_id, self._saved_caps[link_id] * factor)

    def restore_capacity(self, link_id: str) -> None:
        original = self._saved_caps.pop(link_id, None)
        if original is not None:
            # A resized link is news to pinned routes, so go through the
            # epoch-bumping entry point rather than set_link_capacity.
            self.sim.set_link_bandwidth(link_id, original)

    def drift_bandwidth(self, link_id: str, factor: float) -> None:
        """Resize the link to ``factor`` of its *original* capacity.

        Unlike :meth:`degrade_link` this models a provider-side capacity
        change (WAN bandwidth drift): pinned routes are re-resolved via
        the topology's routing epoch, and the factor may exceed 1.
        """
        if link_id not in self._saved_caps:
            self._saved_caps[link_id] = self.sim.link_capacity(link_id)
        self.sim.set_link_bandwidth(link_id, self._saved_caps[link_id] * factor)

    # ------------------------------------------------------------------
    # NIC faults
    # ------------------------------------------------------------------
    def fail_nic(self, host_id: int, nic_index: int) -> None:
        """Kill one NIC: its endpoint links go down, rotation skips it."""
        nic = self.cluster.hosts[host_id].nics[nic_index]
        if not nic.alive:
            return
        nic.alive = False
        links = self.cluster.links_of_nic(host_id, nic_index)
        self._nic_links[(host_id, nic_index)] = links
        reason = f"NIC {nic.node_id} failed"
        for link_id in links:
            self.sim.fail_link(link_id, reason=reason)

    def recover_nic(self, host_id: int, nic_index: int) -> None:
        nic = self.cluster.hosts[host_id].nics[nic_index]
        if nic.alive or not self.cluster.hosts[host_id].alive:
            return
        nic.alive = True
        for link_id in self._nic_links.pop((host_id, nic_index), []):
            self.sim.restore_link(link_id)

    # ------------------------------------------------------------------
    # host crashes
    # ------------------------------------------------------------------
    def crash_host(self, host_id: int) -> None:
        """Crash a host: NICs die, its links go down, proxies stop.

        In-flight flows touching the host's links die via the link
        failures — which is exactly how the rest of the network observes
        a crash; only the host's own proxies learn the real cause.
        """
        host = self.cluster.hosts[host_id]
        if not host.alive:
            return
        host.alive = False
        for nic in host.nics:
            nic.alive = False
        for link_id in self.cluster.links_of_host(host_id):
            self.sim.fail_link(link_id, reason=f"host {host_id} crashed")
        if self.deployment is not None:
            for proxy in self.deployment.service_of(host_id).proxies.values():
                proxy.fail(HostCrashedError(f"host {host_id} crashed"))

    # ------------------------------------------------------------------
    # service-process faults
    # ------------------------------------------------------------------
    def crash_service(self, host_id: int) -> None:
        """Kill the MCCS service process on ``host_id``.

        The host, its GPUs, and the network all survive — only the
        control-plane process dies.  Without a deployment there is no
        service process to kill, so this is a documented no-op.
        """
        if self.deployment is None:
            return
        if not self.cluster.hosts[host_id].alive:
            return
        self.deployment.crash_service(host_id)

    def restart_service(self, host_id: int) -> None:
        """Restart a crashed service (journal replay).  No-op without a
        deployment or while the host itself is down."""
        if self.deployment is None:
            return
        if not self.cluster.hosts[host_id].alive:
            return
        self.deployment.restart_service(host_id)

    # ------------------------------------------------------------------
    # elastic membership churn
    # ------------------------------------------------------------------
    def rank_leave(self, comm_id: Optional[int] = None) -> None:
        """One rank leaves a communicator gracefully (elastic shrink).

        Delegates to the deployment's elastic coordinator; a documented
        no-op when elasticity is not armed or no communicator can shrink.
        """
        elastic = getattr(self.deployment, "elastic", None)
        if elastic is None:
            return
        elastic.chaos_shrink(comm_id)

    def rank_join(self, comm_id: Optional[int] = None) -> None:
        """A spare GPU joins a communicator (elastic grow).  No-op when
        elasticity is not armed or no spare GPU is available."""
        elastic = getattr(self.deployment, "elastic", None)
        if elastic is None:
            return
        elastic.chaos_grow(comm_id)

    # ------------------------------------------------------------------
    # tenant storms
    # ------------------------------------------------------------------
    def tenant_storm(self, app_id: str, factor: float) -> None:
        """One tenant's request rate spikes by ``factor``.  A documented
        no-op until a load generator wires :attr:`on_tenant_storm`."""
        if self.on_tenant_storm is not None:
            self.on_tenant_storm(app_id, factor)

    def tenant_calm(self, app_id: str) -> None:
        """The storming tenant returns to its normal rate."""
        if self.on_tenant_calm is not None:
            self.on_tenant_calm(app_id)
