"""Public exception surface of the repro package.

All library-raised exceptions share the :class:`ReproError` root, so
applications can write ``except repro.errors.ReproError`` and know they
caught everything this package throws.  (The definitions live in
``repro.netsim.errors`` for layering reasons; this module is the stable
import location.)
"""

from .netsim.errors import (
    AdmissionRejectedError,
    AllocationError,
    ClusterError,
    CollectiveError,
    CollectiveTimeoutError,
    CommunicatorError,
    FaultError,
    HeartbeatTimeoutError,
    HostCrashedError,
    InvalidBufferError,
    JournalError,
    LinkDownError,
    MccsError,
    MembershipChangeError,
    NetSimError,
    NicFailedError,
    NoPathError,
    PlacementError,
    PolicyError,
    ReconfigurationError,
    ReproError,
    ServiceCrashedError,
    ServiceUnavailableError,
    SimulationError,
    UnknownLinkError,
    UnknownNodeError,
    UpgradeError,
)
from .cluster.ipc import IpcError

__all__ = [
    "AdmissionRejectedError",
    "AllocationError",
    "ClusterError",
    "CollectiveError",
    "CollectiveTimeoutError",
    "CommunicatorError",
    "FaultError",
    "HeartbeatTimeoutError",
    "HostCrashedError",
    "InvalidBufferError",
    "IpcError",
    "JournalError",
    "LinkDownError",
    "MccsError",
    "MembershipChangeError",
    "NetSimError",
    "NicFailedError",
    "NoPathError",
    "PlacementError",
    "PolicyError",
    "ReconfigurationError",
    "ReproError",
    "ServiceCrashedError",
    "ServiceUnavailableError",
    "SimulationError",
    "UnknownLinkError",
    "UnknownNodeError",
    "UpgradeError",
]
