"""Fleet load generator: thousands of tenant apps driving the gateway.

Each tenant app is a self-scheduling arrival process on the simulated
clock: it samples its next issue gap from an exponential whose rate is
``base_rate * profile.rate_factor(now) * storm_factor`` (diurnal
modulation times any active tenant storm), fires a collective through
its :class:`~repro.service.transport.GatewayClient`, and re-arms.  All
randomness is drawn from per-tenant generators seeded from
``(seed, tenant_id)``, so a fleet of 1000 tenants replays exactly.

Tenant archetypes are drawn from the production product groups of
:func:`repro.workloads.production.product_group_breakdowns` — the comm
share of each group sets how chatty its tenants are — and the storm API
(:meth:`FleetLoadGenerator.storm` / :meth:`~FleetLoadGenerator.calm`)
is what :class:`~repro.faults.injector.FaultInjector` drives for
``tenant_storm`` fault events.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..workloads.arrivals import DiurnalProfile
from ..workloads.production import product_group_breakdowns
from .transport import GatewayClient, InProcessTransport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .gateway import GatewayResponse, ServiceGateway


@dataclass(frozen=True)
class TenantAppSpec:
    """One tenant application's traffic shape."""

    tenant_id: str
    qos_class: str
    #: Sustained issue rate in requests/second before modulation.
    rate: float
    #: Collective payload in bytes.
    nbytes: int
    #: Product-group archetype the spec was drawn from.
    group: str = "A"


def fleet_specs(
    num_tenants: int,
    *,
    seed: int = 0,
    base_rate: float = 20.0,
    nbytes_choices: Sequence[int] = (1 << 16, 1 << 18, 1 << 20),
    class_weights: Optional[Dict[str, float]] = None,
) -> List[TenantAppSpec]:
    """Draw a deterministic tenant population from production archetypes.

    Each tenant picks a product group; the group's communication share
    scales its request rate (comm-heavy groups are chattier).  QoS
    classes default to a 20/60/20 high/normal/low split.
    """
    if num_tenants <= 0:
        raise ValueError("need a positive tenant count")
    rng = random.Random(seed)
    groups = product_group_breakdowns(seed=2024)
    weights = class_weights or {"high": 0.2, "normal": 0.6, "low": 0.2}
    classes = list(weights)
    class_w = [weights[c] for c in classes]
    specs: List[TenantAppSpec] = []
    for i in range(num_tenants):
        group = groups[rng.randrange(len(groups))]
        qos = rng.choices(classes, weights=class_w)[0]
        # comm share in [0.15, 0.45] -> rate scale in roughly [0.5, 1.5]
        rate = base_rate * (0.5 + 2.0 * group.comm) * rng.uniform(0.8, 1.2)
        specs.append(
            TenantAppSpec(
                tenant_id=f"tenant-{i:04d}",
                qos_class=qos,
                rate=rate,
                nbytes=rng.choice(list(nbytes_choices)),
                group=group.group,
            )
        )
    return specs


@dataclass
class _TenantApp:
    """Runtime state of one generating tenant."""

    spec: TenantAppSpec
    client: GatewayClient
    comm_id: int
    rng: random.Random
    storm_factor: float = 1.0
    issued: int = 0
    ok: int = 0
    rejected: int = 0
    failed: int = 0
    outcomes: Dict[int, int] = field(default_factory=dict)


class FleetLoadGenerator:
    """Replays a tenant population against one gateway until ``horizon``.

    Usage::

        gen = FleetLoadGenerator(gateway, specs, seed=7)
        gen.start(horizon=20.0)
        deployment.run()
        stats = gen.stats()
    """

    def __init__(
        self,
        gateway: "ServiceGateway",
        specs: Sequence[TenantAppSpec],
        *,
        seed: int = 0,
        profile: Optional[DiurnalProfile] = None,
        transport: Optional[InProcessTransport] = None,
        gpus_per_comm: int = 2,
        ttl: Optional[float] = None,
    ) -> None:
        self.gateway = gateway
        self.sim = gateway.sim
        self.specs = list(specs)
        self.seed = seed
        self.profile = profile or DiurnalProfile()
        self.transport = transport or InProcessTransport(gateway)
        self.gpus_per_comm = gpus_per_comm
        self.ttl = ttl
        self.horizon = 0.0
        self._apps: Dict[str, _TenantApp] = {}
        self._started = False

    # ------------------------------------------------------------------
    def _tenant_rng(self, tenant_id: str) -> random.Random:
        return random.Random((self.seed << 32) ^ zlib.crc32(tenant_id.encode()))

    def provision(self, gpu_assignment: Dict[str, Sequence[int]]) -> None:
        """Register every spec'd tenant and open its communicator.

        Args:
            gpu_assignment: tenant_id -> global GPU ids of its
                communicator (the experiment decides placement).
        """
        from .registry import TenantQuota

        for spec in self.specs:
            account = self.gateway.register_tenant(
                spec.tenant_id,
                TenantQuota(
                    qos_class=spec.qos_class,
                    rate=max(spec.rate * 2.0, 10.0),
                    burst=max(spec.rate * 0.5, 8.0),
                ),
            )
            session = self.gateway.session_of(spec.tenant_id)
            gpus = [
                self.gateway.deployment.cluster.gpu(g)
                for g in gpu_assignment[spec.tenant_id]
            ]
            comm = session.client.create_communicator(gpus)
            account.comm_ids.append(comm.comm_id)
            self._apps[spec.tenant_id] = _TenantApp(
                spec=spec,
                client=GatewayClient(self.transport, api_key=account.key.raw),
                comm_id=comm.comm_id,
                rng=self._tenant_rng(spec.tenant_id),
            )

    # ------------------------------------------------------------------
    def start(self, horizon: float) -> None:
        """Arm every tenant's arrival process up to ``horizon``."""
        if not self._apps:
            raise RuntimeError("provision() the fleet before start()")
        self._started = True
        self.horizon = horizon
        for app in self._apps.values():
            self._arm(app)

    def _arm(self, app: _TenantApp) -> None:
        now = self.sim.now
        rate = (
            app.spec.rate
            * self.profile.rate_factor(now)
            * app.storm_factor
        )
        gap = app.rng.expovariate(rate) if rate > 0 else float("inf")
        when = now + gap
        if when > self.horizon:
            return
        self.sim.call_in(gap, lambda: self._fire(app))

    def _fire(self, app: _TenantApp) -> None:
        if self.sim.now > self.horizon:
            return
        app.issued += 1

        def consume(response: "GatewayResponse") -> None:
            app.outcomes[response.status] = (
                app.outcomes.get(response.status, 0) + 1
            )
            if response.ok:
                app.ok += 1
            elif response.status in (429, 503, 504):
                app.rejected += 1
            else:
                app.failed += 1

        app.client.collective(
            app.comm_id,
            app.spec.nbytes,
            ttl=self.ttl,
            on_response=consume,
        )
        self._arm(app)

    # ------------------------------------------------------------------
    # tenant storms (driven by the fault injector)
    # ------------------------------------------------------------------
    def storm(self, tenant_id: str, factor: float) -> None:
        """Multiply one tenant's arrival rate (a misbehaving app)."""
        app = self._apps.get(tenant_id)
        if app is None:
            return
        app.storm_factor = factor
        if self._started and self.sim.now <= self.horizon:
            # Re-arm so the spike takes effect immediately, not after the
            # previously sampled (long) gap.
            self._arm(app)

    def calm(self, tenant_id: str) -> None:
        """End a storm: restore the tenant's spec'd rate."""
        app = self._apps.get(tenant_id)
        if app is not None:
            app.storm_factor = 1.0

    def bind_injector(self, injector) -> None:
        """Wire ``tenant_storm``/``tenant_calm`` fault events to this
        generator (see :class:`repro.faults.injector.FaultInjector`)."""
        injector.on_tenant_storm = self.storm
        injector.on_tenant_calm = self.calm

    # ------------------------------------------------------------------
    def apps(self) -> List[_TenantApp]:
        return list(self._apps.values())

    def stats(self) -> Dict[str, object]:
        issued = sum(a.issued for a in self._apps.values())
        ok = sum(a.ok for a in self._apps.values())
        rejected = sum(a.rejected for a in self._apps.values())
        failed = sum(a.failed for a in self._apps.values())
        outcomes: Dict[int, int] = {}
        for app in self._apps.values():
            for status, count in app.outcomes.items():
                outcomes[status] = outcomes.get(status, 0) + count
        return {
            "tenants": len(self._apps),
            "issued": issued,
            "ok": ok,
            "rejected": rejected,
            "failed": failed,
            "outcomes": outcomes,
        }
