"""Tenant-facing service gateway: the fleet-scale front door (§3).

The rest of :mod:`repro.core` is the *provider's* control plane — shims
talk straight to frontend engines with no identity, no quotas and no
bounded queueing.  This package puts a managed-cloud serving surface in
front of it:

* :mod:`~repro.service.registry` — persistent tenant accounts with API
  keys, quotas and QoS classes, journaled through the deployment's
  write-ahead :class:`~repro.core.journal.StateJournal`;
* :mod:`~repro.service.gateway` — a REST-shaped request API with the
  full robustness stack: per-tenant token-bucket rate limiting, bounded
  per-class queues with explicit backpressure, request deadlines with
  capped-exponential retry, per-tenant circuit breakers, bulkhead
  isolation, and graceful brownout shedding;
* :mod:`~repro.service.transport` — the in-process async transport and
  the tenant-side :class:`~repro.service.transport.GatewayClient`;
* :mod:`~repro.service.loadgen` — a fleet load generator replaying
  thousands of tenant apps with diurnal arrival modulation;
* :mod:`~repro.service.capacity` — the "how many hosts for N tenants at
  p99 <= X" planner.
"""

from .capacity import CapacityModel, CapacityPlan, CapacityPlanner, erlang_c
from .errors import (
    AuthenticationError,
    BackpressureError,
    BrownoutShedError,
    CircuitOpenError,
    GatewayError,
    GatewayTimeoutError,
    InvalidRequestError,
    RateLimitedError,
    UnknownRouteError,
)
from .gateway import GatewayPolicy, GatewayRequest, GatewayResponse, ServiceGateway
from .limits import (
    BreakerPolicy,
    BreakerState,
    BrownoutController,
    BrownoutPolicy,
    CircuitBreaker,
    GatewayRetryPolicy,
    TokenBucket,
)
from .loadgen import FleetLoadGenerator, TenantAppSpec, fleet_specs
from .registry import ApiKey, TenantAccount, TenantQuota, TenantRegistry
from .transport import GatewayClient, InProcessTransport, PendingCall

__all__ = [
    "ApiKey",
    "AuthenticationError",
    "BackpressureError",
    "BreakerPolicy",
    "BreakerState",
    "BrownoutController",
    "BrownoutPolicy",
    "BrownoutShedError",
    "CapacityModel",
    "CapacityPlan",
    "CapacityPlanner",
    "CircuitBreaker",
    "CircuitOpenError",
    "FleetLoadGenerator",
    "GatewayClient",
    "GatewayError",
    "GatewayPolicy",
    "GatewayRequest",
    "GatewayResponse",
    "GatewayRetryPolicy",
    "GatewayTimeoutError",
    "InProcessTransport",
    "InvalidRequestError",
    "PendingCall",
    "RateLimitedError",
    "ServiceGateway",
    "TenantAccount",
    "TenantAppSpec",
    "TenantQuota",
    "TenantRegistry",
    "TokenBucket",
    "UnknownRouteError",
    "erlang_c",
    "fleet_specs",
]
