"""In-process async transport between tenant apps and the gateway.

The real MCCS front door would be an HTTP/gRPC listener; in the
simulation the transport is a pair of one-way simulated-latency hops
(request in, response out) so that thousands of tenants can drive the
gateway concurrently on the discrete-event clock without threads.
Responses are always delivered asynchronously — even synchronous
rejections arrive one transport latency later — which keeps tenant code
honest about the service boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from .gateway import GatewayRequest, GatewayResponse

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .gateway import ServiceGateway


@dataclass
class PendingCall:
    """One in-flight request/response exchange."""

    request: GatewayRequest
    response: Optional[GatewayResponse] = None
    on_response: Optional[Callable[[GatewayResponse], None]] = None

    @property
    def done(self) -> bool:
        return self.response is not None

    @property
    def ok(self) -> bool:
        return self.response is not None and self.response.ok

    def _deliver(self, response: GatewayResponse) -> None:
        self.response = response
        if self.on_response is not None:
            self.on_response(response)


class InProcessTransport:
    """Simulated-latency duplex channel to one gateway."""

    def __init__(self, gateway: "ServiceGateway", *, latency: float = 50e-6) -> None:
        self.gateway = gateway
        self.sim = gateway.sim
        self.latency = latency
        self.submitted = 0
        self.delivered = 0

    def submit(
        self,
        request: GatewayRequest,
        on_response: Optional[Callable[[GatewayResponse], None]] = None,
    ) -> PendingCall:
        """Send a request; the response arrives via the pending call."""
        pending = PendingCall(request=request, on_response=on_response)
        self.submitted += 1

        def respond(response: GatewayResponse) -> None:
            def arrive() -> None:
                self.delivered += 1
                pending._deliver(response)

            self.sim.call_in(self.latency, arrive)

        self.sim.call_in(
            self.latency, lambda: self.gateway.handle(request, respond)
        )
        return pending


class GatewayClient:
    """Tenant-side convenience wrapper over the transport.

    Mirrors the REST surface: each helper builds the request body the
    matching gateway route validates.  All calls are asynchronous; pass
    ``on_response`` (or poll :attr:`PendingCall.response`) to consume the
    result after the simulator has advanced.
    """

    def __init__(self, transport: InProcessTransport, api_key: Optional[str] = None) -> None:
        self.transport = transport
        self.api_key = api_key
        self.calls: List[PendingCall] = []

    def request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
        *,
        ttl: Optional[float] = None,
        on_response: Optional[Callable[[GatewayResponse], None]] = None,
    ) -> PendingCall:
        pending = self.transport.submit(
            GatewayRequest(
                method=method,
                path=path,
                api_key=self.api_key,
                body=body or {},
                ttl=ttl,
            ),
            on_response,
        )
        self.calls.append(pending)
        return pending

    # ------------------------------------------------------------------
    # REST surface helpers
    # ------------------------------------------------------------------
    def health(self, **kw) -> PendingCall:
        return self.request("GET", "/v1/health", **kw)

    def alloc(self, gpu_id: int, size: int, fill: Optional[float] = None, **kw) -> PendingCall:
        body: Dict[str, object] = {"gpu": gpu_id, "size": size}
        if fill is not None:
            body["fill"] = fill
        return self.request("POST", "/v1/buffers", body, **kw)

    def create_comm(self, gpu_ids: Sequence[int], **kw) -> PendingCall:
        return self.request("POST", "/v1/comms", {"gpus": list(gpu_ids)}, **kw)

    def destroy_comm(self, comm_id: int, **kw) -> PendingCall:
        return self.request("POST", "/v1/comms/destroy", {"comm": comm_id}, **kw)

    def collective(
        self,
        comm_id: int,
        nbytes: int,
        *,
        kind: str = "all_reduce",
        send_buffers: Optional[Sequence[int]] = None,
        recv_buffers: Optional[Sequence[int]] = None,
        root: int = 0,
        ttl: Optional[float] = None,
        on_response: Optional[Callable[[GatewayResponse], None]] = None,
    ) -> PendingCall:
        body: Dict[str, object] = {"comm": comm_id, "kind": kind, "nbytes": nbytes}
        if send_buffers is not None:
            body["send_buffers"] = list(send_buffers)
        if recv_buffers is not None:
            body["recv_buffers"] = list(recv_buffers)
        if root:
            body["root"] = root
        return self.request(
            "POST", "/v1/collectives", body, ttl=ttl, on_response=on_response
        )

    def slo(self, **kw) -> PendingCall:
        return self.request("GET", "/v1/slo", **kw)

    # ------------------------------------------------------------------
    def outcomes(self) -> Dict[int, int]:
        """status -> count over all answered calls (unanswered excluded)."""
        counts: Dict[int, int] = {}
        for call in self.calls:
            if call.response is not None:
                counts[call.response.status] = counts.get(call.response.status, 0) + 1
        return counts
