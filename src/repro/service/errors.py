"""Typed errors of the tenant-facing service gateway.

Every rejection the gateway can hand a tenant is a *decision* with a
dedicated exception class and an HTTP-ish status code, mirroring how a
REST front door would answer.  All of them derive from
:class:`~repro.netsim.errors.MccsError` (the service-side branch of the
repro exception tree) and are re-exported from :mod:`repro.errors`, which
the hygiene test in ``tests/test_errors_exports.py`` enforces.

The split between 4xx and 5xx matters for the circuit breakers: client
mistakes (bad key, bad route, malformed body, over-quota) never count
against a tenant's breaker, while 5xx outcomes (infrastructure failures
surfaced mid-dispatch) do.
"""

from __future__ import annotations

from ..netsim.errors import MccsError


class GatewayError(MccsError):
    """Base class for service-gateway errors.

    :attr:`status` carries the REST-shaped status code the in-process
    transport returns with the response.
    """

    status = 500


class AuthenticationError(GatewayError):
    """The request carried no API key, an unknown key, or a revoked one."""

    status = 401


class UnknownRouteError(GatewayError):
    """No handler is registered for the requested (method, path)."""

    status = 404


class InvalidRequestError(GatewayError):
    """The request body failed validation before reaching the control
    plane (missing fields, unknown communicator handle, bad sizes)."""

    status = 400


class RateLimitedError(GatewayError):
    """The tenant's token bucket is empty (sustained rate above quota).

    Carries ``retry_after`` — the earliest time (seconds from now) at
    which the bucket will hold a token again — so well-behaved tenants
    can pace themselves instead of hammering the door.
    """

    status = 429

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class BackpressureError(GatewayError):
    """The tenant's QoS class queue (or the tenant's own queued-request
    allowance) is full: explicit backpressure, shed at the door."""

    status = 503


class CircuitOpenError(GatewayError):
    """The tenant's circuit breaker is open after repeated failures;
    requests are rejected without touching the control plane until a
    half-open probe succeeds."""

    status = 503


class BrownoutShedError(GatewayError):
    """Deployment-wide load crossed a brownout watermark and this
    request's QoS class is being shed in priority order."""

    status = 503


class GatewayTimeoutError(GatewayError):
    """The request's deadline expired while it was still queued or
    between dispatch retries; it was never executed."""

    status = 504
