"""Persistent tenant registry: accounts, API keys, quotas, QoS classes.

Tenants are first-class control-plane state.  Every mutation — register,
quota/key update, revoke — is appended to the deployment's write-ahead
:class:`~repro.core.journal.StateJournal` *before* it is applied, so the
account table survives a gateway crash exactly the way buffers and
communicators survive a service crash: by deterministic replay
(:func:`~repro.core.journal.replay_journal` reconstructs the table, and
``MccsDeployment.verify_journal()`` diffs it against the live registry).

The journal stores only salted key *hashes*; raw keys exist in the
account objects handed to the tenant at mint time and are validated by
re-hashing, never by comparison against stored plaintext.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional

from ..netsim.errors import PolicyError
from .errors import AuthenticationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.deployment import MccsDeployment
    from ..core.journal import JournalRecord


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant serving quotas and QoS class.

    Attributes:
        qos_class: Admission/SLO class (``high``/``normal``/``low`` in the
            default policies).
        rate: Sustained request rate (requests/second) of the tenant's
            token bucket.
        burst: Bucket capacity — how many requests may arrive back-to-back
            before throttling starts.
        max_queued: Most requests this tenant may hold in the gateway's
            class queues at once (per-tenant backpressure).
        max_inflight: Bulkhead width — dispatch slots this tenant may
            occupy concurrently; a stuck tenant can wedge at most this
            many shared slots.
        max_communicators: Communicator handles the tenant may hold.
    """

    qos_class: str = "normal"
    rate: float = 50.0
    burst: float = 20.0
    max_queued: int = 32
    max_inflight: int = 4
    max_communicators: int = 8

    def to_payload(self) -> Dict[str, object]:
        return {
            "qos_class": self.qos_class,
            "rate": self.rate,
            "burst": self.burst,
            "max_queued": self.max_queued,
            "max_inflight": self.max_inflight,
            "max_communicators": self.max_communicators,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "TenantQuota":
        return cls(
            qos_class=str(payload["qos_class"]),
            rate=float(payload["rate"]),
            burst=float(payload["burst"]),
            max_queued=int(payload["max_queued"]),
            max_inflight=int(payload["max_inflight"]),
            max_communicators=int(payload["max_communicators"]),
        )


@dataclass(frozen=True)
class ApiKey:
    """A minted API key: the raw secret plus its stored hash."""

    raw: str
    key_hash: str


@dataclass
class TenantAccount:
    """One registered tenant."""

    tenant_id: str
    key: ApiKey
    quota: TenantQuota
    created_at: float
    revoked: bool = False
    #: Bumped on every key rotation (part of the key derivation input).
    key_generation: int = 0
    #: Live communicator handles opened through the gateway.
    comm_ids: List[int] = field(default_factory=list)


def _hash_key(raw: str) -> str:
    return hashlib.sha256(raw.encode()).hexdigest()


class TenantRegistry:
    """The journaled tenant account table.

    Args:
        deployment: Owning deployment; mutations append to its journal.
        secret: Provider-side key-derivation secret.  Keys are
            deterministic per (secret, tenant, generation) so seeded
            experiments replay exactly; a real deployment would draw them
            from an HSM instead.
    """

    def __init__(self, deployment: "MccsDeployment", *, secret: str = "mccs") -> None:
        self.deployment = deployment
        self.secret = secret
        self._accounts: Dict[str, TenantAccount] = {}
        self._by_hash: Dict[str, str] = {}
        # The journal's live-state snapshot reads tenant tables through
        # this attribute (the gateway keeps it pointed at its registry).
        deployment.tenant_registry = self

    def __len__(self) -> int:
        return sum(1 for a in self._accounts.values() if not a.revoked)

    # ------------------------------------------------------------------
    def _mint(self, tenant_id: str, generation: int) -> ApiKey:
        digest = hashlib.sha256(
            f"{self.secret}:{tenant_id}:{generation}".encode()
        ).hexdigest()
        raw = f"mk_{tenant_id}_{digest[:20]}"
        return ApiKey(raw=raw, key_hash=_hash_key(raw))

    def _journal(self, op: str, **payload: object) -> None:
        self.deployment.journal.append(self.deployment.sim.now, op, **payload)

    # ------------------------------------------------------------------
    def register(
        self, tenant_id: str, quota: Optional[TenantQuota] = None
    ) -> TenantAccount:
        """Create an account and mint its API key (journaled)."""
        if tenant_id in self._accounts and not self._accounts[tenant_id].revoked:
            raise PolicyError(f"tenant {tenant_id!r} is already registered")
        quota = quota if quota is not None else TenantQuota()
        key = self._mint(tenant_id, 0)
        self._journal(
            "tenant_register",
            tenant=tenant_id,
            key_hash=key.key_hash,
            quota=quota.to_payload(),
        )
        account = TenantAccount(
            tenant_id=tenant_id,
            key=key,
            quota=quota,
            created_at=self.deployment.sim.now,
        )
        self._accounts[tenant_id] = account
        self._by_hash[key.key_hash] = tenant_id
        return account

    def authenticate(self, raw_key: Optional[str]) -> TenantAccount:
        """Resolve an API key to its live account; typed 401 otherwise."""
        if not raw_key:
            raise AuthenticationError("request carried no API key")
        tenant_id = self._by_hash.get(_hash_key(raw_key))
        if tenant_id is None:
            raise AuthenticationError("unknown API key")
        account = self._accounts[tenant_id]
        if account.revoked:
            raise AuthenticationError(f"API key of {tenant_id!r} was revoked")
        return account

    def account(self, tenant_id: str) -> TenantAccount:
        try:
            return self._accounts[tenant_id]
        except KeyError:
            raise PolicyError(f"unknown tenant {tenant_id!r}") from None

    def accounts(self) -> List[TenantAccount]:
        return [a for a in self._accounts.values() if not a.revoked]

    # ------------------------------------------------------------------
    def set_quota(self, tenant_id: str, quota: TenantQuota) -> TenantAccount:
        """Replace a tenant's quotas/class (journaled full-state update)."""
        account = self.account(tenant_id)
        self._journal(
            "tenant_update",
            tenant=tenant_id,
            key_hash=account.key.key_hash,
            quota=quota.to_payload(),
        )
        account.quota = quota
        return account

    def rotate_key(self, tenant_id: str) -> ApiKey:
        """Mint a fresh key; the old one stops authenticating immediately."""
        account = self.account(tenant_id)
        account.key_generation += 1
        key = self._mint(tenant_id, account.key_generation)
        self._journal(
            "tenant_update",
            tenant=tenant_id,
            key_hash=key.key_hash,
            quota=account.quota.to_payload(),
        )
        del self._by_hash[account.key.key_hash]
        account.key = key
        self._by_hash[key.key_hash] = tenant_id
        return key

    def revoke(self, tenant_id: str) -> None:
        """Close an account; its key stops authenticating (journaled)."""
        account = self.account(tenant_id)
        if account.revoked:
            return
        self._journal("tenant_revoke", tenant=tenant_id)
        account.revoked = True
        self._by_hash.pop(account.key.key_hash, None)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Journal-comparable view of the live account table."""
        return {
            tenant_id: {
                "key_hash": account.key.key_hash,
                "quota": account.quota.to_payload(),
            }
            for tenant_id, account in self._accounts.items()
            if not account.revoked
        }

    @classmethod
    def restore(
        cls,
        deployment: "MccsDeployment",
        records: Optional[List["JournalRecord"]] = None,
        *,
        secret: str = "mccs",
    ) -> "TenantRegistry":
        """Rebuild a registry purely from journal records (crash restart).

        Raw keys are re-derived from the key-derivation secret and
        validated against the journaled hashes, so a restored gateway
        keeps authenticating the keys tenants already hold.
        """
        from ..core.journal import replay_journal

        if records is None:
            records = deployment.journal.records()
        state = replay_journal(records)
        registry = cls(deployment, secret=secret)
        for tenant_id, info in state.tenants.items():
            quota = TenantQuota.from_payload(dict(info["quota"]))
            # The journaled hash tells us which generation's key is live.
            generation = 0
            key = registry._mint(tenant_id, generation)
            while key.key_hash != info["key_hash"] and generation < 1024:
                generation += 1
                key = registry._mint(tenant_id, generation)
            if key.key_hash != info["key_hash"]:
                # Key was minted under a different secret: keep the hash
                # (it still authenticates raw keys) without a raw copy.
                key = ApiKey(raw="", key_hash=str(info["key_hash"]))
            account = TenantAccount(
                tenant_id=tenant_id,
                key=key,
                quota=quota,
                created_at=0.0,
                key_generation=generation,
            )
            registry._accounts[tenant_id] = account
            registry._by_hash[key.key_hash] = tenant_id
        return registry

    def quota_with(self, tenant_id: str, **changes: object) -> TenantQuota:
        """Convenience: the tenant's quota with fields replaced."""
        return replace(self.account(tenant_id).quota, **changes)
