"""Robustness primitives of the gateway: rate limits, breakers, brownout.

All of them run on the *simulated* clock — the caller passes ``now`` in —
and none of them arm periodic timers: the simulator runs to quiescence,
so every state change is driven by request traffic (token refill is
computed lazily, breakers transition on the first ``allow`` after the
cooldown, brownout levels are re-evaluated on queue/inflight changes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Deque, Optional, Sequence, Tuple
from collections import deque

from ..netsim.errors import PolicyError


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Refill is lazy (computed from the elapsed simulated time on each
    call), so an idle bucket costs nothing.
    """

    def __init__(self, rate: float, burst: float, *, now: float = 0.0) -> None:
        if rate <= 0 or burst <= 0:
            raise PolicyError("token bucket rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.last = now

    def _refill(self, now: float) -> None:
        if now > self.last:
            self.tokens = min(self.burst, self.tokens + (now - self.last) * self.rate)
            self.last = now

    def try_take(self, now: float, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never goes negative."""
        self._refill(now)
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False

    def retry_after(self, now: float, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens will be available (0 = now)."""
        self._refill(now)
        if self.tokens >= n:
            return 0.0
        return (n - self.tokens) / self.rate


@dataclass(frozen=True)
class GatewayRetryPolicy:
    """Capped-exponential backoff for *transient* dispatch failures.

    Only :class:`~repro.errors.ServiceUnavailableError` (a down host
    service that a supervisor will restart) is retried; typed decisions
    (admission sheds) and hard errors never are.  Retries always respect
    the request deadline: an attempt that would land past it surfaces a
    504 instead.
    """

    max_retries: int = 6
    backoff_base: float = 0.002
    backoff_factor: float = 2.0
    backoff_cap: float = 0.05
    jitter: float = 0.5

    def delay(self, attempt: int, rng: random.Random) -> float:
        base = min(
            self.backoff_base * self.backoff_factor**attempt, self.backoff_cap
        )
        return base * (1.0 + self.jitter * rng.random())


class BreakerState(str, Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Per-tenant circuit breaker knobs.

    The breaker watches a rolling window of dispatch outcomes (5xx
    failures and timeouts count against it; 4xx client errors do not)
    and opens once the failure fraction crosses ``failure_threshold``.
    After ``cooldown`` simulated seconds it lets ``half_open_probes``
    requests through: all succeeding closes it, any failing re-opens it.
    """

    window: int = 16
    min_samples: int = 6
    failure_threshold: float = 0.5
    cooldown: float = 0.25
    half_open_probes: int = 1


class CircuitBreaker:
    """One tenant's circuit breaker."""

    def __init__(self, policy: Optional[BreakerPolicy] = None) -> None:
        self.policy = policy or BreakerPolicy()
        self.state = BreakerState.CLOSED
        self._outcomes: Deque[bool] = deque(maxlen=self.policy.window)
        self._open_until = 0.0
        self._probes_inflight = 0
        self._probes_ok = 0
        self.trips = 0

    # ------------------------------------------------------------------
    def allow(self, now: float) -> bool:
        """May a request pass right now?  (May transition OPEN->HALF_OPEN.)"""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now < self._open_until:
                return False
            self.state = BreakerState.HALF_OPEN
            self._probes_inflight = 0
            self._probes_ok = 0
        # HALF_OPEN: admit up to half_open_probes concurrent probes.
        if self._probes_inflight < self.policy.half_open_probes:
            self._probes_inflight += 1
            return True
        return False

    def record_success(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self._probes_ok += 1
            if self._probes_ok >= self.policy.half_open_probes:
                self.state = BreakerState.CLOSED
                self._outcomes.clear()
            return
        self._outcomes.append(True)

    def record_failure(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self._trip(now)
            return
        self._outcomes.append(False)
        if len(self._outcomes) >= self.policy.min_samples:
            failures = sum(1 for ok in self._outcomes if not ok)
            if failures / len(self._outcomes) >= self.policy.failure_threshold:
                self._trip(now)

    def abandon(self, now: float) -> None:
        """A request admitted as a half-open probe died before producing
        an outcome (queue expiry, brownout drain, gateway crash): release
        the probe slot without counting success or failure."""
        if self.state is BreakerState.HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)

    def _trip(self, now: float) -> None:
        self.state = BreakerState.OPEN
        self._open_until = now + self.policy.cooldown
        self._outcomes.clear()
        self.trips += 1

    @property
    def open(self) -> bool:
        return self.state is BreakerState.OPEN


@dataclass(frozen=True)
class BrownoutPolicy:
    """Graceful-degradation watermarks over deployment-wide gateway load.

    Load is the occupancy fraction of the gateway's shared capacity
    (dispatch slots + class queues).  Level ``k`` (1-based) engages when
    load crosses ``watermarks[k-1]`` and sheds the ``k`` lowest-priority
    QoS classes; it releases only when load falls ``hysteresis`` below
    the engaging watermark, so the controller cannot flap around a
    boundary.  The highest class is never shed by brownout — overload
    beyond the last watermark still bounds it via the queues themselves.
    """

    watermarks: Tuple[float, ...] = (0.60, 0.85)
    hysteresis: float = 0.10
    priority: Tuple[str, ...] = ("high", "normal", "low")

    def __post_init__(self) -> None:
        if list(self.watermarks) != sorted(self.watermarks):
            raise PolicyError("brownout watermarks must be ascending")
        if len(self.watermarks) >= len(self.priority):
            raise PolicyError(
                "need fewer watermarks than QoS classes (the top class "
                "is never shed)"
            )


@dataclass
class BrownoutController:
    """Tracks the current brownout level from observed load."""

    policy: BrownoutPolicy = field(default_factory=BrownoutPolicy)
    level: int = 0
    #: (time, old_level, new_level) transitions for reports.
    transitions: list = field(default_factory=list)

    def update(self, load: float, now: float) -> int:
        """Re-evaluate the level for ``load``; returns the new level."""
        marks = self.policy.watermarks
        target = 0
        for i, mark in enumerate(marks):
            if load >= mark:
                target = i + 1
        if target > self.level:
            self.transitions.append((now, self.level, target))
            self.level = target
        elif target < self.level:
            # Hysteresis: only step down once load clears the engaging
            # watermark by the hysteresis margin.
            release = marks[self.level - 1] - self.policy.hysteresis
            if load < release:
                new = target
                self.transitions.append((now, self.level, new))
                self.level = new
        return self.level

    def sheds(self, qos_class: str) -> bool:
        """Is ``qos_class`` currently being shed?"""
        if self.level <= 0:
            return False
        priority: Sequence[str] = self.policy.priority
        if qos_class not in priority:
            return True  # unknown classes rank below everything listed
        index = priority.index(qos_class)
        return index >= len(priority) - self.level
