"""The service gateway: REST-shaped, robust front door to the control plane.

Request lifecycle (data path, ``POST /v1/collectives``)::

    transport -> auth -> brownout -> rate limit -> backpressure -> breaker
              -> class queue -> bulkhead dispatch -> frontend engine
              -> collective instance -> completion callback -> response

Every pre-dispatch stage can *reject* with a typed error (a decision,
counted in ``mccs_gateway_rejections_total``); once a request has been
issued to a frontend engine it is *executed* and runs to completion —
the two sets are disjoint by construction, which the hypothesis property
suite asserts.  Dispatch failures are split the way a real front door
splits them: a down host service is transient (capped-exponential retry
within the request deadline), an admission shed is a decision (surfaced,
never retried), anything else is a 5xx that feeds the tenant's circuit
breaker.

The gateway *composes with* :mod:`repro.core.admission` rather than
replacing it: registering a tenant assigns its QoS class to the
admission controller, whose per-tenant in-flight quotas and
deployment-wide shedding still backstop the door.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Set, Tuple
from collections import deque

import numpy as np

from ..collectives.types import Collective, input_bytes
from ..core.messages import CollectiveRequest, CollectiveResponse
from ..core.shim import MccsClient
from ..netsim.errors import (
    AdmissionRejectedError,
    ReproError,
    ServiceUnavailableError,
)
from .errors import (
    AuthenticationError,
    BackpressureError,
    BrownoutShedError,
    CircuitOpenError,
    GatewayError,
    GatewayTimeoutError,
    InvalidRequestError,
    RateLimitedError,
    UnknownRouteError,
)
from .limits import (
    BreakerPolicy,
    BrownoutController,
    BrownoutPolicy,
    CircuitBreaker,
    GatewayRetryPolicy,
    TokenBucket,
)
from .registry import TenantAccount, TenantQuota, TenantRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.communicator import CollectiveInstance
    from ..core.deployment import MccsDeployment

_KINDS = {kind.value: kind for kind in Collective}


@dataclass
class GatewayRequest:
    """One REST-shaped request entering the gateway."""

    method: str
    path: str
    api_key: Optional[str] = None
    body: Dict[str, object] = field(default_factory=dict)
    #: Relative deadline (seconds from acceptance); ``None`` uses the
    #: gateway policy default.  Applies until the request is executed.
    ttl: Optional[float] = None
    request_id: int = field(default_factory=itertools.count().__next__)


@dataclass
class GatewayResponse:
    """The gateway's answer (status mirrors HTTP semantics)."""

    request_id: int
    status: int
    body: Dict[str, object] = field(default_factory=dict)
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class RequestState(str, Enum):
    QUEUED = "queued"
    DISPATCHING = "dispatching"
    EXECUTING = "executing"
    OK = "ok"
    #: Rejected by a pre-dispatch decision; never touched the backend.
    REJECTED = "rejected"
    #: Deadline expired while queued or between dispatch retries.
    TIMED_OUT = "timed_out"
    #: Executed but the collective aborted, or dispatch raised a hard error.
    FAILED = "failed"


@dataclass
class GatewayRecord:
    """Ledger entry of one data-path request."""

    request: GatewayRequest
    tenant: str
    qos: str
    accepted_at: float
    state: RequestState = RequestState.QUEUED
    deadline: float = 0.0
    finished_at: Optional[float] = None
    instance: Optional["CollectiveInstance"] = None
    error: Optional[BaseException] = None
    retries: int = 0
    #: Admitted as a half-open breaker probe.
    probe: bool = False
    respond: Optional[Callable[[GatewayResponse], None]] = None

    @property
    def done(self) -> bool:
        return self.state in (
            RequestState.OK,
            RequestState.REJECTED,
            RequestState.TIMED_OUT,
            RequestState.FAILED,
        )


@dataclass(frozen=True)
class GatewayPolicy:
    """Deployment-wide gateway knobs.

    Attributes:
        queue_capacity: Bound of each QoS class queue.
        max_inflight: Shared dispatch slots (the global bulkhead pool).
        default_deadline: Request deadline when the tenant names none.
        retry: Backoff for transient dispatch failures.
        breaker: Per-tenant circuit-breaker policy.
        brownout: Load watermarks for graceful shedding.
    """

    queue_capacity: int = 64
    max_inflight: int = 64
    default_deadline: float = 1.0
    retry: GatewayRetryPolicy = field(default_factory=GatewayRetryPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    brownout: BrownoutPolicy = field(default_factory=BrownoutPolicy)


@dataclass
class _Session:
    """Gateway-side state of one authenticated tenant."""

    account: TenantAccount
    client: MccsClient
    bucket: TokenBucket
    breaker: CircuitBreaker
    queued: int = 0
    inflight: int = 0


class ServiceGateway:
    """The tenant-facing front door of one deployment."""

    def __init__(
        self,
        deployment: "MccsDeployment",
        policy: Optional[GatewayPolicy] = None,
        *,
        registry: Optional[TenantRegistry] = None,
        secret: str = "mccs",
    ) -> None:
        self.deployment = deployment
        self.sim = deployment.sim
        self.policy = policy or GatewayPolicy()
        self.registry = (
            registry
            if registry is not None
            else TenantRegistry(deployment, secret=secret)
        )
        self.telemetry = deployment.telemetry()
        self.brownout = BrownoutController(policy=self.policy.brownout)
        self.alive = True
        self.crashes = 0
        self.restarts = 0
        self._sessions: Dict[str, _Session] = {}
        self._queues: Dict[str, Deque[GatewayRecord]] = {
            qos: deque() for qos in self.policy.brownout.priority
        }
        self._inflight = 0
        self._pump_scheduled = False
        self._rng = random.Random(0xF1EE7)
        self._counted_trips: Dict[str, int] = {}
        #: Full request ledger, and the disjoint outcome sets the
        #: robustness property suite checks.
        self.records: List[GatewayRecord] = []
        self.rejected_ids: Set[int] = set()
        self.executed_ids: Set[int] = set()
        self._routes: Dict[Tuple[str, str], Tuple[Callable, bool]] = {
            # (method, path) -> (handler, needs_auth)
            ("GET", "/v1/health"): (self._route_health, False),
            ("POST", "/v1/buffers"): (self._route_alloc, True),
            ("POST", "/v1/comms"): (self._route_create_comm, True),
            ("POST", "/v1/comms/destroy"): (self._route_destroy_comm, True),
            ("GET", "/v1/slo"): (self._route_slo, True),
        }
        deployment.gateway = self

    # ------------------------------------------------------------------
    # tenant management (provider side)
    # ------------------------------------------------------------------
    def register_tenant(
        self, tenant_id: str, quota: Optional[TenantQuota] = None
    ) -> TenantAccount:
        """Register a tenant, sync its QoS class into admission control."""
        account = self.registry.register(tenant_id, quota)
        if self.deployment.admission is not None:
            self.deployment.admission.set_class(tenant_id, account.quota.qos_class)
        self.telemetry.metrics.gauge(
            "mccs_gateway_tenants",
            "Tenant accounts currently registered with the gateway.",
        ).set(len(self.registry))
        return account

    def revoke_tenant(self, tenant_id: str) -> None:
        self.registry.revoke(tenant_id)
        self._sessions.pop(tenant_id, None)
        self.telemetry.metrics.gauge(
            "mccs_gateway_tenants",
            "Tenant accounts currently registered with the gateway.",
        ).set(len(self.registry))

    def _session(self, account: TenantAccount) -> _Session:
        session = self._sessions.get(account.tenant_id)
        if session is None:
            session = _Session(
                account=account,
                client=self.deployment.connect(account.tenant_id),
                bucket=TokenBucket(
                    account.quota.rate, account.quota.burst, now=self.sim.now
                ),
                breaker=CircuitBreaker(self.policy.breaker),
            )
            self._sessions[account.tenant_id] = session
        return session

    def session_of(self, tenant_id: str) -> _Session:
        """The live session of a registered tenant (tests/loadgen)."""
        return self._session(self.registry.account(tenant_id))

    def breaker_of(self, tenant_id: str) -> CircuitBreaker:
        return self.session_of(tenant_id).breaker

    # ------------------------------------------------------------------
    # request entry point (called by the transport)
    # ------------------------------------------------------------------
    def handle(
        self,
        request: GatewayRequest,
        respond: Callable[[GatewayResponse], None],
    ) -> None:
        try:
            self._handle(request, respond)
        except GatewayError as exc:
            respond(
                GatewayResponse(
                    request_id=request.request_id,
                    status=exc.status,
                    error=exc,
                )
            )

    def _handle(
        self,
        request: GatewayRequest,
        respond: Callable[[GatewayResponse], None],
    ) -> None:
        if not self.alive:
            self._count_request(request, 503)
            respond(
                GatewayResponse(
                    request_id=request.request_id,
                    status=503,
                    error=ServiceUnavailableError("gateway is down"),
                )
            )
            return
        if request.method == "POST" and request.path == "/v1/collectives":
            self._accept_collective(request, respond)
            return
        entry = self._routes.get((request.method, request.path))
        if entry is None:
            self._count_request(request, 404)
            raise UnknownRouteError(
                f"no route for {request.method} {request.path}"
            )
        handler, needs_auth = entry
        session = None
        if needs_auth:
            try:
                account = self.registry.authenticate(request.api_key)
            except AuthenticationError:
                self._count_request(request, 401)
                self._count_rejection("auth", "unknown")
                raise
            session = self._session(account)
            if not session.bucket.try_take(self.sim.now):
                self._throttle(request, session)
        try:
            body = handler(session, request)
        except GatewayError as exc:
            self._count_request(request, exc.status)
            raise
        except ServiceUnavailableError as exc:
            # Control-plane routes answer a down host synchronously; the
            # tenant (or its shim) owns the retry.
            self._count_request(request, 503)
            respond(
                GatewayResponse(
                    request_id=request.request_id, status=503, error=exc
                )
            )
            return
        except ReproError as exc:
            self._count_request(request, 400)
            respond(
                GatewayResponse(
                    request_id=request.request_id, status=400, error=exc
                )
            )
            return
        self._count_request(request, 200)
        respond(
            GatewayResponse(request_id=request.request_id, status=200, body=body)
        )

    # ------------------------------------------------------------------
    # data path: the robustness stack
    # ------------------------------------------------------------------
    def _accept_collective(
        self,
        request: GatewayRequest,
        respond: Callable[[GatewayResponse], None],
    ) -> None:
        try:
            account = self.registry.authenticate(request.api_key)
        except AuthenticationError:
            self._count_request(request, 401)
            self._count_rejection("auth", "unknown")
            raise
        session = self._session(account)
        qos = account.quota.qos_class
        now = self.sim.now

        # 1. brownout: deployment-wide graceful shedding by class.
        if self.brownout.sheds(qos):
            self._count_request(request, 503)
            self._count_rejection("brownout", qos)
            self._reject(request, qos)
            self.telemetry.slo.record_shed(account.tenant_id)
            raise BrownoutShedError(
                f"brownout level {self.brownout.level}: shedding {qos!r} traffic"
            )
        # 2. per-tenant token-bucket rate limit.
        if not session.bucket.try_take(now):
            self._reject(request, qos)
            self._throttle(request, session)
        # 3. explicit backpressure: bounded class queue + per-tenant bound.
        queue = self._queue_for(qos)
        if len(queue) >= self.policy.queue_capacity:
            self._count_request(request, 503)
            self._count_rejection("backpressure", qos)
            self._reject(request, qos)
            raise BackpressureError(
                f"{qos!r} queue is full ({self.policy.queue_capacity} waiting)"
            )
        if session.queued >= account.quota.max_queued:
            self._count_request(request, 503)
            self._count_rejection("backpressure", qos)
            self._reject(request, qos)
            raise BackpressureError(
                f"tenant {account.tenant_id!r} already has {session.queued} "
                "request(s) queued"
            )
        # 4. circuit breaker (checked last: a granted half-open probe slot
        # is guaranteed to be enqueued).
        if not session.breaker.allow(now):
            self._count_request(request, 503)
            self._count_rejection("breaker", qos)
            self._reject(request, qos)
            raise CircuitOpenError(
                f"circuit of {account.tenant_id!r} is "
                f"{session.breaker.state.value}"
            )
        probe = session.breaker.state.value == "half_open"

        ttl = request.ttl if request.ttl is not None else self.policy.default_deadline
        record = GatewayRecord(
            request=request,
            tenant=account.tenant_id,
            qos=qos,
            accepted_at=now,
            deadline=now + ttl,
            probe=probe,
            respond=respond,
        )
        self.records.append(record)
        queue.append(record)
        session.queued += 1
        self._arm_deadline(record)
        self._update_queue_gauges()
        self._update_brownout()
        self._schedule_pump()

    def _queue_for(self, qos: str) -> Deque[GatewayRecord]:
        queue = self._queues.get(qos)
        if queue is None:
            # Unknown class: rides the lowest-priority queue.
            queue = self._queues[self.policy.brownout.priority[-1]]
        return queue

    def _throttle(self, request: GatewayRequest, session: _Session) -> None:
        retry_after = session.bucket.retry_after(self.sim.now)
        qos = session.account.quota.qos_class
        self._count_request(request, 429)
        self._count_rejection("throttle", qos)
        self.telemetry.metrics.counter(
            "mccs_gateway_throttled_total",
            "Requests rejected by per-tenant token-bucket rate limiting.",
        ).inc(qos=qos)
        raise RateLimitedError(
            f"tenant {session.account.tenant_id!r} over its "
            f"{session.bucket.rate:g} req/s quota",
            retry_after=retry_after,
        )

    # ------------------------------------------------------------------
    # dispatch pump: bulkhead-bounded, priority-ordered
    # ------------------------------------------------------------------
    def _schedule_pump(self) -> None:
        if self._pump_scheduled:
            return
        self._pump_scheduled = True
        self.sim.call_in(0.0, self._pump)

    def _pump(self) -> None:
        self._pump_scheduled = False
        if not self.alive:
            return
        while self._inflight < self.policy.max_inflight:
            record = self._next_dispatchable()
            if record is None:
                break
            self._dispatch(record)
        self._update_queue_gauges()
        self._update_brownout()

    def _next_dispatchable(self) -> Optional[GatewayRecord]:
        """Head-most eligible request, classes in priority order.

        Requests of tenants at their bulkhead width are *skipped, not
        popped*: a stuck tenant's backlog stays queued (bounded by its
        ``max_queued``) while other tenants' requests flow past it —
        per-tenant FIFO order is preserved because only that tenant's
        entries are skipped.
        """
        for qos in self.policy.brownout.priority:
            queue = self._queues[qos]
            for index, record in enumerate(queue):
                session = self._sessions[record.tenant]
                if session.inflight >= session.account.quota.max_inflight:
                    continue
                del queue[index]
                return record
        return None

    def _dispatch(self, record: GatewayRecord) -> None:
        session = self._sessions[record.tenant]
        session.queued -= 1
        session.inflight += 1
        self._inflight += 1
        record.state = RequestState.DISPATCHING
        self.telemetry.metrics.gauge(
            "mccs_gateway_inflight",
            "Data-path requests occupying gateway dispatch slots.",
        ).set(self._inflight)
        self._attempt(record, attempt=0)

    def _attempt(self, record: GatewayRecord, attempt: int) -> None:
        if record.done:
            return
        session = self._sessions[record.tenant]
        try:
            creq, comm = self._build_collective(session, record.request)
        except GatewayError as exc:
            self._finish_dispatch(
                record, RequestState.FAILED, exc.status, error=exc
            )
            return
        try:
            queue = self.deployment.service_of_gpu(comm.gpus[0]).frontend_for(
                record.tenant, self.deployment
            ).queue
            response = queue.call(creq)
        except ServiceUnavailableError as exc:
            self._retry_or_expire(record, attempt, exc)
            return
        except AdmissionRejectedError as exc:
            # The admission backstop shed it before issuing: a decision,
            # not a failure — rejected, never executed, never retried.
            self._count_rejection("admission", record.qos)
            self._reject_record(record, 503, exc)
            return
        except ReproError as exc:
            # Hard 5xx (e.g. the communicator was aborted by recovery):
            # feeds the breaker.
            session.breaker.record_failure(self.sim.now)
            self._note_breaker(session)
            self._finish_dispatch(
                record, RequestState.FAILED, 500, error=exc
            )
            return
        assert isinstance(response, CollectiveResponse)
        record.state = RequestState.EXECUTING
        record.retries = attempt
        self.executed_ids.add(record.request.request_id)
        service_comm = self.deployment.communicator(response.comm_id)
        instance = service_comm.instances[response.seq]
        record.instance = instance
        MccsClient._chain_callback(
            instance, lambda inst, now: self._completed(record, inst, now)
        )

    def _retry_or_expire(
        self, record: GatewayRecord, attempt: int, error: BaseException
    ) -> None:
        """Transient dispatch failure: capped-exponential retry within the
        request deadline."""
        now = self.sim.now
        retry = self.policy.retry
        delay = retry.delay(attempt, self._rng)
        if attempt + 1 > retry.max_retries or now + delay > record.deadline:
            session = self._sessions[record.tenant]
            session.breaker.record_failure(now)
            self._note_breaker(session)
            self._count_timeout(record.qos)
            self._finish_dispatch(
                record,
                RequestState.TIMED_OUT,
                504,
                error=GatewayTimeoutError(
                    f"request {record.request.request_id} gave up after "
                    f"{attempt + 1} attempt(s): {error}"
                ),
            )
            return
        record.retries = attempt + 1
        self.telemetry.metrics.counter(
            "mccs_gateway_retries_total",
            "Dispatch attempts re-queued after transient backend failures.",
        ).inc(qos=record.qos)
        self.telemetry.slo.record_retry(record.tenant)
        self.sim.call_in(delay, lambda: self._attempt(record, attempt + 1))

    def _buffer(self, session: _Session, buffer_id: int):
        """Resolve a buffer id, re-adopting the live allocation when the
        session shim is fresh (buffer handles are volatile gateway state;
        the allocation itself is durable service state)."""
        buf = session.client.buffers.get(buffer_id)
        if buf is None:
            buf = session.client.adopt_buffer(buffer_id)
        return buf

    def _build_collective(
        self, session: _Session, request: GatewayRequest
    ) -> Tuple[CollectiveRequest, object]:
        body = request.body
        try:
            comm_id = int(body["comm"])
            kind = _KINDS[str(body.get("kind", "all_reduce"))]
            nbytes = int(body["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidRequestError(f"bad collective body: {exc}") from None
        comm = session.client.communicators.get(comm_id)
        if comm is None and comm_id in session.account.comm_ids:
            # Session shims are volatile gateway state (rebuilt after a
            # restart); ownership is durable, so re-adopt the live comm.
            try:
                comm = session.client.adopt_communicator(comm_id)
            except ReproError:
                comm = None
        if comm is None:
            raise InvalidRequestError(
                f"tenant {session.account.tenant_id!r} holds no communicator "
                f"{comm_id}"
            )
        send_refs: Tuple = ()
        recv_refs: Tuple = ()
        send_ids = body.get("send_buffers")
        recv_ids = body.get("recv_buffers")
        if send_ids:
            try:
                expected = input_bytes(kind, nbytes, comm.world)
                send_refs = tuple(
                    self._buffer(session, int(b)).ref(nbytes=expected)
                    for b in send_ids  # type: ignore[union-attr]
                )
                if recv_ids:
                    recv_refs = tuple(
                        self._buffer(session, int(b)).ref(nbytes=nbytes)
                        for b in recv_ids  # type: ignore[union-attr]
                    )
            except ReproError as exc:
                raise InvalidRequestError(f"unknown buffer: {exc}") from None
        creq = CollectiveRequest(
            comm_id=comm_id,
            kind=kind,
            out_bytes=nbytes,
            send_refs=send_refs,
            recv_refs=recv_refs,
            root=int(body.get("root", 0)),
        )
        return creq, comm

    # ------------------------------------------------------------------
    # completion / terminal transitions
    # ------------------------------------------------------------------
    def _completed(
        self, record: GatewayRecord, instance: "CollectiveInstance", now: float
    ) -> None:
        if record.done:
            return
        session = self._sessions.get(record.tenant)
        if instance.aborted:
            if session is not None:
                session.breaker.record_failure(now)
                self._note_breaker(session)
            self._finish_dispatch(
                record,
                RequestState.FAILED,
                500,
                error=instance.error
                if instance.error is not None
                else instance.comm.abort_error,
                body={"seq": instance.seq, "aborted": True},
            )
            return
        if session is not None:
            session.breaker.record_success(now)
            self._note_breaker(session)
        self.telemetry.metrics.histogram(
            "mccs_gateway_request_seconds",
            "End-to-end gateway latency of completed data-path requests.",
        ).observe(now - record.accepted_at, qos=record.qos)
        self._finish_dispatch(
            record,
            RequestState.OK,
            200,
            body={
                "seq": instance.seq,
                "duration_s": instance.duration(),
                "retries": record.retries,
            },
        )

    def _finish_dispatch(
        self,
        record: GatewayRecord,
        state: RequestState,
        status: int,
        *,
        error: Optional[BaseException] = None,
        body: Optional[Dict[str, object]] = None,
    ) -> None:
        """Terminal transition of a record holding a dispatch slot."""
        session = self._sessions.get(record.tenant)
        if session is not None:
            session.inflight = max(0, session.inflight - 1)
        self._inflight = max(0, self._inflight - 1)
        self._settle(record, state, status, error=error, body=body)
        self._schedule_pump()

    def _reject_record(
        self, record: GatewayRecord, status: int, error: BaseException
    ) -> None:
        """Terminal rejection of a record holding a dispatch slot (the
        admission backstop): rejected, never executed."""
        session = self._sessions.get(record.tenant)
        if session is not None:
            session.inflight = max(0, session.inflight - 1)
            if record.probe:
                session.breaker.abandon(self.sim.now)
        self._inflight = max(0, self._inflight - 1)
        self.rejected_ids.add(record.request.request_id)
        self._settle(record, RequestState.REJECTED, status, error=error)
        self._schedule_pump()

    def _settle(
        self,
        record: GatewayRecord,
        state: RequestState,
        status: int,
        *,
        error: Optional[BaseException] = None,
        body: Optional[Dict[str, object]] = None,
    ) -> None:
        record.state = state
        record.error = error
        record.finished_at = self.sim.now
        self._count_request(record.request, status)
        self.telemetry.metrics.gauge(
            "mccs_gateway_inflight",
            "Data-path requests occupying gateway dispatch slots.",
        ).set(self._inflight)
        self._update_brownout()
        if record.respond is not None:
            record.respond(
                GatewayResponse(
                    request_id=record.request.request_id,
                    status=status,
                    body=body or {},
                    error=error,
                )
            )

    def _reject(self, request: GatewayRequest, qos: str) -> None:
        """Ledger bookkeeping of a pre-queue rejection (raised by caller)."""
        self.rejected_ids.add(request.request_id)

    # ------------------------------------------------------------------
    # deadlines
    # ------------------------------------------------------------------
    def _arm_deadline(self, record: GatewayRecord) -> None:
        def expired() -> None:
            if record.done or record.state is RequestState.EXECUTING:
                # Executed requests run to completion; the deadline only
                # governs the pre-execution phases.
                return
            session = self._sessions.get(record.tenant)
            if record.state is RequestState.QUEUED:
                queue = self._queue_for(record.qos)
                try:
                    queue.remove(record)
                except ValueError:
                    pass
                if session is not None:
                    session.queued = max(0, session.queued - 1)
                    if record.probe:
                        session.breaker.abandon(self.sim.now)
                self._count_timeout(record.qos)
                self.rejected_ids.add(record.request.request_id)
                self._settle(
                    record,
                    RequestState.TIMED_OUT,
                    504,
                    error=GatewayTimeoutError(
                        f"request {record.request.request_id} expired after "
                        f"{record.deadline - record.accepted_at:g}s in queue"
                    ),
                )
                self._update_queue_gauges()
                self._schedule_pump()
            # DISPATCHING between retries: the retry path checks the
            # deadline itself before re-arming, so nothing to do here.

        self.sim.schedule(record.deadline, expired)

    def _count_timeout(self, qos: str) -> None:
        self.telemetry.metrics.counter(
            "mccs_gateway_timeouts_total",
            "Requests whose deadline expired before execution.",
        ).inc(qos=qos)

    # ------------------------------------------------------------------
    # brownout
    # ------------------------------------------------------------------
    def load(self) -> float:
        """Occupancy fraction of the gateway's shared capacity."""
        queued = sum(len(q) for q in self._queues.values())
        capacity = self.policy.max_inflight + self.policy.queue_capacity * len(
            self._queues
        )
        return (self._inflight + queued) / capacity if capacity else 0.0

    def _update_brownout(self) -> None:
        before = self.brownout.level
        level = self.brownout.update(self.load(), self.sim.now)
        self.telemetry.metrics.gauge(
            "mccs_gateway_brownout_level",
            "Current brownout level (0 = none; level k sheds the k "
            "lowest-priority QoS classes).",
        ).set(level)
        if level == before:
            return
        self.telemetry.metrics.counter(
            "mccs_gateway_brownout_transitions_total",
            "Brownout level changes, by direction.",
        ).inc(direction="up" if level > before else "down")
        self.telemetry.events.log(
            self.sim.now,
            "brownout",
            f"gateway brownout level {before} -> {level} "
            f"(load {self.load():.2f})",
            level=level,
        )
        if level > before:
            self._drain_shed_classes()

    def _drain_shed_classes(self) -> None:
        """On a level raise, already-queued requests of now-shed classes
        are answered immediately (typed 503) instead of rotting."""
        for qos in self.policy.brownout.priority:
            if not self.brownout.sheds(qos):
                continue
            queue = self._queues[qos]
            while queue:
                record = queue.popleft()
                session = self._sessions.get(record.tenant)
                if session is not None:
                    session.queued = max(0, session.queued - 1)
                    if record.probe:
                        session.breaker.abandon(self.sim.now)
                self._count_rejection("brownout", qos)
                self.telemetry.slo.record_shed(record.tenant)
                self.rejected_ids.add(record.request.request_id)
                self._settle(
                    record,
                    RequestState.REJECTED,
                    503,
                    error=BrownoutShedError(
                        f"brownout level {self.brownout.level}: shedding "
                        f"{qos!r} traffic"
                    ),
                )
        self._update_queue_gauges()

    # ------------------------------------------------------------------
    # crash / restart (registry replay)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Kill the gateway process.  Queued requests die typed; executing
        requests drain (their collectives already run in the control
        plane); the tenant registry survives in the journal."""
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1
        for queue in self._queues.values():
            while queue:
                record = queue.popleft()
                session = self._sessions.get(record.tenant)
                if session is not None:
                    session.queued = max(0, session.queued - 1)
                    if record.probe:
                        session.breaker.abandon(self.sim.now)
                self._count_rejection("crash", record.qos)
                self.rejected_ids.add(record.request.request_id)
                self._settle(
                    record,
                    RequestState.REJECTED,
                    503,
                    error=ServiceUnavailableError("gateway crashed"),
                )
        self.telemetry.events.log(
            self.sim.now, "gateway_crashed", "service gateway crashed"
        )

    def restart(self) -> int:
        """Restart the gateway, rebuilding the tenant registry purely from
        the journal; returns the number of restored accounts."""
        if self.alive:
            return 0
        self.registry = TenantRegistry.restore(
            self.deployment, secret=self.registry.secret
        )
        self._sessions.clear()
        if self.deployment.admission is not None:
            for account in self.registry.accounts():
                self.deployment.admission.set_class(
                    account.tenant_id, account.quota.qos_class
                )
        # Re-attach live communicators to their owning accounts (their
        # ownership is journaled control-plane state, not gateway state).
        accounts = {a.tenant_id: a for a in self.registry.accounts()}
        for comm in self.deployment.communicators():
            account = accounts.get(comm.app_id)
            if account is not None and comm.comm_id not in account.comm_ids:
                account.comm_ids.append(comm.comm_id)
        self.alive = True
        self.restarts += 1
        self.telemetry.events.log(
            self.sim.now,
            "gateway_restarted",
            f"service gateway restored {len(self.registry)} tenant(s) "
            "from the journal",
        )
        self._schedule_pump()
        return len(self.registry)

    # ------------------------------------------------------------------
    # control routes
    # ------------------------------------------------------------------
    def _route_health(
        self, session: Optional[_Session], request: GatewayRequest
    ) -> Dict[str, object]:
        return {
            "alive": self.alive,
            "tenants": len(self.registry),
            "inflight": self._inflight,
            "queued": {qos: len(q) for qos, q in self._queues.items()},
            "brownout_level": self.brownout.level,
            "load": self.load(),
        }

    def _route_alloc(
        self, session: _Session, request: GatewayRequest
    ) -> Dict[str, object]:
        body = request.body
        try:
            gpu = self.deployment.cluster.gpu(int(body["gpu"]))
            size = int(body["size"])
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidRequestError(f"bad alloc body: {exc}") from None
        buf = session.client.alloc(gpu, size)
        fill = body.get("fill")
        if fill is not None:
            buf.view(np.float32)[:] = float(fill)  # type: ignore[arg-type]
        return {"buffer_id": buf.buffer_id, "size": buf.size}

    def _route_create_comm(
        self, session: _Session, request: GatewayRequest
    ) -> Dict[str, object]:
        body = request.body
        try:
            gpu_ids = [int(g) for g in body["gpus"]]  # type: ignore[union-attr]
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidRequestError(f"bad communicator body: {exc}") from None
        account = session.account
        live = [
            comm_id
            for comm_id in account.comm_ids
            if comm_id in session.client.communicators
        ]
        if len(live) >= account.quota.max_communicators:
            raise InvalidRequestError(
                f"tenant {account.tenant_id!r} is at its "
                f"{account.quota.max_communicators}-communicator quota"
            )
        gpus = [self.deployment.cluster.gpu(g) for g in gpu_ids]
        comm = session.client.create_communicator(gpus)
        account.comm_ids.append(comm.comm_id)
        return {"comm_id": comm.comm_id, "world": comm.world}

    def _route_destroy_comm(
        self, session: _Session, request: GatewayRequest
    ) -> Dict[str, object]:
        try:
            comm_id = int(request.body["comm"])
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidRequestError(f"bad destroy body: {exc}") from None
        comm = session.client.communicators.get(comm_id)
        if comm is None:
            raise InvalidRequestError(
                f"tenant {session.account.tenant_id!r} holds no communicator "
                f"{comm_id}"
            )
        session.client.destroy_communicator(comm)
        if comm_id in session.account.comm_ids:
            session.account.comm_ids.remove(comm_id)
        return {"destroyed": comm_id}

    def _route_slo(
        self, session: _Session, request: GatewayRequest
    ) -> Dict[str, object]:
        report = self.telemetry.slo.report()
        tenant_report = report.get(session.account.tenant_id, {})
        return {"tenant": session.account.tenant_id, "slo": tenant_report}

    # ------------------------------------------------------------------
    # metrics plumbing
    # ------------------------------------------------------------------
    def _count_request(self, request: GatewayRequest, status: int) -> None:
        self.telemetry.metrics.counter(
            "mccs_gateway_requests_total",
            "Requests answered by the gateway, by route and status code.",
        ).inc(route=f"{request.method} {request.path}", code=status)

    def _count_rejection(self, reason: str, qos: str) -> None:
        self.telemetry.metrics.counter(
            "mccs_gateway_rejections_total",
            "Typed gateway rejections (decisions, never executed), by "
            "reason and QoS class.",
        ).inc(reason=reason, qos=qos)

    def _note_breaker(self, session: _Session) -> None:
        breaker = session.breaker
        open_count = sum(
            1 for s in self._sessions.values() if s.breaker.open
        )
        self.telemetry.metrics.gauge(
            "mccs_gateway_breaker_open",
            "Tenant circuit breakers currently open.",
        ).set(open_count)
        tenant_id = session.account.tenant_id
        new_trips = breaker.trips - self._counted_trips.get(tenant_id, 0)
        if new_trips > 0:
            self._counted_trips[tenant_id] = breaker.trips
            self.telemetry.metrics.counter(
                "mccs_gateway_breaker_trips_total",
                "Circuit-breaker trips, by QoS class.",
            ).inc(new_trips, qos=session.account.quota.qos_class)
            self.telemetry.events.log(
                self.sim.now,
                "breaker_tripped",
                f"circuit of tenant {tenant_id!r} opened",
                tenant=tenant_id,
            )

    def _update_queue_gauges(self) -> None:
        gauge = self.telemetry.metrics.gauge(
            "mccs_gateway_queue_depth",
            "Requests waiting in the gateway's bounded class queues.",
        )
        for qos, queue in self._queues.items():
            gauge.set(len(queue), qos=qos)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """JSON-ready gateway statistics for experiments."""
        by_state: Dict[str, int] = {}
        for record in self.records:
            by_state[record.state.value] = by_state.get(record.state.value, 0) + 1
        return {
            "tenants": len(self.registry),
            "requests": len(self.records),
            "by_state": by_state,
            "executed": len(self.executed_ids),
            "rejected": len(self.rejected_ids),
            "breaker_trips": sum(
                s.breaker.trips for s in self._sessions.values()
            ),
            "brownout_level": self.brownout.level,
            "brownout_transitions": len(self.brownout.transitions),
            "crashes": self.crashes,
            "restarts": self.restarts,
        }
