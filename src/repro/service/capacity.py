"""Capacity planning: "how many hosts for N tenants at p99 <= X?"

The gateway's data path is well approximated by an M/M/c queue: tenant
apps issue collectives as a merged Poisson stream (thousands of
independent diurnally-modulated sources), and the deployment offers
``hosts * slots_per_host`` concurrent execution slots.  The planner uses
the Erlang-C delay formula plus the exponential tail of the M/M/c
waiting-time distribution to size the fleet for a p99 latency target,
and the fleet experiment validates the answer against the simulated
gateway.

The model intentionally prices *peak* load: callers pass the diurnal
``peak_factor`` (see :class:`repro.workloads.arrivals.DiurnalProfile`)
so the plan holds at the top of the daily cycle, not just on average.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..netsim.errors import PolicyError


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C: probability an arrival must queue in M/M/c.

    Args:
        servers: Number of servers ``c`` (must be positive).
        offered_load: ``a = lambda / mu`` in Erlangs; must satisfy
            ``a < c`` for a stable queue.

    The Erlang-B recurrence ``B(0) = 1; B(k) = a*B(k-1) / (k + a*B(k-1))``
    is numerically stable for large ``c`` (no factorials), and Erlang C
    follows as ``C = c*B / (c - a*(1 - B))``.
    """
    if servers <= 0:
        raise PolicyError("erlang_c needs at least one server")
    if offered_load < 0:
        raise PolicyError("offered load cannot be negative")
    if offered_load == 0:
        return 0.0
    if offered_load >= servers:
        return 1.0  # unstable: every arrival queues
    blocking = 1.0
    for k in range(1, servers + 1):
        blocking = offered_load * blocking / (k + offered_load * blocking)
    return servers * blocking / (servers - offered_load * (1.0 - blocking))


@dataclass(frozen=True)
class CapacityModel:
    """What one host contributes and what one request costs.

    Attributes:
        slots_per_host: Concurrent collective-execution slots per host
            (one per GPU in the default deployments).
        service_time_s: Mean per-request service time (queue + datapath).
        max_utilization: Plans above this server utilization are marked
            infeasible even if the p99 math works out — headroom for
            faults and maintenance.
    """

    slots_per_host: int = 8
    service_time_s: float = 0.002
    max_utilization: float = 0.85


@dataclass(frozen=True)
class CapacityPlan:
    """One sized configuration and its predicted behavior."""

    hosts: int
    servers: int
    arrival_rate: float
    offered_load: float
    utilization: float
    queue_probability: float
    p99_s: float
    feasible: bool

    def as_dict(self) -> dict:
        return {
            "hosts": self.hosts,
            "servers": self.servers,
            "arrival_rate": self.arrival_rate,
            "offered_load": self.offered_load,
            "utilization": self.utilization,
            "queue_probability": self.queue_probability,
            "p99_s": self.p99_s,
            "feasible": self.feasible,
        }


class CapacityPlanner:
    """Sizes a deployment for a tenant population and a p99 target."""

    def __init__(self, model: Optional[CapacityModel] = None) -> None:
        self.model = model or CapacityModel()

    # ------------------------------------------------------------------
    def evaluate(self, hosts: int, arrival_rate: float) -> CapacityPlan:
        """Predict behavior of ``hosts`` hosts under ``arrival_rate`` req/s."""
        model = self.model
        servers = hosts * model.slots_per_host
        mu = 1.0 / model.service_time_s
        offered = arrival_rate / mu
        utilization = offered / servers if servers else math.inf
        if offered >= servers:
            return CapacityPlan(
                hosts=hosts,
                servers=servers,
                arrival_rate=arrival_rate,
                offered_load=offered,
                utilization=utilization,
                queue_probability=1.0,
                p99_s=math.inf,
                feasible=False,
            )
        queue_p = erlang_c(servers, offered)
        # M/M/c waiting tail: P(W > t) = C * exp(-(c*mu - lambda) t), so
        # the p99 *wait* is ln(100 C)/(c mu - lambda) when C > 1%; the p99
        # latency adds the exponential service tail ln(100)/mu.
        drain = servers * mu - arrival_rate
        wait_p99 = math.log(100.0 * queue_p) / drain if queue_p > 0.01 else 0.0
        p99 = max(wait_p99, 0.0) + math.log(100.0) * model.service_time_s
        return CapacityPlan(
            hosts=hosts,
            servers=servers,
            arrival_rate=arrival_rate,
            offered_load=offered,
            utilization=utilization,
            queue_probability=queue_p,
            p99_s=p99,
            feasible=utilization <= model.max_utilization,
        )

    def hosts_for(
        self,
        num_tenants: int,
        rate_per_tenant: float,
        target_p99_s: float,
        *,
        peak_factor: float = 1.0,
        max_hosts: int = 100_000,
    ) -> CapacityPlan:
        """Smallest host count meeting ``target_p99_s`` at peak load."""
        if num_tenants <= 0 or rate_per_tenant <= 0:
            raise PolicyError("need a positive tenant population and rate")
        if target_p99_s <= 0:
            raise PolicyError("p99 target must be positive")
        # The exponential service tail ln(100)/mu is irreducible: no host
        # count can beat it, so refuse instead of scanning to max_hosts.
        tail = math.log(100.0) * self.model.service_time_s
        if target_p99_s < tail:
            raise PolicyError(
                f"p99 target {target_p99_s:g}s is below the service-time "
                f"tail {tail:g}s; no host count can meet it"
            )
        arrival_rate = num_tenants * rate_per_tenant * peak_factor
        model = self.model
        # Lower bound: enough servers to be stable under max_utilization.
        offered = arrival_rate * model.service_time_s
        hosts = max(
            1,
            math.ceil(offered / (model.slots_per_host * model.max_utilization)),
        )
        while hosts <= max_hosts:
            plan = self.evaluate(hosts, arrival_rate)
            if plan.feasible and plan.p99_s <= target_p99_s:
                return plan
            hosts += 1
        raise PolicyError(
            f"no feasible plan under {max_hosts} hosts for "
            f"{num_tenants} tenants at p99 <= {target_p99_s:g}s"
        )
