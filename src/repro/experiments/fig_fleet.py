"""Fleet — the tenant-facing gateway under a thousand-tenant front door.

The paper's multi-tenant premise (§1, §6.4) is that collective
communication becomes a *shared service*: many small tenants, one
provider-run control plane.  This experiment is the front-door stress
test of that premise.  A fleet of ≥1000 tenant applications — drawn from
the production product-group archetypes, each with its own API key,
quota, and QoS class — drives one :class:`~repro.service.ServiceGateway`
through its REST-shaped transport while the run layers on, in order:

* a **diurnal crest** (the :class:`~repro.workloads.arrivals.
  DiurnalProfile` sinusoid) that pushes aggregate, per-tenant-compliant
  traffic past the gateway's dispatch capacity — engaging graceful
  brownout, which sheds the low classes by typed decision while the
  high class keeps its SLO;
* **tenant storms** injected through the v3 fault plan
  (``FaultKind.TENANT_STORM`` → :meth:`FleetLoadGenerator.storm`),
  absorbed by per-tenant token buckets (429s, not collateral damage);
* **poison tenants** whose communicators are aborted mid-run: their
  circuit breakers trip and their co-resident witness tenants — same
  hosts, same service processes — must be untouched, proven byte-exactly
  with a data-carrying collective at the end;
* a **host service crash** healed by the supervisor (transient 503s at
  dispatch, absorbed by capped-exponential retries);
* a **gateway crash/restart** that rebuilds the tenant registry purely
  from the write-ahead journal.

Every issued request is answered exactly once with a typed outcome (the
zero-unhandled-exceptions ledger), and the journal replays to the live
state after all of it.  The report closes with the capacity planner's
answer to the provisioning question the experiment just measured: how
many gateway hosts does this tenant count need at the high-class p99?

``MCCS_FLEET_OUT=/path.json`` writes the rows as a JSON artifact
(consumed by the chaos CI job).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from math import ceil
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cluster.specs import custom_cluster
from ..core.admission import AdmissionPolicy
from ..core.deployment import MccsDeployment
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..netsim.errors import CommunicatorError
from ..service import (
    BreakerPolicy,
    BrownoutPolicy,
    CapacityModel,
    CapacityPlanner,
    FleetLoadGenerator,
    GatewayClient,
    GatewayPolicy,
    GatewayRetryPolicy,
    ServiceGateway,
    fleet_specs,
)
from ..workloads.arrivals import DiurnalProfile
from .report import print_table

#: GPUs per communicator (intra-host pairs keep 1000+ tenants tractable).
COMM_WORLD = 2
#: 2-GPU communicator slots per 8-GPU host.
PAIRS_PER_HOST = 4


@dataclass
class ClassRow:
    """Aggregate outcome of one QoS class (poison tenants excluded)."""

    qos: str
    tenants: int
    issued: int
    ok: int
    #: Typed decisions: 429 throttles plus 503 sheds/backpressure/breaker.
    rejected: int
    timed_out: int
    failed: int
    #: ok / (ok + failed + timed_out) — typed decisions are answers, not
    #: SLO failures; ``None`` until the class completed something.
    attainment: Optional[float]
    p99_ms: Optional[float]


@dataclass
class FleetReport:
    """One fleet run: the gateway's ledger plus every acceptance witness."""

    seed: int
    num_tenants: int
    horizon: float
    hosts: int
    classes: List[ClassRow]
    #: Highest brownout level reached and the typed low-class shed count.
    brownout_peak_level: int
    brownout_transitions: int
    brownout_shed_low: int
    brownout_shed_high: int
    throttled: int
    retries: int
    breaker_trips: int
    poison_tenants: List[str]
    #: Every poison tenant's breaker tripped at least once.
    poison_tripped: bool
    witness_tenants: List[str]
    #: Witnesses co-resident with poison tenants saw zero 5xx outcomes.
    witness_unharmed: bool
    #: ...and their final data-carrying collective was byte-exact.
    witness_byte_exact: bool
    gateway_crashes: int
    gateway_restarts: int
    #: Tenant accounts rebuilt from the journal on gateway restart.
    restored_tenants: int
    service_crashes: int
    service_restarts: int
    #: Every issued request received exactly one typed response.
    responses_accounted: bool
    journal_records: int
    #: Mismatch lines from replaying the journal (must be empty).
    journal_diff: List[str]
    #: Capacity planner: hosts for this tenant count at the high-class p99.
    planner_hosts: int


def _fleet_cluster(num_tenants: int):
    hosts_needed = ceil(num_tenants / PAIRS_PER_HOST)
    hosts_per_leaf = min(16, hosts_needed)
    return custom_cluster(
        num_spines=2,
        num_leaves=ceil(hosts_needed / hosts_per_leaf),
        hosts_per_leaf=hosts_per_leaf,
        gpus_per_host=2 * PAIRS_PER_HOST,
        nics_per_host=2,
        name="fleet",
    )


def _assignment(specs) -> Dict[str, List[int]]:
    """Pack tenants four-to-a-host: tenant ``i`` gets the ``i % 4``-th
    GPU pair of host ``i // 4`` (co-residency is the point — poison and
    witness tenants share hosts)."""
    out: Dict[str, List[int]] = {}
    for i, spec in enumerate(specs):
        host = i // PAIRS_PER_HOST
        pair = i % PAIRS_PER_HOST
        base = host * 2 * PAIRS_PER_HOST + 2 * pair
        out[spec.tenant_id] = [base, base + 1]
    return out


def run_fleet(
    *,
    num_tenants: int = 1000,
    seed: int = 0,
    horizon: float = 0.4,
    base_rate: float = 2.0,
    nbytes_choices: Sequence[int] = (4 << 20, 8 << 20, 16 << 20),
    poison: int = 4,
    storms: int = 0,
    gateway_crash: bool = True,
    service_crash: bool = True,
    high_p99_target: float = 0.05,
) -> FleetReport:
    """Run the fleet scenario and collect every acceptance witness.

    Args:
        num_tenants: Fleet size (the paper-scale run uses 1000).
        poison: Tenants whose communicator is aborted mid-run (hosts
            ``0..poison-1``, one per host, each with a co-resident
            witness).
        storms: Tenants hit by v3 ``tenant_storm`` fault events at the
            diurnal crest (0 = scale with the fleet).
    """
    cluster = _fleet_cluster(num_tenants)
    deployment = MccsDeployment(cluster, ecmp_seed=seed)
    deployment.enable_service_supervision(restart_delay=0.03)
    deployment.configure_admission(
        AdmissionPolicy(
            classes=(("high", 64), ("normal", 64), ("low", 64)),
            priority=("high", "normal", "low"),
        )
    )
    policy = GatewayPolicy(
        queue_capacity=16,
        max_inflight=4,
        default_deadline=0.12,
        retry=GatewayRetryPolicy(max_retries=8, backoff_base=0.002, backoff_cap=0.03),
        breaker=BreakerPolicy(
            window=6, min_samples=3, failure_threshold=0.5, cooldown=0.1
        ),
        brownout=BrownoutPolicy(watermarks=(0.40, 0.70), hysteresis=0.15),
    )
    gateway = ServiceGateway(deployment, policy)

    specs = fleet_specs(
        num_tenants, seed=seed, base_rate=base_rate, nbytes_choices=nbytes_choices
    )
    # One diurnal cycle over the run; crest at horizon/2.
    profile = DiurnalProfile(
        period=horizon, amplitude=0.8, phase=horizon / 4.0, floor=0.1
    )
    gen = FleetLoadGenerator(gateway, specs, seed=seed, profile=profile)
    gen.provision(_assignment(specs))

    # Poison tenants (one per host h < poison) and their co-resident
    # witnesses (the next pair on the same host).
    poison = min(poison, num_tenants // PAIRS_PER_HOST)
    poison_ids = [specs[h * PAIRS_PER_HOST].tenant_id for h in range(poison)]
    witness_ids = [specs[h * PAIRS_PER_HOST + 1].tenant_id for h in range(poison)]

    def poison_comms() -> None:
        for tenant_id in poison_ids:
            app = next(a for a in gen.apps() if a.spec.tenant_id == tenant_id)
            deployment.communicator(app.comm_id).abort(
                CommunicatorError(f"{tenant_id} corrupted its communicator")
            )
            # The poisoned app keeps firing hard, so its breaker sees a
            # run of 5xx outcomes and trips.
            gen.storm(tenant_id, 30.0)

    cluster.sim.call_in(0.20 * horizon, poison_comms)

    # Tenant storms at the diurnal crest, delivered through the v3 fault
    # plan (absorbed by per-tenant token buckets, not by collapse).
    if storms <= 0:
        storms = max(4, num_tenants // 25)
    injector = FaultInjector(cluster, deployment=deployment,
                            telemetry=deployment.telemetry())
    gen.bind_injector(injector)
    plan = FaultPlan()
    storm_victims = [
        spec.tenant_id
        for spec in specs[poison * PAIRS_PER_HOST:][:storms]
    ]
    for tenant_id in storm_victims:
        plan.tenant_storm(
            0.40 * horizon, tenant_id, factor=50.0, duration=0.20 * horizon
        )
    injector.schedule(plan)

    # Host service crashes among tenants that are neither poison,
    # witness, nor high-class, timed at the diurnal crest so live
    # dispatches hit the dead services (the supervisor heals them;
    # affected tenants ride the gateway's transient-retry path).
    service_crashes = 0
    if service_crash:
        victims: List[int] = []
        for host in range(poison, num_tenants // PAIRS_PER_HOST):
            residents = specs[host * PAIRS_PER_HOST:(host + 1) * PAIRS_PER_HOST]
            if all(s.qos_class != "high" for s in residents):
                victims.append(host)
            if len(victims) >= 8:
                break
        service_crashes = len(victims)
        for host in victims:
            cluster.sim.call_in(
                0.50 * horizon,
                lambda host=host: deployment.crash_service(host),
            )

    # Per-tenant breaker state is volatile gateway-process state (only
    # the registry is durable), so snapshot poison trips before the crash.
    poison_trips: Dict[str, int] = {}

    def snapshot_trips() -> None:
        for tenant_id in poison_ids:
            poison_trips[tenant_id] = gateway.breaker_of(tenant_id).trips

    cluster.sim.call_in(0.68 * horizon, snapshot_trips)

    restored = [0]
    if gateway_crash:
        cluster.sim.call_in(0.70 * horizon, gateway.crash)

        def restart() -> None:
            restored[0] = gateway.restart()

        cluster.sim.call_in(0.74 * horizon, restart)

    gen.start(horizon)
    deployment.run()

    # ------------------------------------------------------------------
    # Byte-exact witness collectives (post-drain, data-carrying).
    # ------------------------------------------------------------------
    byte_exact = True
    assignment = _assignment(specs)
    for tenant_id in witness_ids:
        session = gateway.session_of(tenant_id)
        client = GatewayClient(gen.transport, api_key=session.account.key.raw)
        gpus = assignment[tenant_id]
        comm_id = session.account.comm_ids[0]
        send_calls = [client.alloc(gpu, 256, fill=3.0) for gpu in gpus]
        recv_calls = [client.alloc(gpu, 256) for gpu in gpus]
        deployment.run()
        if not all(call.ok for call in send_calls + recv_calls):
            byte_exact = False
            continue
        final = client.collective(
            comm_id,
            256,
            send_buffers=[c.response.body["buffer_id"] for c in send_calls],
            recv_buffers=[c.response.body["buffer_id"] for c in recv_calls],
            ttl=5.0,
        )
        deployment.run()
        if not final.ok:
            byte_exact = False
            continue
        for call in recv_calls:
            buffer_id = call.response.body["buffer_id"]
            data = session.client.buffers[buffer_id].view(np.float32)
            if not np.allclose(data, 3.0 * COMM_WORLD):
                byte_exact = False

    # ------------------------------------------------------------------
    # Aggregate the ledger.
    # ------------------------------------------------------------------
    poisoned = set(poison_ids)
    by_class: Dict[str, ClassRow] = {}
    responses_accounted = True
    for app in gen.apps():
        if sum(app.outcomes.values()) != app.issued:
            responses_accounted = False
        if app.spec.tenant_id in poisoned:
            continue
        row = by_class.setdefault(
            app.spec.qos_class,
            ClassRow(
                qos=app.spec.qos_class, tenants=0, issued=0, ok=0, rejected=0,
                timed_out=0, failed=0, attainment=None, p99_ms=None,
            ),
        )
        row.tenants += 1
        row.issued += app.issued
        row.ok += app.ok
        row.timed_out += app.outcomes.get(504, 0)
        row.rejected += app.rejected - app.outcomes.get(504, 0)
        row.failed += app.failed
    latencies: Dict[str, List[float]] = {}
    for record in gateway.records:
        if record.tenant in poisoned or record.finished_at is None:
            continue
        if record.state.value == "ok":
            latencies.setdefault(record.qos, []).append(
                record.finished_at - record.accepted_at
            )
    for qos, row in by_class.items():
        answered = row.ok + row.failed + row.timed_out
        row.attainment = row.ok / answered if answered else None
        samples = sorted(latencies.get(qos, []))
        if samples:
            row.p99_ms = samples[min(
                int(ceil(0.99 * len(samples))) - 1, len(samples) - 1
            )] * 1e3

    witness_unharmed = all(
        next(a for a in gen.apps() if a.spec.tenant_id == t).failed == 0
        for t in witness_ids
    )
    metrics = deployment.telemetry().metrics
    rejections = metrics.get("mccs_gateway_rejections_total")
    throttled = metrics.get("mccs_gateway_throttled_total")
    retried = metrics.get("mccs_gateway_retries_total")
    tripped = metrics.get("mccs_gateway_breaker_trips_total")

    # Capacity planner: answer the provisioning question this run just
    # measured, using the observed mean completion latency as the service
    # time and the diurnal crest as the peak factor.
    all_latencies = [v for values in latencies.values() for v in values]
    model = CapacityModel(
        slots_per_host=policy.max_inflight,
        service_time_s=(
            sum(all_latencies) / len(all_latencies) if all_latencies else 0.002
        ),
    )
    planner = CapacityPlanner(model)
    mean_rate = sum(s.rate for s in specs) / len(specs)
    planner_hosts = planner.hosts_for(
        num_tenants, mean_rate, high_p99_target, peak_factor=profile.peak_factor
    ).hosts

    order = {"high": 0, "normal": 1, "low": 2}
    return FleetReport(
        seed=seed,
        num_tenants=num_tenants,
        horizon=horizon,
        hosts=len(cluster.hosts),
        classes=sorted(
            by_class.values(), key=lambda r: order.get(r.qos, 99)
        ),
        brownout_peak_level=max(
            [new for _, _, new in gateway.brownout.transitions] or [0]
        ),
        brownout_transitions=len(gateway.brownout.transitions),
        brownout_shed_low=int(
            rejections.value(reason="brownout", qos="low") if rejections else 0
        ),
        brownout_shed_high=int(
            rejections.value(reason="brownout", qos="high") if rejections else 0
        ),
        throttled=int(throttled.total() if throttled else 0),
        retries=int(retried.total() if retried else 0),
        breaker_trips=int(tripped.total() if tripped else 0),
        poison_tenants=poison_ids,
        poison_tripped=all(
            poison_trips.get(t, 0) >= 1 for t in poison_ids
        ),
        witness_tenants=witness_ids,
        witness_unharmed=witness_unharmed,
        witness_byte_exact=byte_exact,
        gateway_crashes=gateway.crashes,
        gateway_restarts=gateway.restarts,
        restored_tenants=restored[0],
        service_crashes=sum(s.crashes for s in deployment.services.values()),
        service_restarts=sum(s.restarts for s in deployment.services.values()),
        responses_accounted=responses_accounted,
        journal_records=len(deployment.journal),
        journal_diff=deployment.verify_journal(),
        planner_hosts=planner_hosts,
    )


def main() -> None:
    report = run_fleet()
    rows = []
    for row in report.classes:
        rows.append(
            (
                row.qos,
                str(row.tenants),
                str(row.issued),
                str(row.ok),
                str(row.rejected),
                str(row.timed_out),
                str(row.failed),
                f"{row.attainment:.4f}" if row.attainment is not None else "-",
                f"{row.p99_ms:.2f}" if row.p99_ms is not None else "-",
            )
        )
    print("Fleet: tenant-facing gateway front door")
    print_table(
        (
            "class", "tenants", "issued", "ok", "rejected", "timeout",
            "failed", "attainment", "p99 ms",
        ),
        rows,
    )
    print(
        f"tenants={report.num_tenants} hosts={report.hosts} "
        f"brownout peak={report.brownout_peak_level} "
        f"(shed low={report.brownout_shed_low}, high={report.brownout_shed_high}) "
        f"throttled={report.throttled} retries={report.retries} "
        f"breaker trips={report.breaker_trips}"
    )
    print(
        f"gateway crash/restart={report.gateway_crashes}/{report.gateway_restarts} "
        f"(restored {report.restored_tenants} tenants) "
        f"service crashes={report.service_crashes} "
        f"journal={report.journal_records} records "
        f"planner: {report.planner_hosts} host(s) for the fleet"
    )

    assert report.num_tenants >= 1000, "fleet must sustain >= 1000 tenants"
    assert report.responses_accounted, "a request went unanswered"
    assert not report.journal_diff, report.journal_diff
    assert report.restored_tenants == report.num_tenants, (
        "gateway restart must restore every tenant from the journal"
    )
    assert report.brownout_peak_level >= 1, "diurnal crest never browned out"
    assert report.brownout_shed_low > 0, "brownout shed no low-class traffic"
    assert report.brownout_shed_high == 0, "brownout must never shed high"
    high = next(r for r in report.classes if r.qos == "high")
    assert high.attainment is not None and high.attainment >= 0.99, (
        f"high-class attainment {high.attainment} below 0.99"
    )
    assert report.poison_tripped, "a poison tenant's breaker never tripped"
    assert report.witness_unharmed, "poison blast radius reached a witness"
    assert report.witness_byte_exact, "witness collective was not byte-exact"
    assert report.throttled > 0, "tenant storms never hit the rate limiter"
    assert report.retries > 0, "service crashes never exercised the retry path"

    out = os.environ.get("MCCS_FLEET_OUT")
    if out:
        payload = {"experiment": "fleet", "report": asdict(report)}
        with open(out, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"[fleet JSON written to {out}]")


if __name__ == "__main__":
    main()
