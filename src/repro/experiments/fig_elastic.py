"""Elastic — live membership churn on a WAN-joined multi-region fabric.

Not a figure from the paper, but the robustness counterpart of its
premise: if collective communication is a *managed service*, a tenant's
communicator must survive the provider reshaping it — ranks joining from
a remote region, ranks leaving, WAN bandwidth drifting under someone
else's traffic, and the control plane crashing mid-churn.

The setup is two Clos regions joined by thin, high-RTT WAN links
(:func:`~repro.cluster.specs.multi_region_cluster`).  Tenant ``geo`` runs
a geo-distributed data-parallel job that starts inside region 0; tenant
``local`` is a witness contained entirely in region 1.  Each cycle the
experiment:

1. runs a burst of AllReduces on both tenants,
2. **grows** ``geo`` by a spare region-1 GPU (the communicator now
   crosses the WAN; the autotuner sees a new placement fingerprint),
3. **drifts** the WAN link capacities along a seeded random walk while
   traffic is in flight,
4. **shrinks** ``geo`` back out of region 1,
5. **crashes** one MCCS service and lets the supervisor restart it from
   the journal, and
6. issues one byte-carrying AllReduce per tenant and checks the result
   exactly.

Asserted bars: every cycle's finals are byte-exact, the journal replays
to the live control plane (``verify_journal() == []``), the witness
completes exactly its baseline count with zero failures (blast radius
zero), and at least one autotuner retune is attributed to a membership
epoch.  ``MCCS_ELASTIC_OUT=/path.json`` writes the report as a JSON
artifact (consumed by the chaos CI job).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cluster.specs import Cluster, multi_region_cluster
from ..core.admission import AdmissionPolicy
from ..core.deployment import MccsDeployment
from ..core.recovery import RecoveryPolicy
from ..faults import BandwidthDriftPlan, FaultInjector
from ..netsim.errors import MccsError
from ..netsim.fabric import RegionSpec, wan_links
from ..workloads.traces import geo_distributed_trace
from .report import print_table

#: Region-1 GPU admitted into (and later removed from) the geo tenant.
JOINER_GPU = 4
#: Region-0 host whose MCCS service is kill/restarted every cycle.
VICTIM_HOST = 1
#: AllReduces per tenant per burst phase.
BURST_OPS = 3


@dataclass
class CycleRow:
    """Outcome of one grow/drift/shrink/crash cycle."""

    cycle: int
    grow_state: str
    shrink_state: str
    world_after: int
    membership_epoch: int
    drift_events: int
    geo_bytes_ok: bool
    witness_bytes_ok: bool


@dataclass
class ElasticReport:
    seed: int
    cycles: List[CycleRow]
    geo_completed: int
    geo_failed: int
    witness_completed: int
    witness_failed: int
    witness_baseline_completed: int
    epoch_retunes: int
    membership_changes: int
    service_crashes: int
    service_restarts: int
    journal_records: int
    journal_diff: List[str]
    blast_radius_zero: bool

    @property
    def bytes_exact(self) -> bool:
        return all(c.geo_bytes_ok and c.witness_bytes_ok for c in self.cycles)


def _burst(
    client, comm, count: int, op_bytes: int, ops: List
) -> None:
    for _ in range(count):
        try:
            ops.append(client.all_reduce(comm, op_bytes))
        except MccsError:
            pass


def _byte_final(deployment: MccsDeployment, client, comm) -> bool:
    """One data-carrying AllReduce, checked exactly against the world."""
    svc = deployment.communicator(comm.comm_id)
    gpus = list(svc.gpus)
    sends = [client.alloc(g, 256) for g in gpus]
    recvs = [client.alloc(g, 256) for g in gpus]
    for buf in sends:
        buf.view(np.float32)[:] = 2.0
    op = client.all_reduce(
        comm, 256, send=[b.ref() for b in sends], recv=[b.ref() for b in recvs]
    )
    deployment.run()
    ok = op.completed and all(
        np.allclose(r.view(np.float32), 2.0 * len(gpus)) for r in recvs
    )
    for buf in sends + recvs:
        client.free(buf)
    deployment.run()
    return ok


def _run(
    *, seed: int, cycles: int, op_bytes: int, disturb: bool
) -> Dict[str, object]:
    """One full run; ``disturb=False`` is the witness baseline."""
    spec = RegionSpec()
    cluster = multi_region_cluster(spec)
    deployment = MccsDeployment(cluster, ecmp_seed=seed)
    deployment.enable_recovery(RecoveryPolicy(collective_deadline=1.0))
    deployment.enable_service_supervision(restart_delay=0.02)
    deployment.configure_admission(AdmissionPolicy())
    deployment.enable_autotuning()
    elastic = deployment.enable_elasticity()
    injector = FaultInjector(
        cluster, deployment=deployment, telemetry=deployment.telemetry()
    )
    wan = wan_links(cluster.fabric)

    geo_client = deployment.connect("geo")
    local_client = deployment.connect("local")
    region0 = [cluster.gpu(i) for i in range(4)]
    geo_comm = geo_client.create_communicator(region0)
    witness_gpus = [cluster.gpu(6), cluster.gpu(7)]
    local_comm = local_client.create_communicator(witness_gpus)

    geo_ops: List = []
    witness_ops: List = []
    rows: List[CycleRow] = []
    membership: List = []
    trace = geo_distributed_trace(1, wan_rtt=spec.wan_rtt)
    burst_bytes = max(op_bytes, trace.steps[0].out_bytes)

    for cycle in range(cycles):
        _burst(geo_client, geo_comm, BURST_OPS, burst_bytes, geo_ops)
        _burst(local_client, local_comm, BURST_OPS, op_bytes, witness_ops)
        deployment.run()

        grow_state = shrink_state = "skipped"
        drift_events = 0
        if disturb:
            # Grow into region 1: the communicator now crosses the WAN.
            record = elastic.grow(
                geo_comm.comm_id,
                [cluster.gpu(JOINER_GPU)],
                on_done=membership.append,
            )
            deployment.run()
            grow_state = record.state
            geo_comm = geo_client.adopt_communicator(geo_comm.comm_id)

            # WAN bandwidth drift while the grown communicator trains.
            drift = BandwidthDriftPlan(
                links=wan,
                start=cluster.sim.now + 0.01,
                interval=0.05,
                steps=3,
                seed=seed * 101 + cycle,
            )
            plan = drift.to_fault_plan()
            drift_events = len(plan)
            injector.schedule(plan)
            _burst(geo_client, geo_comm, BURST_OPS, burst_bytes, geo_ops)
            _burst(local_client, local_comm, BURST_OPS, op_bytes, witness_ops)
            deployment.run()

            # Shrink back out of region 1 (graceful leave of the joiner).
            svc = deployment.communicator(geo_comm.comm_id)
            record = elastic.shrink(
                geo_comm.comm_id,
                [svc.world - 1],
                on_done=membership.append,
            )
            deployment.run()
            shrink_state = record.state
            geo_comm = geo_client.adopt_communicator(geo_comm.comm_id)

            # Kill one region-0 service; the supervisor replays the journal.
            deployment.crash_service(VICTIM_HOST)
            deployment.run()
        else:
            # Baseline issues the same witness work with no disturbance.
            _burst(geo_client, geo_comm, BURST_OPS, burst_bytes, geo_ops)
            _burst(local_client, local_comm, BURST_OPS, op_bytes, witness_ops)
            deployment.run()

        svc = deployment.communicator(geo_comm.comm_id)
        rows.append(
            CycleRow(
                cycle=cycle,
                grow_state=grow_state,
                shrink_state=shrink_state,
                world_after=svc.world,
                membership_epoch=svc.membership_epoch,
                drift_events=drift_events,
                geo_bytes_ok=_byte_final(deployment, geo_client, geo_comm),
                witness_bytes_ok=_byte_final(
                    deployment, local_client, local_comm
                ),
            )
        )

    return {
        "deployment": deployment,
        "rows": rows,
        "geo_ops": geo_ops,
        "witness_ops": witness_ops,
        "membership": membership,
    }


def run_elastic(
    *, seed: int = 0, cycles: int = 3, op_bytes: int = 4 * 1024**2
) -> ElasticReport:
    """Run the elastic churn experiment plus its no-disturbance baseline."""
    baseline = _run(seed=seed, cycles=cycles, op_bytes=op_bytes, disturb=False)
    run = _run(seed=seed, cycles=cycles, op_bytes=op_bytes, disturb=True)

    deployment: MccsDeployment = run["deployment"]
    witness_completed = sum(1 for op in run["witness_ops"] if op.completed)
    witness_failed = sum(1 for op in run["witness_ops"] if op.failed)
    baseline_completed = sum(
        1 for op in baseline["witness_ops"] if op.completed
    )
    autotuner = deployment.autotuner
    return ElasticReport(
        seed=seed,
        cycles=run["rows"],
        geo_completed=sum(1 for op in run["geo_ops"] if op.completed),
        geo_failed=sum(1 for op in run["geo_ops"] if op.failed),
        witness_completed=witness_completed,
        witness_failed=witness_failed,
        witness_baseline_completed=baseline_completed,
        epoch_retunes=(
            autotuner.epoch_retunes() if autotuner is not None else 0
        ),
        membership_changes=len(run["membership"]),
        service_crashes=sum(
            s.crashes for s in deployment.services.values()
        ),
        service_restarts=sum(
            s.restarts for s in deployment.services.values()
        ),
        journal_records=len(deployment.journal),
        journal_diff=deployment.verify_journal(),
        blast_radius_zero=(
            witness_failed == 0 and witness_completed == baseline_completed
        ),
    )


def main(seeds: Sequence[int] = (0,), cycles: int = 3) -> None:
    reports = [run_elastic(seed=seed, cycles=cycles) for seed in seeds]
    rows = []
    for report in reports:
        for cyc in report.cycles:
            rows.append(
                (
                    str(report.seed),
                    str(cyc.cycle),
                    cyc.grow_state,
                    cyc.shrink_state,
                    str(cyc.world_after),
                    str(cyc.membership_epoch),
                    str(cyc.drift_events),
                    "yes" if cyc.geo_bytes_ok else "NO",
                    "yes" if cyc.witness_bytes_ok else "NO",
                )
            )
    print_table(
        (
            "seed", "cycle", "grow", "shrink", "world", "epoch",
            "drift", "geo bytes", "witness bytes",
        ),
        rows,
    )
    for report in reports:
        print(
            f"seed {report.seed}: membership_changes="
            f"{report.membership_changes} epoch_retunes={report.epoch_retunes} "
            f"crashes={report.service_crashes} restarts="
            f"{report.service_restarts} witness={report.witness_completed}/"
            f"{report.witness_baseline_completed} journal="
            f"{report.journal_records} records"
        )
        assert report.bytes_exact, "a post-cycle collective was not byte-exact"
        assert not report.journal_diff, report.journal_diff
        assert report.blast_radius_zero, (
            "witness tenant was disturbed by elastic churn in the other region"
        )
        assert report.epoch_retunes >= 1, (
            "no autotuner retune was attributed to a membership epoch"
        )
        assert all(
            c.grow_state == "done" and c.shrink_state == "done"
            for c in report.cycles
        ), "a membership change did not commit"
    out = os.environ.get("MCCS_ELASTIC_OUT")
    if out:
        payload = {
            "experiment": "elastic",
            "reports": [asdict(report) for report in reports],
        }
        with open(out, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"[elastic JSON written to {out}]")


if __name__ == "__main__":
    main()
