"""Synthesis experiment — synthesized schedules vs the best built-in.

For each fabric (the single-region testbed and the two-region WAN
fabric), the synthesizer searches the placement
(:func:`repro.synth.synthesize_and_register`), and the best synthesized
schedule is raced against the best built-in planner candidate across a
sweep of message sizes — both measured on their own deployments through
the real flow data plane.  On the two-region fabric one *tuned*
deployment then starts from the default strategy and lets the
:class:`~repro.autotune.AutoTuner` discover the synthesized schedule
live.

Expected result: on the WAN fabric the two-level synthesized schedule
wins every bandwidth-bound size (it ships ~S per WAN direction where any
flat ring ships ~2S), the tuner adopts it through the §4.2
reconfiguration barrier with zero inconsistent collectives, and on the
single-region testbed the synthesized candidates at worst tie the
built-ins — the planner never regresses by offering them.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..autotune import AutotuneConfig, StrategyPlanner
from ..cluster.gpu import GpuDevice
from ..cluster.specs import Cluster, multi_region_cluster, testbed_cluster
from ..collectives.ring import RingSchedule
from ..collectives.types import Collective
from ..core.algorithms import unregister_algorithm
from ..core.deployment import MccsDeployment
from ..core.strategy import CollectiveStrategy
from ..netsim.fabric import RegionSpec
from ..netsim.units import KB, MB, format_size
from ..synth import synthesize_and_register
from .report import print_table
from .setups import single_app_gpus

DEFAULT_SIZES = (64 * KB, 1 * MB, 16 * MB, 64 * MB)

#: One pinned datapath namespace so every deployment draws identical
#: ECMP paths: the sweep compares schedules, not path luck.
_DATAPATH_TAG = "synth"

#: Environment variable naming a JSON file to dump the results into.
OUT_ENV = "MCCS_SYNTH_OUT"

FabricFactory = Tuple[
    Callable[[], Cluster], Callable[[Cluster], List[GpuDevice]]
]

_FABRICS: Dict[str, FabricFactory] = {
    "testbed": (
        testbed_cluster,
        lambda cluster: list(single_app_gpus(cluster, "8gpu")),
    ),
    "two_region": (
        lambda: multi_region_cluster(RegionSpec()),
        lambda cluster: [h.gpus[0] for h in cluster.hosts],
    ),
}


@dataclass
class SizePoint:
    """Best synthesized vs best built-in at one message size."""

    size: int
    builtin_label: str
    builtin_seconds: float
    synth_label: str
    synth_seconds: float

    @property
    def synth_wins(self) -> bool:
        return self.synth_seconds < self.builtin_seconds

    @property
    def speedup(self) -> float:
        return self.builtin_seconds / self.synth_seconds


@dataclass
class TunedResult:
    """Outcome of the live tuner run on one fabric."""

    algorithm: str
    retunes: int
    barrier_only: bool
    inconsistent: int
    first: float
    tail_mean: float

    @property
    def adopted_synth(self) -> bool:
        return self.algorithm.startswith("synth:")


@dataclass
class FabricResult:
    fabric: str
    world: int
    synthesized: List[str] = field(default_factory=list)
    points: List[SizePoint] = field(default_factory=list)
    tuned: Optional[TunedResult] = None


def _measure(
    make_cluster: Callable[[], Cluster],
    pick_gpus: Callable[[Cluster], List[GpuDevice]],
    size: int,
    *,
    algorithm: str,
    channels: int,
    ring: Tuple[int, ...],
    iters: int,
) -> float:
    """Mean AllReduce duration under one fixed strategy."""
    cluster = make_cluster()
    gpus = pick_gpus(cluster)
    deployment = MccsDeployment(cluster)
    strategy = CollectiveStrategy(
        ring=RingSchedule(tuple(ring)), channels=channels, algorithm=algorithm
    )
    comm = deployment.create_communicator(
        "A", gpus, strategy=strategy, datapath_tag=_DATAPATH_TAG
    )
    client = deployment.connect("A")
    shim_comm = client.adopt_communicator(comm.comm_id)
    durations: List[float] = []
    for _ in range(iters):
        client.all_reduce(
            shim_comm,
            size,
            on_complete=lambda inst, now: durations.append(inst.duration()),
        )
        deployment.run()
    return sum(durations) / len(durations)


def _measure_tuned(
    make_cluster: Callable[[], Cluster],
    pick_gpus: Callable[[Cluster], List[GpuDevice]],
    size: int,
    *,
    rounds: int,
    tail: int,
    config: Optional[AutotuneConfig],
) -> TunedResult:
    """Run the online tuner from the default strategy; report the tail."""
    cluster = make_cluster()
    gpus = pick_gpus(cluster)
    deployment = MccsDeployment(cluster)
    tuner = deployment.enable_autotuning(config)
    comm = deployment.create_communicator(
        "A", gpus, datapath_tag=_DATAPATH_TAG
    )
    client = deployment.connect("A")
    shim_comm = client.adopt_communicator(comm.comm_id)
    durations: List[float] = []
    for _ in range(rounds):
        client.all_reduce(
            shim_comm,
            size,
            on_complete=lambda inst, now: durations.append(inst.duration()),
        )
        deployment.run()
    sessions = deployment.reconfig.sessions
    return TunedResult(
        algorithm=comm.strategy.algorithm,
        retunes=tuner.retunes_applied(comm.comm_id),
        barrier_only=bool(sessions)
        and all(s.barrier_enabled for s in sessions),
        inconsistent=comm.inconsistent_collectives,
        first=durations[0],
        tail_mean=sum(durations[-tail:]) / tail,
    )


def _race(
    make_cluster: Callable[[], Cluster],
    pick_gpus: Callable[[Cluster], List[GpuDevice]],
    size: int,
    *,
    iters: int,
) -> SizePoint:
    """Measure the planner's best synthesized and best built-in pick."""
    cluster = make_cluster()
    gpus = pick_gpus(cluster)
    ranked = StrategyPlanner(cluster).plan(Collective.ALL_REDUCE, size, gpus)

    def best(synth: bool):
        for scored in ranked:
            if scored.candidate.algorithm.startswith("synth:") is synth:
                return scored.candidate
        return None

    builtin = best(synth=False)
    synth = best(synth=True)
    if synth is None:
        raise RuntimeError("no synthesized candidate in the plan")
    builtin_seconds = _measure(
        make_cluster, pick_gpus, size,
        algorithm=builtin.algorithm, channels=builtin.channels,
        ring=builtin.ring, iters=iters,
    )
    synth_seconds = _measure(
        make_cluster, pick_gpus, size,
        algorithm=synth.algorithm, channels=synth.channels,
        ring=synth.ring, iters=iters,
    )
    return SizePoint(
        size=size,
        builtin_label=f"{builtin.algorithm}/ch{builtin.channels}"
        f"/{builtin.ring_label}",
        builtin_seconds=builtin_seconds,
        synth_label=synth.algorithm,
        synth_seconds=synth_seconds,
    )


def run_synth(
    *,
    fabrics: Sequence[str] = ("testbed", "two_region"),
    sizes: Sequence[int] = DEFAULT_SIZES,
    static_iters: int = 2,
    tune_rounds: int = 30,
    tail: int = 4,
    tune_size: int = 16 * MB,
    config: Optional[AutotuneConfig] = None,
) -> List[FabricResult]:
    """Synthesized-vs-builtin sweep, plus the tuner adoption run."""
    results: List[FabricResult] = []
    for fabric in fabrics:
        make_cluster, pick_gpus = _FABRICS[fabric]
        cluster = make_cluster()
        gpus = pick_gpus(cluster)
        algos = synthesize_and_register(cluster, gpus)
        result = FabricResult(
            fabric=fabric,
            world=len(gpus),
            synthesized=[a.name for a in algos],
        )
        try:
            for size in sizes:
                result.points.append(
                    _race(make_cluster, pick_gpus, size, iters=static_iters)
                )
            if fabric == "two_region":
                result.tuned = _measure_tuned(
                    make_cluster,
                    pick_gpus,
                    tune_size,
                    rounds=tune_rounds,
                    tail=tail,
                    config=config,
                )
        finally:
            for algo in algos:
                unregister_algorithm(algo.name)
        results.append(result)
    return results


def as_table(results: List[FabricResult]) -> List[List[str]]:
    header = [
        "Fabric", "Size", "Best built-in", "Built-in (us)",
        "Synthesized (us)", "Speedup", "Synth wins",
    ]
    rows = []
    for result in results:
        for point in result.points:
            rows.append(
                [
                    result.fabric,
                    format_size(point.size),
                    point.builtin_label,
                    f"{point.builtin_seconds * 1e6:.1f}",
                    f"{point.synth_seconds * 1e6:.1f}",
                    f"{point.speedup:.2f}x",
                    "yes" if point.synth_wins else "no",
                ]
            )
    return [header] + rows


def as_json(results: List[FabricResult]) -> Dict[str, object]:
    return {
        "fabrics": [
            {
                "fabric": r.fabric,
                "world": r.world,
                "synthesized": r.synthesized,
                "points": [
                    {
                        "size": p.size,
                        "builtin_label": p.builtin_label,
                        "builtin_seconds": p.builtin_seconds,
                        "synth_label": p.synth_label,
                        "synth_seconds": p.synth_seconds,
                        "speedup": p.speedup,
                        "synth_wins": p.synth_wins,
                    }
                    for p in r.points
                ],
                "tuned": None
                if r.tuned is None
                else {
                    "algorithm": r.tuned.algorithm,
                    "adopted_synth": r.tuned.adopted_synth,
                    "retunes": r.tuned.retunes,
                    "barrier_only": r.tuned.barrier_only,
                    "inconsistent": r.tuned.inconsistent,
                    "first": r.tuned.first,
                    "tail_mean": r.tuned.tail_mean,
                },
            }
            for r in results
        ],
    }


def main(tune_rounds: int = 30, static_iters: int = 2) -> None:
    results = run_synth(tune_rounds=tune_rounds, static_iters=static_iters)
    table = as_table(results)
    print_table(
        table[0],
        table[1:],
        title="Synthesis — synthesized schedules vs best built-in",
    )
    for result in results:
        if result.tuned is None:
            continue
        tuned = result.tuned
        print(
            f"tuner on {result.fabric}: {tuned.algorithm} "
            f"(adopted_synth={tuned.adopted_synth}, "
            f"retunes={tuned.retunes}, barrier_only={tuned.barrier_only}, "
            f"inconsistent={tuned.inconsistent}, "
            f"first={tuned.first * 1e6:.1f}us, "
            f"tail={tuned.tail_mean * 1e6:.1f}us)"
        )
    out_path = os.environ.get(OUT_ENV)
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(as_json(results), fh, indent=2, sort_keys=True)
        print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
