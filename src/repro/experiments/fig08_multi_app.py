"""Figure 8 — multi-application bus bandwidth under four placements.

All tenants of a setup run 128 MB AllReduce loops concurrently; we report
each tenant's *bus bandwidth* (nccl-tests normalization — independent of
algorithm and participant count, so it reflects each tenant's share of
the hardware bottleneck).  Four systems, as in Figure 6, with MCCS(-FFA)
being the ablation without fair flow assignment.

Expected shape (§6.3): MCCS achieves both the highest aggregate bus
bandwidth and fairness — equal splits in setups 1, 2 and 4, and a 2:1:1
split in setup 3 where tenant A owns twice the NICs per host; the ECMP
variants are unfair (the paper measures 1.7:1 instead of 2:1 in setup 3)
and lose aggregate bandwidth to flow collisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..baselines.nccl import NcclCommunicator
from ..cluster.specs import testbed_cluster
from ..collectives.bandwidth import busbw_factor
from ..collectives.types import Collective
from ..core.controller import CentralManager
from ..core.deployment import MccsDeployment
from ..core.policies.ring_order import locality_ring_order
from ..netsim.units import MB
from .report import Stat, print_table
from .setups import TenantPlacement, multi_app_setups, naive_tenant_order

SYSTEMS = ("nccl", "nccl_or", "mccs_noffa", "mccs")
SYSTEM_LABELS = {
    "nccl": "NCCL",
    "nccl_or": "NCCL(OR)",
    "mccs_noffa": "MCCS(-FFA)",
    "mccs": "MCCS",
}


@dataclass
class MultiAppResult:
    """Bus bandwidth (GB/s) of one tenant under one system and setup."""

    setup: str
    system: str
    app_id: str
    stat: Stat


def _run_once(
    setup_name: str,
    placements: Sequence[TenantPlacement],
    system: str,
    seed: int,
    *,
    op_bytes: int,
    duration: float,
    warmup: float,
) -> Dict[str, float]:
    """One trial: all tenants loop concurrently; mean busbw per tenant."""
    cluster = testbed_cluster()
    samples: Dict[str, List[float]] = {p.app_id: [] for p in placements}
    issuers: List[Tuple[str, int, Callable[[Callable[[float], None]], None]]] = []

    if system in ("nccl", "nccl_or"):
        for idx, placement in enumerate(placements):
            gpus = placement.resolve(cluster)
            order = (
                naive_tenant_order(cluster, gpus)
                if system == "nccl"
                else locality_ring_order(cluster, gpus)
            )
            comm = NcclCommunicator(
                cluster,
                gpus,
                ring_order=order,
                ecmp_seed=seed * 131 + idx,
                job_id=placement.app_id,
            )

            def issue(cb, comm=comm):
                comm.all_reduce(op_bytes, on_complete=lambda op, now: cb(op.duration()))

            issuers.append((placement.app_id, len(gpus), issue))
    else:
        deployment = MccsDeployment(cluster, ecmp_seed=seed * 131)
        manager = CentralManager(deployment)
        for placement in placements:
            state = manager.admit(placement.app_id, placement.resolve(cluster))
            client = deployment.connect(placement.app_id)
            comm = client.adopt_communicator(state.comm_id)

            def issue(cb, client=client, comm=comm):
                client.all_reduce(
                    comm, op_bytes, on_complete=lambda inst, now: cb(inst.duration())
                )

            issuers.append((placement.app_id, len(placement.gpus), issue))
        if system == "mccs":
            manager.apply_flow_policy("ffa")
            cluster.sim.run()

    def make_chain(app_id: str, world: int, issue) -> Callable[[float], None]:
        factor = busbw_factor(Collective.ALL_REDUCE, world)

        def chain(duration_s: float) -> None:
            now = cluster.sim.now
            if now >= warmup:
                samples[app_id].append(factor * op_bytes / duration_s / 1e9)
            if now < duration:
                issue(chain)

        return chain

    for app_id, world, issue in issuers:
        issue(make_chain(app_id, world, issue))
    cluster.sim.run(until=duration + 2.0)
    return {
        app_id: sum(vals) / len(vals) for app_id, vals in samples.items() if vals
    }


def run_fig08(
    *,
    setups: Sequence[str] = ("setup1", "setup2", "setup3", "setup4"),
    systems: Sequence[str] = SYSTEMS,
    trials: int = 5,
    op_bytes: int = 128 * MB,
    duration: float = 2.0,
    warmup: float = 0.3,
) -> List[MultiAppResult]:
    """Sweep the Figure 8 grid."""
    all_setups = multi_app_setups()
    results: List[MultiAppResult] = []
    for setup_name in setups:
        placements = all_setups[setup_name]
        for system in systems:
            per_app: Dict[str, List[float]] = {p.app_id: [] for p in placements}
            for trial in range(trials):
                means = _run_once(
                    setup_name,
                    placements,
                    system,
                    trial,
                    op_bytes=op_bytes,
                    duration=duration,
                    warmup=warmup,
                )
                for app_id, value in means.items():
                    per_app[app_id].append(value)
            for placement in placements:
                results.append(
                    MultiAppResult(
                        setup=setup_name,
                        system=system,
                        app_id=placement.app_id,
                        stat=Stat.of(per_app[placement.app_id]),
                    )
                )
    return results


def main(trials: int = 5) -> None:
    results = run_fig08(trials=trials)
    by_setup: Dict[str, Dict[str, Dict[str, Stat]]] = {}
    for r in results:
        by_setup.setdefault(r.setup, {}).setdefault(r.system, {})[r.app_id] = r.stat
    for setup_name in sorted(by_setup):
        apps = sorted({a for sys_rows in by_setup[setup_name].values() for a in sys_rows})
        rows = []
        for system in SYSTEMS:
            if system not in by_setup[setup_name]:
                continue
            stats = by_setup[setup_name][system]
            aggregate = sum(s.mean for s in stats.values())
            rows.append(
                [SYSTEM_LABELS[system]]
                + [f"{stats[a].mean:.2f}" if a in stats else "-" for a in apps]
                + [f"{aggregate:.2f}"]
            )
        print_table(
            ["System"] + [f"App {a}" for a in apps] + ["Aggregate"],
            rows,
            title=f"Figure 8 — 128MB AllReduce bus bandwidth (GB/s), {setup_name}",
        )


if __name__ == "__main__":
    main()
