"""Figure 7 — adapting a running job's ring to a background flow.

The showcase of §6.2: four hosts, one per switch, switches cabled in a
ring (Figure 7a).  An 8-GPU AllReduce job runs with a clockwise ring.  At
t~7.5 s a 75 Gbps background flow appears on one clockwise inter-switch
link, dropping the available capacity there to 25 Gbps and collapsing the
job's algorithm bandwidth (5.9 -> 1.7 GB/s in the paper).  At t~12 s the
centralized manager — informed by a switch agent's persistent-flow
report — issues a reconfiguration that transparently reverses the ring;
bandwidth recovers immediately, with the application never interrupted.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional

from ..cluster.specs import ring_cluster
from ..core.controller import CentralManager
from ..core.deployment import MccsDeployment
from ..netsim.background import BackgroundTrafficManager
from ..netsim.units import MB
from ..telemetry import TelemetryHub
from ..telemetry.reporter import get_default_reporter
from .report import print_table


@dataclass(frozen=True)
class TimelinePoint:
    """One completed AllReduce: completion time and its bandwidth."""

    time: float
    algbw_gBps: float


@dataclass
class ReconfigTimeline:
    """The Figure 7b series plus the two event markers."""

    points: List[TimelinePoint]
    bg_start: float
    reconfig_issued: float
    reconfig_done: Optional[float]
    ring_before: tuple
    ring_after: tuple
    #: The deployment's telemetry hub — spans (including the reconfig
    #: barrier), metrics, and link-utilization series for this run.
    telemetry: Optional[TelemetryHub] = field(default=None, repr=False)

    def bandwidth_in(self, start: float, end: float) -> float:
        window = [p.algbw_gBps for p in self.points if start <= p.time < end]
        if not window:
            raise ValueError(f"no samples in [{start}, {end})")
        return sum(window) / len(window)


def run_fig07(
    *,
    op_bytes: int = 256 * MB,
    duration: float = 20.0,
    bg_start: float = 7.5,
    reconfig_at: float = 12.0,
    bg_gbps: float = 75.0,
) -> ReconfigTimeline:
    """Replay the Figure 7 scenario; returns the bandwidth timeline."""
    cluster = ring_cluster()
    deployment = MccsDeployment(cluster)
    background = BackgroundTrafficManager(cluster.sim)
    manager = CentralManager(deployment, background=background)

    gpus = [g for host in cluster.hosts for g in host.gpus]
    state = manager.admit("tenant", gpus)
    ring_before = state.strategy.ring.order
    client = deployment.connect("tenant")
    comm = client.adopt_communicator(state.comm_id)

    points: List[TimelinePoint] = []

    def issue_next() -> None:
        client.all_reduce(comm, op_bytes, on_complete=completed)

    def completed(instance, now: float) -> None:
        points.append(TimelinePoint(now, op_bytes / instance.duration() / 1e9))
        if now < duration:
            issue_next()

    issue_next()
    # The background flow is outside MCCS's management: a switch agent
    # reports it, the manager reacts at reconfig_at.
    loaded_link = "sw1->sw2"  # a link on the clockwise ring
    cluster.sim.schedule(bg_start, lambda: background.occupy(loaded_link, bg_gbps))
    reconfig_done = {"time": None}

    def done(sess) -> None:
        reconfig_done["time"] = cluster.sim.now

    def react() -> None:
        manager.adapt_to_background(state.comm_id, on_done=done)

    cluster.sim.schedule(reconfig_at, react)
    deployment.run(until=duration + 1.0)
    return ReconfigTimeline(
        points=points,
        bg_start=bg_start,
        reconfig_issued=reconfig_at,
        reconfig_done=reconfig_done["time"],
        ring_before=ring_before,
        ring_after=deployment.communicator(state.comm_id).strategy.ring.order,
        telemetry=deployment.telemetry(),
    )


def main(trace_out: Optional[str] = None) -> None:
    """Run the Figure 7 scenario and report it.

    ``trace_out`` (or the ``MCCS_TRACE_OUT`` environment variable) names a
    file to receive the run's Chrome trace-event JSON — load it in
    ``chrome://tracing`` or Perfetto to see the reconfiguration barrier
    stall as a span between the collectives.
    """
    timeline = run_fig07()
    reporter = get_default_reporter()
    rows = []
    step = 1.0
    t = 0.0
    while t < 20.0:
        try:
            bw = timeline.bandwidth_in(t, t + step)
            rows.append((f"{t:.0f}-{t + step:.0f}s", f"{bw:.2f}"))
        except ValueError:
            rows.append((f"{t:.0f}-{t + step:.0f}s", "-"))
        t += step
    print_table(
        ["Window", "Algo BW (GB/s)"],
        rows,
        title="Figure 7b — AllReduce bandwidth around a 75G background flow",
    )
    reporter.line(f"background flow starts: t={timeline.bg_start}s")
    reporter.line(f"reconfig issued:        t={timeline.reconfig_issued}s")
    reporter.line(f"reconfig applied:       t={timeline.reconfig_done}")
    reporter.line(f"ring: {timeline.ring_before} -> {timeline.ring_after}")
    hub = timeline.telemetry
    if hub is not None:
        stall = hub.metrics.histograms().get("mccs_barrier_stall_seconds")
        if stall is not None and stall.count() > 0:
            reporter.line(
                f"barrier stall:          {stall.mean() * 1e3:.3f} ms "
                f"over {stall.count()} reconfiguration(s)"
            )
        if trace_out is None:
            trace_out = os.environ.get("MCCS_TRACE_OUT")
        if trace_out:
            reporter.dump_json(hub.to_chrome_trace(), trace_out)


if __name__ == "__main__":
    main()
