"""Figure 3 — cross-rack ratio of random vs optimal rings.

Two panels:

* **(a) [Empirical] 2 hosts/rack** — the paper computes the cross-rack
  ratio of production jobs; we regenerate the curve via Monte Carlo over
  random host-major ring orders on the same geometry (2 hosts of 8 GPUs
  per rack), which is the stated generative model.
* **(b) [Simulated] 4 hosts/rack** — the paper simulates a cluster at the
  company's scale; we evaluate both the closed-form expectation and a
  placement-level Monte Carlo on an actual simulated cluster using the
  repository's placement and ring-order machinery (an end-to-end check
  that `cross_rack_ratio` agrees with the combinatorics).

Expected shape: ratios start at 1 for single-rack jobs, grow with job
size, and approach 2x (panel a) and 4x (panel b) — the paper's worst
cases.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..cluster.placement import ClusterAllocator
from ..cluster.specs import custom_cluster
from ..core.policies.ring_order import (
    cross_rack_ratio,
    expected_random_cross_rack_ratio,
    locality_ring_order,
    random_host_major_order,
)
from ..workloads.production import (
    empirical_cross_rack_curve,
    simulated_cross_rack_curve,
)
from .report import print_table

DEFAULT_JOB_SIZES = (16, 32, 64, 128, 256, 512, 1024)


@dataclass(frozen=True)
class CrossRackPoint:
    job_size: int
    ratio_2hosts: float
    ratio_4hosts: float


def run_curves(
    job_sizes: Sequence[int] = DEFAULT_JOB_SIZES,
    *,
    trials: int = 2000,
    seed: int = 7,
) -> List[CrossRackPoint]:
    """Both panels' expected cross-rack ratios per job size."""
    empirical = empirical_cross_rack_curve(job_sizes, trials=trials, seed=seed)
    simulated = simulated_cross_rack_curve(job_sizes)
    return [
        CrossRackPoint(size, empirical[size], simulated[size])
        for size in job_sizes
    ]


def validate_on_cluster(
    job_size: int = 128,
    *,
    hosts_per_rack: int = 4,
    trials: int = 200,
    seed: int = 3,
) -> Dict[str, float]:
    """Cross-check the closed form on a real simulated cluster.

    Places a perfectly packed job on a spine-leaf cluster, draws random
    host-major rings, and compares the measured mean ratio (via the
    policy module's `cross_rack_ratio`) with the closed-form expectation.
    """
    gpus_per_host = 8
    hosts_needed = job_size // gpus_per_host
    cluster = custom_cluster(
        num_spines=2,
        num_leaves=max(hosts_needed // hosts_per_rack, 2),
        hosts_per_leaf=hosts_per_rack,
        gpus_per_host=gpus_per_host,
        name="fig3-validation",
    )
    allocator = ClusterAllocator(cluster, seed=seed)
    gpus = allocator.place_compact("job", job_size)
    rng = random.Random(seed)
    measured = sum(
        cross_rack_ratio(cluster, gpus, random_host_major_order(gpus, rng))
        for _ in range(trials)
    ) / trials
    optimal = cross_rack_ratio(cluster, gpus, locality_ring_order(cluster, gpus))
    expected = expected_random_cross_rack_ratio(hosts_per_rack, hosts_needed)
    return {"measured": measured, "closed_form": expected, "optimal": optimal}


def main() -> None:
    points = run_curves()
    print_table(
        ["Job size (GPUs)", "(a) 2 hosts/rack", "(b) 4 hosts/rack"],
        [
            (p.job_size, f"{p.ratio_2hosts:.2f}x", f"{p.ratio_4hosts:.2f}x")
            for p in points
        ],
        title="Figure 3 — expected cross-rack ratio of a random ring",
    )
    check = validate_on_cluster()
    print_table(
        ["Measured (cluster MC)", "Closed form", "Optimal ring"],
        [
            (
                f"{check['measured']:.2f}x",
                f"{check['closed_form']:.2f}x",
                f"{check['optimal']:.2f}x",
            )
        ],
        title="Validation — 128-GPU job on a simulated 4-hosts/rack cluster",
    )


if __name__ == "__main__":
    main()
