"""Shared result containers and text rendering for the experiment harness.

Every ``figNN`` module produces plain dataclasses and renders them with
these helpers, so benchmark output looks like the rows/series the paper
plots (mean plus a 95% interval where the paper shades one).

Text output goes through the pluggable telemetry reporter
(:mod:`repro.telemetry.reporter`): ``print_table`` writes to the default
reporter's sink — stdout unless a harness installed a
:class:`~repro.telemetry.reporter.BufferSink` or stream sink via
``set_default_reporter``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..telemetry.reporter import format_table, get_default_reporter

__all__ = [
    "Stat",
    "ascii_cdf",
    "cdf_points",
    "format_table",
    "geometric_mean",
    "print_table",
    "sparkline",
]


@dataclass(frozen=True)
class Stat:
    """Mean and central 95% interval of a sample set."""

    mean: float
    lo: float
    hi: float
    n: int

    @classmethod
    def of(cls, samples: Sequence[float]) -> "Stat":
        if not samples:
            raise ValueError("no samples")
        ordered = sorted(samples)
        n = len(ordered)

        def pct(q: float) -> float:
            if n == 1:
                return ordered[0]
            pos = q * (n - 1)
            lo_i = int(math.floor(pos))
            hi_i = min(lo_i + 1, n - 1)
            frac = pos - lo_i
            return ordered[lo_i] * (1 - frac) + ordered[hi_i] * frac

        return cls(
            mean=sum(ordered) / n, lo=pct(0.025), hi=pct(0.975), n=n
        )

    def __str__(self) -> str:
        if self.n == 1:
            return f"{self.mean:.3g}"
        return f"{self.mean:.3g} [{self.lo:.3g}, {self.hi:.3g}]"


def print_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: Optional[str] = None
) -> None:
    """Render a table through the default reporter (stdout by default)."""
    get_default_reporter().table(headers, rows, title)


def cdf_points(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """(value, cumulative fraction) pairs of an empirical CDF."""
    ordered = sorted(samples)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def geometric_mean(samples: Sequence[float]) -> float:
    if not samples:
        raise ValueError("no samples")
    return math.exp(sum(math.log(s) for s in samples) / len(samples))


def ascii_cdf(
    series: Dict[str, Sequence[float]],
    *,
    width: int = 50,
    quantiles: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
    unit: str = "x",
) -> str:
    """Text rendering of one or more CDFs, in the style of Figure 11.

    Each series gets one bar row per quantile: the bar length encodes the
    value at that quantile relative to the global maximum.
    """
    if not series:
        raise ValueError("no series")
    peak = max(max(vals) for vals in series.values() if vals)
    lines: List[str] = []
    for name, values in series.items():
        ordered = sorted(values)
        n = len(ordered)
        lines.append(f"{name}:")
        for q in quantiles:
            idx = min(int(math.ceil(q * n)) - 1, n - 1) if n else 0
            value = ordered[max(idx, 0)]
            bar = "#" * max(int(round(value / peak * width)), 1)
            lines.append(f"  p{int(q * 100):>3} {value:6.2f}{unit} {bar}")
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line text sparkline (used for throughput timelines)."""
    if not values:
        return ""
    marks = " .:-=+*#%@"
    lo, hi = min(values), max(values)
    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    if hi <= lo:
        return marks[-1] * len(values)
    scale = (len(marks) - 1) / (hi - lo)
    return "".join(marks[int((v - lo) * scale)] for v in values)
