"""Figure 9 — training-workload JCT under scheduling and QoS policies.

Setup 3 of Figure 5b hosts three tenants (§6.4): A trains VGG-19 from
scratch on 4 GPUs (data parallel), B and C fine-tune GPT models on 2 GPUs
each (tensor parallel).  Job completion time is reported for four
solutions, normalized to FFA:

* **ECMP** — MCCS datapath but hash-based routing (high variance across
  trials, everyone slower);
* **FFA** — fair flow assignment (the normalization baseline);
* **PFA** — one inter-rack route dedicated to A (paper: A ~13% faster
  than FFA, 34% faster than ECMP);
* **PFA+TS** — additionally, C's traffic is time-windowed into B's idle
  cycles (paper: B ~16% faster than PFA, A unaffected).

The replay runs with the burst-interference extension enabled
(see ``FlowSimulator.interference_penalty``): sharing-induced degradation
beyond fluid fairness is exactly what PFA's isolation removes, and is
documented as a modelling substitution in DESIGN.md.  TS needs an offline
profile of B (the paper profiles applications offline, §5); we obtain it
from a profiling run under PFA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cluster.specs import testbed_cluster
from ..core.controller import CentralManager
from ..core.deployment import MccsDeployment
from ..core.policies.ts import compute_traffic_schedule
from ..core.transport import WindowSchedule
from ..workloads.generator import MccsIssuer, TrafficGenerator
from ..workloads.traces import gpt_tp_trace, vgg19_dp_trace
from .report import Stat, print_table
from .setups import qos_setup

SOLUTIONS = ("ecmp", "ffa", "pfa", "pfa+ts")

#: Workload sizes chosen so the three tenants finish on comparable
#: horizons (A trains from scratch; B and C fine-tune).
DEFAULT_ITERATIONS = {"A": 16, "B": 12, "C": 12}
DEFAULT_PENALTY = 0.30


@dataclass
class QosResult:
    """JCT of one tenant under one solution (seconds)."""

    solution: str
    app_id: str
    stat: Stat


def _run_once(
    solution: str,
    seed: int,
    *,
    iterations: Dict[str, int],
    penalty: float,
    ts_schedule: Optional[WindowSchedule] = None,
) -> Dict[str, float]:
    """One trial; returns per-app JCT."""
    cluster = testbed_cluster(interference_penalty=penalty)
    deployment = MccsDeployment(cluster, ecmp_seed=seed * 7919)
    manager = CentralManager(deployment)
    placements = qos_setup()
    generators: Dict[str, TrafficGenerator] = {}
    for placement in placements:
        # Pinned ECMP namespace: the measured orderings must depend on the
        # per-trial ecmp_seed, not on how many communicators this process
        # happened to create before (the global comm-id counter).
        state = manager.admit(
            placement.app_id,
            placement.resolve(cluster),
            datapath_tag=f"fig09/{placement.app_id}",
        )
        client = deployment.connect(placement.app_id)
        comm = client.adopt_communicator(state.comm_id)
        if placement.app_id == "A":
            trace = vgg19_dp_trace(iterations["A"])
        else:
            trace = gpt_tp_trace(iterations[placement.app_id])
        stream = client.create_stream(placement.resolve(cluster)[0])
        generators[placement.app_id] = TrafficGenerator(
            cluster.sim,
            MccsIssuer(client, comm),
            trace,
            stream,
            name=placement.app_id,
        )
    if solution == "ecmp":
        manager.apply_flow_policy("ecmp")
    elif solution == "ffa":
        manager.apply_flow_policy("ffa")
    elif solution in ("pfa", "pfa+ts"):
        manager.apply_flow_policy(
            "pfa", high_priority_apps=["A"], reserved_routes={0}
        )
    else:
        raise ValueError(f"unknown solution {solution!r}")
    deployment.run()  # drain the reconfigurations before traffic starts
    if solution == "pfa+ts":
        if ts_schedule is None:
            raise ValueError("pfa+ts needs an offline TS schedule for B")
        # Prioritize B over C without affecting A: only C is gated.
        deployment.set_traffic_schedule("C", ts_schedule)
    for generator in generators.values():
        generator.start(at=cluster.sim.now)
    deployment.run()
    return {app: gen.stats.jct() for app, gen in generators.items()}


def profile_ts_schedule(
    seed: int,
    *,
    iterations: Dict[str, int],
    penalty: float,
    guard: float = 0.0002,
) -> WindowSchedule:
    """Offline profiling pass for TS.

    The paper "manually profile[s] applications offline" (§5): the
    prioritized tenant (B) is profiled *unobstructed* — here, running
    under PFA with A present (A never shares B's route) but without C —
    and the resulting busy/idle windows are what TS installs for C.
    Because B's replay is strictly periodic when unobstructed, the
    projected phase stays valid in the measured runs.
    """
    cluster = testbed_cluster(interference_penalty=penalty)
    deployment = MccsDeployment(cluster, ecmp_seed=seed * 7919)
    manager = CentralManager(deployment)
    placements = [p for p in qos_setup() if p.app_id in ("A", "B")]
    state_b = None
    for placement in placements:
        state = manager.admit(
            placement.app_id,
            placement.resolve(cluster),
            datapath_tag=f"fig09/{placement.app_id}",
        )
        if placement.app_id == "B":
            state_b = state
        client = deployment.connect(placement.app_id)
        comm = client.adopt_communicator(state.comm_id)
        trace = (
            vgg19_dp_trace(max(iterations["A"] // 4, 2))
            if placement.app_id == "A"
            else gpt_tp_trace(max(iterations[placement.app_id] // 4, 2))
        )
        stream = client.create_stream(placement.resolve(cluster)[0])
        TrafficGenerator(
            cluster.sim, MccsIssuer(client, comm), trace, stream,
            name=placement.app_id,
        ).start()
    manager.apply_flow_policy("pfa", high_priority_apps=["A"], reserved_routes={0})
    deployment.run()
    assert state_b is not None
    _, schedule = compute_traffic_schedule(
        deployment.trace(state_b.comm_id), guard=guard
    )
    return schedule


def run_fig09(
    *,
    trials: int = 4,
    iterations: Optional[Dict[str, int]] = None,
    penalty: float = DEFAULT_PENALTY,
) -> Tuple[List[QosResult], Dict[str, float]]:
    """Sweep the four solutions.

    Returns the per-(solution, app) JCT stats and the FFA mean JCTs used
    for normalization.
    """
    iterations = dict(iterations or DEFAULT_ITERATIONS)
    samples: Dict[Tuple[str, str], List[float]] = {}
    ts_schedule = profile_ts_schedule(0, iterations=iterations, penalty=penalty)
    for solution in SOLUTIONS:
        for trial in range(trials):
            jcts = _run_once(
                solution,
                trial,
                iterations=iterations,
                penalty=penalty,
                ts_schedule=ts_schedule if solution == "pfa+ts" else None,
            )
            for app_id, jct in jcts.items():
                samples.setdefault((solution, app_id), []).append(jct)
    results = [
        QosResult(solution=sol, app_id=app, stat=Stat.of(vals))
        for (sol, app), vals in sorted(samples.items())
    ]
    ffa_means = {
        app: Stat.of(samples[("ffa", app)]).mean for app in ("A", "B", "C")
    }
    return results, ffa_means


def main(trials: int = 4) -> None:
    results, ffa_means = run_fig09(trials=trials)
    by_solution: Dict[str, Dict[str, Stat]] = {}
    for r in results:
        by_solution.setdefault(r.solution, {})[r.app_id] = r.stat
    rows = []
    for solution in SOLUTIONS:
        stats = by_solution[solution]
        rows.append(
            [solution.upper()]
            + [
                f"{stats[a].mean / ffa_means[a]:.2f}"
                for a in ("A", "B", "C")
            ]
        )
    print_table(
        ["Solution", "VGG (A)", "GPT (B)", "GPT (C)"],
        rows,
        title="Figure 9 — normalized JCT (lower is better; FFA = 1.0)",
    )


if __name__ == "__main__":
    main()
