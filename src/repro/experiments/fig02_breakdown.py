"""Figure 2 — training-time breakdown across product groups.

The paper's figure shows, for models of four product groups at a large
social network company, the share of training time spent idle, in
CPU<->GPU memcpy, in exposed compute, and in exposed communication; its
takeaway is that "data communication constitutes a significant portion of
the training time."

The production data is proprietary, so this experiment (a) regenerates a
synthetic four-group breakdown with the same qualitative property
(documented substitution), and (b) *validates* the communication-heavy
claim against our own simulator by replaying a VGG-19 data-parallel trace
on the testbed and measuring the exposed-communication share from the
MCCS tracing API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..cluster.specs import testbed_cluster
from ..core.controller import CentralManager
from ..core.deployment import MccsDeployment
from ..workloads.generator import MccsIssuer, TrafficGenerator
from ..workloads.production import TrainingBreakdown, product_group_breakdowns
from ..workloads.traces import vgg19_dp_trace
from .report import print_table
from .setups import single_app_gpus


@dataclass(frozen=True)
class MeasuredBreakdown:
    """Four-way wall-time split measured from a simulated run, matching
    the categories of the paper's Figure 2."""

    workload: str
    idle_fraction: float
    memcpy_fraction: float
    compute_fraction: float
    comm_fraction: float


def run_breakdowns(seed: int = 2024) -> List[TrainingBreakdown]:
    """The synthetic four-group breakdown standing in for Figure 2."""
    return product_group_breakdowns(seed=seed)


def measure_vgg_breakdown(iterations: int = 4) -> MeasuredBreakdown:
    """Replay VGG-19 DP on the 8-GPU testbed and split its wall time.

    Exposed communication time comes from the trace's merged busy
    intervals; compute and host->device minibatch staging (memcpy) come
    from the generator's accounting; the remainder (datapath latency,
    launch gaps) is idle.
    """
    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster)
    manager = CentralManager(deployment)
    gpus = single_app_gpus(cluster, "8gpu")
    comm_state = manager.admit("vgg", gpus)
    client = deployment.connect("vgg")
    comm = client.adopt_communicator(comm_state.comm_id)
    trace = vgg19_dp_trace(iterations)
    stream = client.create_stream(gpus[0])
    generator = TrafficGenerator(
        cluster.sim, MccsIssuer(client, comm), trace, stream, name="vgg"
    )
    generator.start()
    deployment.run()
    jct = generator.stats.jct()
    busy = sum(e - s for s, e in deployment.trace(comm_state.comm_id).busy_intervals())
    comm_fraction = min(busy / jct, 1.0)
    compute_fraction = generator.stats.compute_seconds / jct
    memcpy_fraction = generator.stats.memcpy_seconds / jct
    idle = max(1.0 - comm_fraction - compute_fraction - memcpy_fraction, 0.0)
    return MeasuredBreakdown(
        workload="vgg19-dp-8gpu",
        idle_fraction=idle,
        memcpy_fraction=memcpy_fraction,
        compute_fraction=compute_fraction,
        comm_fraction=comm_fraction,
    )


def main(seed: int = 2024) -> None:
    rows = [
        (b.group, f"{b.idle:.0%}", f"{b.memcpy:.0%}", f"{b.compute:.0%}", f"{b.comm:.0%}")
        for b in run_breakdowns(seed)
    ]
    print_table(
        ["Group", "Idle", "Memcpy", "Compute", "Comm"],
        rows,
        title="Figure 2 — training-time breakdown (synthetic production groups)",
    )
    measured = measure_vgg_breakdown()
    print_table(
        ["Workload", "Idle", "Memcpy", "Compute", "Comm"],
        [
            (
                measured.workload,
                f"{measured.idle_fraction:.0%}",
                f"{measured.memcpy_fraction:.0%}",
                f"{measured.compute_fraction:.0%}",
                f"{measured.comm_fraction:.0%}",
            )
        ],
        title="Validation — measured on the simulated testbed",
    )


if __name__ == "__main__":
    main()
