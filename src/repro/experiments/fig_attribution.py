"""Attribution — causal tracing validated against ground-truth sharing.

Runs the Figure 8 multi-tenant mix (all four placements) under MCCS with
and without fair flow assignment, and grades the causal tracer's
:class:`~repro.telemetry.causal.CriticalPathReport` for every completed
collective against ground truth recorded *independently* of the tracer:

* a raw flow log (tenant, path, lifetime of every injected flow) rebuilt
  from the simulator's observer hooks, from which we compute which links
  each collective's critical flow actually shared with which co-tenant;
* the placements themselves, which say who *can* contend (only tenants
  whose rings cross the oversubscribed spine share fabric links).

A collective is counted as **correctly attributed** when

1. its reported ``queue + serialization + contention`` split sums to the
   measured duration within 1%,
2. its reported bottleneck link lies on the critical flow's actual path,
3. its reported top interferer is a tenant that truly overlapped the
   critical flow on a shared link (or no interferer is reported and none
   truly existed).

The headline number is the fraction of collectives passing all three; the
who-interfered-with-whom ledger (tenant -> tenant -> seconds of shared
bottleneck time) is printed per setup and exported as JSON when
``MCCS_ATTRIBUTION_OUT`` is set.  ``MCCS_FLIGHT_OUT`` additionally dumps
the flight recorder's final snapshot for artifact upload.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.controller import CentralManager
from ..core.deployment import MccsDeployment
from ..cluster.specs import testbed_cluster
from ..netsim.units import MB
from .report import print_table
from .setups import multi_app_setups

SYSTEMS = ("mccs", "mccs_noffa")

#: Sum-criterion tolerance: components must add up to the measured
#: duration within this fraction.
SUM_TOLERANCE = 0.01


class _FlowLog:
    """Ground-truth recorder: every flow's tenant, path, and lifetime.

    Deliberately independent of :class:`~repro.telemetry.causal.
    CausalTracer` — it reads only the raw observer hooks, so the
    experiment grades the tracer against the simulator itself.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        #: flow_id -> (tenant, links, t_start, t_end or None)
        self.flows: Dict[str, Tuple[str, Tuple[str, ...], float, Optional[float]]] = {}
        sim.add_observer(self)

    def on_flow_added(self, flow, now: float) -> None:
        self.flows[flow.flow_id] = (
            flow.job_id or "none", tuple(flow.links), now, None
        )

    def _ended(self, flow, now: float) -> None:
        rec = self.flows.get(flow.flow_id)
        if rec is not None:
            self.flows[flow.flow_id] = (rec[0], rec[1], rec[2], now)

    def on_flow_completed(self, flow, now: float) -> None:
        self._ended(flow, now)

    def on_flow_cancelled(self, flow, now: float) -> None:
        self._ended(flow, now)

    def on_flow_failed(self, flow, now: float) -> None:
        self._ended(flow, now)

    def on_flow_gated(self, flow, gated: bool, now: float) -> None:
        pass

    def on_rates_recomputed(self, now: float) -> None:
        pass

    # ------------------------------------------------------------------
    def truth_for(self, flow_id: str) -> Tuple[Set[str], Set[str], Set[str]]:
        """(path links, true interferer tenants, truly contended links)
        of one flow, by temporal overlap on shared links."""
        rec = self.flows.get(flow_id)
        if rec is None:
            return set(), set(), set()
        tenant, links, t0, t1 = rec
        end = t1 if t1 is not None else float("inf")
        path = set(links)
        interferers: Set[str] = set()
        contended: Set[str] = set()
        for other, olinks, o0, o1 in self.flows.values():
            if other == tenant:
                continue
            oend = o1 if o1 is not None else float("inf")
            if o0 >= end or t0 >= oend:  # no temporal overlap
                continue
            shared = path.intersection(olinks)
            if shared:
                interferers.add(other)
                contended.update(shared)
        return path, interferers, contended


@dataclass
class AttributionResult:
    """One (setup, system) cell of the attribution grid."""

    setup: str
    system: str
    collectives: int = 0
    sum_ok: int = 0
    correct: int = 0
    #: tenant -> tenant -> seconds of shared bottleneck time (as reported
    #: by the tracer's interference ledgers).
    ledger: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Individual report dicts (kept for the JSON artifact).
    reports: List[Dict[str, object]] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        return self.correct / self.collectives if self.collectives else 0.0

    @property
    def sum_ok_fraction(self) -> float:
        return self.sum_ok / self.collectives if self.collectives else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "setup": self.setup,
            "system": self.system,
            "collectives": self.collectives,
            "sum_ok": self.sum_ok,
            "correct": self.correct,
            "accuracy": self.accuracy,
            "sum_ok_fraction": self.sum_ok_fraction,
            "ledger": {
                a: dict(sorted(row.items()))
                for a, row in sorted(self.ledger.items())
            },
            "reports": self.reports,
        }


def _grade(report, flowlog: _FlowLog) -> Tuple[bool, bool]:
    """(sum within tolerance, attribution matches ground truth)."""
    total = report.queue_s + report.serialization_s + report.contention_s
    sum_ok = (
        abs(total - report.duration_s)
        <= SUM_TOLERANCE * max(report.duration_s, 1e-12)
    )
    path, interferers, contended = flowlog.truth_for(report.critical_flow)
    bottleneck_ok = report.bottleneck_link in path
    if report.interferer is None:
        interferer_ok = not interferers
    else:
        interferer_ok = report.interferer in interferers
    return sum_ok, sum_ok and bottleneck_ok and interferer_ok


def run_attribution(
    *,
    setups: Sequence[str] = ("setup1", "setup2", "setup3", "setup4"),
    systems: Sequence[str] = SYSTEMS,
    rounds: int = 6,
    op_bytes: int = 32 * MB,
    seed: int = 0,
) -> List[AttributionResult]:
    """Sweep the attribution grid; every tenant chains ``rounds`` AllReduces."""
    all_setups = multi_app_setups()
    results: List[AttributionResult] = []
    for setup_name in setups:
        placements = all_setups[setup_name]
        for system in systems:
            cluster = testbed_cluster()
            deployment = MccsDeployment(cluster, ecmp_seed=seed * 131)
            manager = CentralManager(deployment)
            flowlog = _FlowLog(cluster.sim)
            remaining = {p.app_id: rounds for p in placements}

            def make_chain(client, comm, app_id):
                def chain(_inst, _now) -> None:
                    remaining[app_id] -= 1
                    if remaining[app_id] > 0:
                        client.all_reduce(comm, op_bytes, on_complete=chain)

                return chain

            starters = []
            for placement in placements:
                state = manager.admit(
                    placement.app_id, placement.resolve(cluster)
                )
                client = deployment.connect(placement.app_id)
                comm = client.adopt_communicator(state.comm_id)
                starters.append((client, comm, placement.app_id))
            if system == "mccs":
                manager.apply_flow_policy("ffa")
                cluster.sim.run()
            for client, comm, app_id in starters:
                client.all_reduce(
                    comm, op_bytes,
                    on_complete=make_chain(client, comm, app_id),
                )
            cluster.sim.run()

            hub = deployment.telemetry()
            tracer = hub.causal
            result = AttributionResult(setup=setup_name, system=system)
            for trace in tracer.closed_traces():
                if trace.status != "completed":
                    continue
                report = tracer.critical_path(trace)
                if report is None:
                    continue
                result.collectives += 1
                sum_ok, correct = _grade(report, flowlog)
                result.sum_ok += int(sum_ok)
                result.correct += int(correct)
                row = result.ledger.setdefault(report.ctx.tenant, {})
                for other, seconds in report.interference.items():
                    row[other] = row.get(other, 0.0) + seconds
                result.reports.append(
                    dict(report.to_dict(), sum_ok=sum_ok, correct=correct)
                )
            results.append(result)
    return results


def export_artifacts(results: List[AttributionResult], hub=None) -> None:
    """Write the JSON artifacts named by the ``MCCS_*_OUT`` env vars."""
    out_path = os.environ.get("MCCS_ATTRIBUTION_OUT")
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(
                {"results": [r.to_dict() for r in results]}, fh, indent=2
            )
    flight_path = os.environ.get("MCCS_FLIGHT_OUT")
    if flight_path and hub is not None and hub.flight is not None:
        hub.flight.trigger("manual", 0.0, source="fig_attribution")
        hub.flight.write_json(flight_path)


def main(rounds: int = 6) -> None:
    results = run_attribution(rounds=rounds)
    rows = []
    for r in results:
        pairs = sorted(
            (
                (a, b, s)
                for a, row in r.ledger.items()
                for b, s in row.items()
            ),
            key=lambda t: -t[2],
        )
        top = f"{pairs[0][0]}<-{pairs[0][1]} {pairs[0][2]:.3f}s" if pairs else "-"
        rows.append(
            [
                r.setup,
                r.system,
                str(r.collectives),
                f"{100 * r.sum_ok_fraction:.1f}%",
                f"{100 * r.accuracy:.1f}%",
                top,
            ]
        )
    print_table(
        ["Setup", "System", "Collectives", "Sum<=1%", "Attribution", "Top interference"],
        rows,
        title="Causal attribution vs ground truth (fig08 multi-tenant mix)",
    )
    # Re-run one contended cell to hand its hub to the artifact writer:
    # the flight dump should come from a deployment that actually saw
    # interference, not an empty one.
    hub = None
    if os.environ.get("MCCS_FLIGHT_OUT"):
        cluster = testbed_cluster()
        deployment = MccsDeployment(cluster, ecmp_seed=0)
        manager = CentralManager(deployment)
        placements = multi_app_setups()["setup1"]
        for placement in placements:
            state = manager.admit(placement.app_id, placement.resolve(cluster))
            client = deployment.connect(placement.app_id)
            comm = client.adopt_communicator(state.comm_id)
            client.all_reduce(comm, 32 * MB)
        cluster.sim.run()
        hub = deployment.telemetry()
    export_artifacts(results, hub)


if __name__ == "__main__":
    main()
