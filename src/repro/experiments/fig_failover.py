"""Failover — recovery time and blast radius per fault type.

Not a figure from the paper, but its §4.2 premise put to work: because
collective communication is a *managed service*, infrastructure faults
are the provider's problem, and tenants see either a transparent retry or
a typed error — never a silent hang.  This experiment injects one fault
of each kind into a testbed-cluster deployment running a victim tenant
and a co-located healthy tenant, and reports:

* detection latency (fault strike to first typed failure signal),
* resolution (recovered transparently vs. degraded to a typed abort),
* recovery time (first failure to verdict, the ``mccs_recovery_seconds``
  histogram),
* collective retries and communicator aborts from telemetry,
* whether the healthy tenant was disturbed (it must not be).

``MCCS_FAILOVER_OUT=/path.json`` additionally writes the rows as a JSON
artifact (consumed by the chaos CI job).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

import numpy as np

from ..cluster.specs import testbed_cluster
from ..core.controller import CentralManager
from ..core.deployment import MccsDeployment
from ..core.recovery import RecoveryPolicy
from ..faults import FaultInjector
from ..netsim.errors import CommunicatorError
from ..netsim.units import MB
from .report import print_table

#: Fault kinds exercised, in report order.
FAULT_KINDS = ("link_down", "link_degrade", "nic_fail", "host_crash")


@dataclass
class FailoverRow:
    """Per-fault-kind outcome of one failover run."""

    kind: str
    fault_time: float
    detection_s: Optional[float]
    resolution: str  # "recovered" | "aborted" | "unharmed"
    recovery_s: Optional[float]
    attempts: int
    retries: int
    victim_completed: int
    victim_issued: int
    healthy_ok: bool
    reformed: bool
    byte_correct: Optional[bool]


def _live_spine_link(cluster) -> Optional[str]:
    """A spine link currently carrying traffic (deterministic pick)."""
    links = sorted(
        {
            link
            for flow in cluster.sim.active_flows()
            for link in flow.links
            if "spine" in link
        }
    )
    return links[0] if links else None


def run_failover_case(
    kind: str,
    *,
    seed: int = 0,
    op_bytes: int = 64 * MB,
    num_ops: int = 3,
    fault_time: float = 0.004,
    deadline: float = 0.05,
) -> FailoverRow:
    """Run one fault kind against a victim tenant and report the outcome.

    The victim runs ``num_ops`` back-to-back AllReduces (the last one
    carries real data so byte-correctness is checked end to end); the
    healthy tenant runs one AllReduce that shares no failed component.
    """
    if kind not in FAULT_KINDS:
        raise ValueError(f"unknown fault kind {kind!r}")
    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster, ecmp_seed=seed)
    policy = RecoveryPolicy(collective_deadline=deadline)
    recovery = deployment.enable_recovery(policy, heartbeat_until=2.0)
    manager = CentralManager(deployment)

    victim_gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    victim_state = manager.admit("victim", victim_gpus)
    healthy_gpus = [cluster.hosts[0].gpus[1], cluster.hosts[1].gpus[1]]
    healthy_state = manager.admit("healthy", healthy_gpus)

    victim = deployment.connect("victim")
    healthy = deployment.connect("healthy")
    vcomm = victim.adopt_communicator(victim_state.comm_id)
    hcomm = healthy.adopt_communicator(healthy_state.comm_id)

    injector = FaultInjector(
        cluster, deployment=deployment, telemetry=deployment.telemetry()
    )

    def strike() -> None:
        if kind == "link_down":
            link = _live_spine_link(cluster) or "leaf0->spine0"
            injector.fail_link(link)
        elif kind == "link_degrade":
            # A transient brown-out: the link keeps 5% of its capacity
            # for 80 ms, long enough to blow the collective deadline.
            link = _live_spine_link(cluster) or "leaf0->spine0"
            injector.degrade_link(link, 0.05)
            cluster.sim.call_in(0.08, lambda: injector.restore_capacity(link))
        elif kind == "nic_fail":
            injector.fail_nic(1, 0)
        elif kind == "host_crash":
            injector.crash_host(3)

    cluster.sim.call_in(fault_time, strike)

    # Victim workload: the final op carries data so the recovered path is
    # checked bit-for-bit, not just for completion.
    sends = [victim.alloc(g, 256) for g in victim_gpus]
    recvs = [victim.alloc(g, 256) for g in victim_gpus]
    for buf in sends:
        buf.view(np.float32)[:] = 2.0
    victim_ops = []
    aborted_midway = False
    try:
        for _ in range(num_ops - 1):
            victim_ops.append(victim.all_reduce(vcomm, op_bytes))
        victim_ops.append(victim.all_reduce(vcomm, 256, send=sends, recv=recvs))
    except CommunicatorError:
        aborted_midway = True
    healthy_op = healthy.all_reduce(hcomm, 16 * MB)

    deployment.run()

    hub = deployment.telemetry()
    detection: Optional[float] = None
    recovery_s: Optional[float] = None
    attempts = 0
    resolution = "unharmed"
    for entry in recovery.audit:
        if entry["event"] == "failure_detected" and detection is None:
            detection = float(entry["time"]) - fault_time
        elif entry["event"] == "recovery_attempt":
            attempts += 1
        elif entry["event"] == "recovery_succeeded":
            resolution = "recovered"
        elif entry["event"] == "recovery_gave_up":
            resolution = "aborted"
    histogram = hub.metrics.histogram(
        "mccs_recovery_seconds",
        "First-failure-to-recovered time of repair episodes, by fault kind.",
    )
    for labels, state in histogram.samples():
        if state.count:
            recovery_s = state.sum / state.count
    if resolution == "aborted" and detection is not None:
        for entry in recovery.audit:
            if entry["event"] == "recovery_gave_up":
                recovery_s = float(entry["time"]) - fault_time - detection

    completed = sum(1 for op in victim_ops if op.completed)
    comm_obj = deployment.communicator(vcomm.comm_id)
    byte_correct: Optional[bool] = None
    if not comm_obj.aborted and not aborted_midway and victim_ops:
        byte_correct = all(
            np.allclose(r.view(np.float32), 2.0 * len(victim_gpus))
            for r in recvs
        )
    return FailoverRow(
        kind=kind,
        fault_time=fault_time,
        detection_s=detection,
        resolution=resolution,
        recovery_s=recovery_s,
        attempts=attempts,
        retries=int(
            hub.metrics.counter(
                "mccs_collectives_retried_total",
                "Collective relaunches driven by failure recovery.",
            ).total()
        ),
        victim_completed=completed,
        victim_issued=len(victim_ops),
        healthy_ok=healthy_op.completed,
        reformed=vcomm.comm_id in recovery.reformed,
        byte_correct=byte_correct,
    )


def run_failover(*, seed: int = 0, op_bytes: int = 64 * MB) -> List[FailoverRow]:
    """Run every fault kind; one isolated deployment per kind."""
    return [run_failover_case(kind, seed=seed, op_bytes=op_bytes) for kind in FAULT_KINDS]


def main() -> None:
    rows = run_failover()
    table = [
        (
            row.kind,
            f"{row.detection_s * 1e3:.2f} ms" if row.detection_s is not None else "-",
            row.resolution,
            f"{row.recovery_s * 1e3:.2f} ms" if row.recovery_s is not None else "-",
            str(row.attempts),
            str(row.retries),
            f"{row.victim_completed}/{row.victim_issued}",
            "yes" if row.healthy_ok else "NO",
            "yes" if row.reformed else "-",
            {True: "yes", False: "NO", None: "-"}[row.byte_correct],
        )
        for row in rows
    ]
    print_table(
        (
            "fault", "detect", "resolution", "recovery", "attempts",
            "retries", "victim ops", "healthy ok", "reformed", "bytes ok",
        ),
        table,
    )
    for row in rows:
        assert row.healthy_ok, f"healthy tenant disturbed by {row.kind}"
    out = os.environ.get("MCCS_FAILOVER_OUT")
    if out:
        payload: Dict[str, object] = {
            "experiment": "failover",
            "rows": [asdict(row) for row in rows],
        }
        with open(out, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"[failover JSON written to {out}]")


if __name__ == "__main__":
    main()
