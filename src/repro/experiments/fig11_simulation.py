"""Figure 11 — large-scale simulation: MCCS speedup over random rings.

The §6.5 experiment: a 768-GPU cluster (16 spines, 24 leaves, 4 hosts per
leaf, 8 GPUs + 8 NICs per host, 200 Gbps everywhere, 2:1 oversubscribed)
runs 50 ResNet-50 data-parallel jobs (100 MB of gradients) of 16 or 32
GPUs with equal probability, arriving Poisson with a 200 ms mean gap,
under random or compact placement.  Three solutions are compared:

* **random** — random (host-major) ring per job, ECMP routing;
* **OR** — provider-optimized locality rings, ECMP routing;
* **OR+FFA** — locality rings plus fair flow assignment, recomputed only
  when a job joins or exits (this is MCCS).

We report each job's total AllReduce completion time and the CDF of its
speedup relative to the random-ring solution.  Paper means: random
placement 2.63x (OR) and 3.27x (OR+FFA); compact placement 3.28x and
3.43x, with FFA adding little under compact placement because jobs rarely
span more than two racks.

Placements and arrival times are precomputed once (with a
solution-independent nominal duration model) and replayed identically
under every solution, so per-job speedups are paired — which is what the
paper's per-job CDF requires.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from ..cluster.placement import ClusterAllocator
from ..cluster.specs import large_cluster
from ..core.controller import CentralManager
from ..core.deployment import MccsDeployment
from ..core.strategy import CollectiveStrategy
from ..collectives.ring import RingSchedule
from ..workloads.arrivals import poisson_arrivals
from ..workloads.generator import MccsIssuer, TrafficGenerator
from ..workloads.models import resnet50
from ..workloads.traces import data_parallel_trace
from .report import Stat, ascii_cdf, cdf_points, print_table

SOLUTIONS = ("random", "or", "or+ffa")


@dataclass(frozen=True)
class PlacedJob:
    """One job with its solution-independent start time and GPUs."""

    job_id: str
    num_gpus: int
    start_time: float
    gpu_ids: Tuple[int, ...]


@dataclass
class SimulationOutcome:
    """Per-job AllReduce completion times for each solution."""

    placement: str
    jobs: List[PlacedJob]
    comm_time: Dict[str, Dict[str, float]]  # solution -> job -> seconds

    def speedups(self, solution: str) -> List[float]:
        base = self.comm_time["random"]
        other = self.comm_time[solution]
        return [base[j.job_id] / other[j.job_id] for j in self.jobs]


def precompute_placements(
    *,
    placement: str,
    num_jobs: int,
    iterations: int,
    seed: int,
) -> List[PlacedJob]:
    """Fix job arrival times and GPU sets independently of the solution.

    A nominal per-job duration (compute plus uncongested communication)
    drives the free-pool evolution; arrivals that cannot be served are
    delayed until enough GPUs free up, FIFO.
    """
    cluster = large_cluster()
    allocator = ClusterAllocator(cluster, seed=seed)
    arrivals = poisson_arrivals(num_jobs, seed=seed)
    profile = resnet50()
    nominal = iterations * 0.01
    releases: List[Tuple[float, str]] = []
    placed: List[PlacedJob] = []
    for spec in arrivals:
        start = spec.arrival_time
        # serve pending releases, delaying the job if the pool is short
        pending = sorted(releases)
        while True:
            while pending and pending[0][0] <= start:
                _, done_id = pending.pop(0)
                allocator.release(done_id)
            if allocator.free_count >= spec.num_gpus:
                break
            if not pending:
                raise RuntimeError("cluster can never fit this job")
            start = max(start, pending[0][0])
        releases = pending
        gpus = allocator.place(spec.job_id, spec.num_gpus, placement)
        releases.append((start + nominal, spec.job_id))
        placed.append(
            PlacedJob(
                job_id=spec.job_id,
                num_gpus=spec.num_gpus,
                start_time=start,
                gpu_ids=tuple(g.global_id for g in gpus),
            )
        )
    return placed


def _run_solution(
    solution: str,
    jobs: Sequence[PlacedJob],
    *,
    iterations: int,
    channels: int,
    seed: int,
    segments: int = 5,
) -> Dict[str, float]:
    """Replay all jobs under one solution; per-job AllReduce time."""
    cluster = large_cluster()
    deployment = MccsDeployment(cluster, ecmp_seed=seed * 6151)
    manager = CentralManager(deployment)
    rng = random.Random(seed * 31 + 7)
    # The paper's simulator measures AllReduce completion under per-flow
    # fairness with jobs communicating continuously.  We replay each job's
    # `iterations` x 100 MB of gradient traffic as `segments` back-to-back
    # AllReduces (fluid-equivalent, but with far fewer simulator events),
    # with no exposed compute (DDP overlaps it with the backward pass).
    per_segment = max(iterations // segments, 1)
    profile = replace(
        resnet50(),
        bucket_bytes=0,
        compute_per_iteration=0.0,
        input_bytes_per_iteration=0,
        param_bytes=per_segment * resnet50().param_bytes,
    )
    comm_time: Dict[str, float] = {}
    active = {"count": 0}

    def reassign_routes() -> None:
        if solution == "or+ffa":
            manager.apply_flow_policy("ffa")

    def launch(job: PlacedJob) -> None:
        gpus = [cluster.gpu(i) for i in job.gpu_ids]
        if solution == "random":
            # "random ring selection": ranks assigned with no topology
            # knowledge at all — a uniformly random GPU permutation, which
            # destroys both rack locality and intra-host adjacency.
            order = list(range(len(gpus)))
            rng.shuffle(order)
            strategy = CollectiveStrategy(
                ring=RingSchedule(tuple(order)), channels=channels
            )
            state = deployment.create_communicator(
                job.job_id, gpus, channels=channels, strategy=strategy
            )
        else:
            state = manager.admit(job.job_id, gpus, channels=channels)
        client = deployment.connect(job.job_id)
        comm = client.adopt_communicator(state.comm_id)
        trace = data_parallel_trace(profile, segments)
        stream = client.create_stream(gpus[0])
        generator = TrafficGenerator(
            cluster.sim, MccsIssuer(client, comm), trace, stream, name=job.job_id
        )
        active["count"] += 1
        reassign_routes()  # rescheduling on job join

        def finished(gen: TrafficGenerator, now: float) -> None:
            trace_records = deployment.trace(state.comm_id).completed_records()
            comm_time[job.job_id] = sum(r.duration() for r in trace_records)
            client.destroy_communicator(comm)
            active["count"] -= 1
            reassign_routes()  # rescheduling on job exit

        generator.start(at=cluster.sim.now, on_finish=finished)

    for job in jobs:
        cluster.sim.schedule(job.start_time, lambda job=job: launch(job))
    cluster.sim.run()
    missing = [j.job_id for j in jobs if j.job_id not in comm_time]
    if missing:
        raise RuntimeError(f"jobs never finished: {missing[:5]}")
    return comm_time


def run_fig11(
    *,
    placement: str = "random",
    num_jobs: int = 50,
    iterations: int = 200,
    channels: int = 8,
    seed: int = 0,
    segments: int = 5,
) -> SimulationOutcome:
    """One full experiment at one placement policy."""
    jobs = precompute_placements(
        placement=placement, num_jobs=num_jobs, iterations=iterations, seed=seed
    )
    comm_time = {
        solution: _run_solution(
            solution,
            jobs,
            iterations=iterations,
            channels=channels,
            seed=seed,
            segments=segments,
        )
        for solution in SOLUTIONS
    }
    return SimulationOutcome(placement=placement, jobs=jobs, comm_time=comm_time)


def run_fig11_repeated(
    *,
    placements: Sequence[str] = ("random", "compact"),
    repetitions: int = 5,
    num_jobs: int = 50,
    iterations: int = 200,
    channels: int = 8,
) -> Dict[str, Dict[str, List[float]]]:
    """The paper's protocol: 5 repetitions, average per-job speedups.

    Returns ``{placement: {solution: [per-job speedups pooled over reps]}}``.
    """
    pooled: Dict[str, Dict[str, List[float]]] = {
        p: {s: [] for s in ("or", "or+ffa")} for p in placements
    }
    for placement in placements:
        for rep in range(repetitions):
            outcome = run_fig11(
                placement=placement,
                num_jobs=num_jobs,
                iterations=iterations,
                channels=channels,
                seed=rep,
            )
            for solution in ("or", "or+ffa"):
                pooled[placement][solution].extend(outcome.speedups(solution))
    return pooled


def main(
    repetitions: int = 2, num_jobs: int = 50, iterations: int = 200, channels: int = 8
) -> None:
    pooled = run_fig11_repeated(
        repetitions=repetitions,
        num_jobs=num_jobs,
        iterations=iterations,
        channels=channels,
    )
    for placement, by_solution in pooled.items():
        rows = []
        for solution in ("or", "or+ffa"):
            samples = by_solution[solution]
            stat = Stat.of(samples)
            cdf = cdf_points(samples)
            median = cdf[len(cdf) // 2][0]
            p90 = cdf[int(len(cdf) * 0.9) - 1][0]
            rows.append(
                [
                    solution.upper(),
                    f"{stat.mean:.2f}x",
                    f"{median:.2f}x",
                    f"{p90:.2f}x",
                ]
            )
        print_table(
            ["Solution", "Mean speedup", "Median", "P90"],
            rows,
            title=(
                "Figure 11 — AllReduce speedup vs random ring, "
                f"{placement} placement"
            ),
        )
        print(ascii_cdf({s.upper(): by_solution[s] for s in ("or", "or+ffa")}))
        print()


if __name__ == "__main__":
    main()
