"""Figure 10 — dynamic policy enforcement with staggered job arrivals.

The §6.4 timeline: tenant A (VGG-19) has the cluster to itself; B (GPT)
arrives at t1, C (GPT) at t2, all sharing under FFA; at t3 the
administrator prioritizes A with PFA; at t4 B is further prioritized over
C with TS.  The paper plots each tenant's training throughput normalized
to its FFA value and calls out: A -17% after B arrives, a further -14%
after C arrives, +13% for A after PFA, +18% for B after TS.

The controller re-runs its policies at each arrival ("the rescheduling
occurs only when a job joins or exits").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..cluster.specs import testbed_cluster
from ..core.controller import CentralManager
from ..core.deployment import MccsDeployment
from ..core.policies.ts import compute_traffic_schedule
from ..workloads.generator import MccsIssuer, TrafficGenerator
from ..workloads.traces import gpt_tp_trace, vgg19_dp_trace
from ..telemetry.reporter import get_default_reporter
from .fig09_qos import DEFAULT_PENALTY
from .report import print_table, sparkline
from .setups import qos_setup


@dataclass
class PhaseThroughput:
    """Mean iterations/s of one tenant within one timeline phase."""

    app_id: str
    phase: str
    throughput: float


@dataclass
class DynamicTimeline:
    """Everything Figure 10 plots."""

    events: Dict[str, float]
    phases: List[Tuple[str, float, float]]
    throughput: List[PhaseThroughput]
    ffa_baseline: Dict[str, float]
    generators: Dict[str, TrafficGenerator] = field(default_factory=dict)

    def normalized(self) -> Dict[Tuple[str, str], float]:
        return {
            (p.app_id, p.phase): p.throughput / self.ffa_baseline[p.app_id]
            for p in self.throughput
            if self.ffa_baseline.get(p.app_id)
        }


def run_fig10(
    *,
    t1: float = 4.0,
    t2: float = 8.0,
    t3: float = 12.0,
    t4: float = 16.0,
    end: float = 20.0,
    penalty: float = DEFAULT_PENALTY,
    seed: int = 1,
) -> DynamicTimeline:
    """Replay the Figure 10 timeline once."""
    cluster = testbed_cluster(interference_penalty=penalty)
    deployment = MccsDeployment(cluster, ecmp_seed=seed * 337)
    manager = CentralManager(deployment)
    placements = {p.app_id: p for p in qos_setup()}
    generators: Dict[str, TrafficGenerator] = {}
    states: Dict[str, object] = {}

    def launch(app_id: str, iterations: int) -> None:
        placement = placements[app_id]
        state = manager.admit(app_id, placement.resolve(cluster))
        states[app_id] = state
        client = deployment.connect(app_id)
        comm = client.adopt_communicator(state.comm_id)
        trace = (
            vgg19_dp_trace(iterations)
            if app_id == "A"
            else gpt_tp_trace(iterations)
        )
        stream = client.create_stream(placement.resolve(cluster)[0])
        generator = TrafficGenerator(
            cluster.sim, MccsIssuer(client, comm), trace, stream, name=app_id
        )
        generators[app_id] = generator
        manager.apply_flow_policy("ffa")  # reschedule on every join
        generator.start(at=cluster.sim.now)

    # The arrival/priority schedule.
    launch("A", iterations=200)
    cluster.sim.schedule(t1, lambda: launch("B", iterations=200))
    cluster.sim.schedule(t2, lambda: launch("C", iterations=200))
    cluster.sim.schedule(
        t3,
        lambda: manager.apply_flow_policy(
            "pfa", high_priority_apps=["A"], reserved_routes={0}
        ),
    )

    def apply_ts() -> None:
        _, schedule = compute_traffic_schedule(
            deployment.trace(states["B"].comm_id), guard=0.0005
        )
        deployment.set_traffic_schedule("C", schedule)

    cluster.sim.schedule(t4, apply_ts)
    deployment.run(until=end)

    events = {"t1": t1, "t2": t2, "t3": t3, "t4": t4}
    phases = [
        ("A alone", 0.0, t1),
        ("A+B (FFA)", t1, t2),
        ("A+B+C (FFA)", t2, t3),
        ("PFA(A)", t3, t4),
        ("PFA+TS(B)", t4, end),
    ]
    throughput: List[PhaseThroughput] = []
    for app_id, generator in generators.items():
        timeline = generator.stats.throughput_timeline()
        for phase, start, stop in phases:
            window = [tp for t, tp in timeline if start <= t < stop]
            if window:
                throughput.append(
                    PhaseThroughput(app_id, phase, sum(window) / len(window))
                )
    # Normalize to each tenant's throughput under three-way FFA sharing.
    ffa_baseline: Dict[str, float] = {}
    for app_id in generators:
        window = [
            tp
            for t, tp in generators[app_id].stats.throughput_timeline()
            if t2 <= t < t3
        ]
        if window:
            ffa_baseline[app_id] = sum(window) / len(window)
    return DynamicTimeline(
        events=events,
        phases=phases,
        throughput=throughput,
        ffa_baseline=ffa_baseline,
        generators=generators,
    )


def main() -> None:
    timeline = run_fig10()
    _print(timeline)


def _print(timeline: DynamicTimeline) -> None:
    normalized = timeline.normalized()
    apps = sorted({p.app_id for p in timeline.throughput})
    rows = []
    for phase, start, stop in timeline.phases:
        rows.append(
            [f"{phase} [{start:.0f}-{stop:.0f}s]"]
            + [
                f"{normalized[(a, phase)]:.2f}" if (a, phase) in normalized else "-"
                for a in apps
            ]
        )
    print_table(
        ["Phase"] + apps,
        rows,
        title="Figure 10 — training throughput normalized to FFA (A+B+C phase)",
    )
    reporter = get_default_reporter()
    for app_id, generator in sorted(timeline.generators.items()):
        series = [tp for _, tp in generator.stats.throughput_timeline()]
        if series:
            reporter.line(f"  {app_id} throughput  |{sparkline(series)}|")
    reporter.line()


if __name__ == "__main__":
    main()
