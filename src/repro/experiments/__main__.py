"""Run every figure's experiment from the command line.

Usage::

    python -m repro.experiments            # all figures, default scale
    python -m repro.experiments fig07 fig08
"""

from __future__ import annotations

import sys
import time

from . import ALL_FIGURES


def main(argv: list) -> int:
    names = argv or list(ALL_FIGURES)
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}")
        print(f"available: {', '.join(ALL_FIGURES)}")
        return 2
    for name in names:
        module = ALL_FIGURES[name]
        print(f"{'=' * 72}\n{name}: {module.__doc__.strip().splitlines()[0]}\n{'=' * 72}")
        started = time.perf_counter()
        module.main()
        print(f"[{name} completed in {time.perf_counter() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
