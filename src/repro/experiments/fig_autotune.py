"""Autotune experiment — online tuner vs every static strategy choice.

For each message-size regime (a latency-bound small size and a
bandwidth-bound large size by default), every static candidate signature
the planner enumerates — ring / double-tree / halving-doubling crossed
with channel counts and ring orders — is measured on its own deployment.
Then one *tuned* deployment starts from the default strategy and lets
:class:`~repro.autotune.AutoTuner` retune live while the tenant issues a
stream of collectives.

Expected result: the tuner's converged (tail) mean matches the best static
choice in **every** regime, even though no single static choice wins both
— halving-doubling/tree win the small sizes, rings win the large — and
every retune goes through the §4.2 barrier with zero inconsistent
collectives.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..autotune import AutotuneConfig, StrategyPlanner
from ..cluster.specs import testbed_cluster
from ..collectives.ring import RingSchedule
from ..collectives.types import Collective
from ..core.deployment import MccsDeployment
from ..core.strategy import CollectiveStrategy
from ..netsim.units import KB, MB, format_size
from .report import print_table
from .setups import single_app_gpus

DEFAULT_SIZES = (64 * KB, 64 * MB)

#: All measurement deployments share one pinned datapath namespace:
#: connections of identical edges take identical ECMP draws in every
#: process and every strategy version, so tuned-vs-static compares
#: strategies, not path luck.
_DATAPATH_TAG = "autotune"

#: Environment variable naming a JSON file to dump the results into.
OUT_ENV = "MCCS_AUTOTUNE_OUT"


@dataclass
class RegimeResult:
    """Tuned-vs-static outcome for one message-size regime."""

    size: int
    static_means: Dict[str, float]
    tuned_tail_mean: float
    tuned_first: float
    retunes: int
    barrier_only: bool
    inconsistent: int

    @property
    def best_static(self) -> Tuple[str, float]:
        label = min(self.static_means, key=self.static_means.get)
        return label, self.static_means[label]

    @property
    def converged(self) -> bool:
        """Tuned tail within 5% of the best static mean."""
        _, best = self.best_static
        return self.tuned_tail_mean <= best * 1.05


@dataclass
class AutotuneResult:
    setup: str
    kind: Collective
    regimes: List[RegimeResult] = field(default_factory=list)


def _signature_label(algorithm: str, channels: int, ring_label: str) -> str:
    return f"{algorithm}/ch{channels}/{ring_label}"


def _static_signatures(
    size: int, setup: str, kind: Collective
) -> List[Tuple[str, str, int, Tuple[int, ...]]]:
    """(label, algorithm, channels, ring) for every planner candidate."""
    cluster = testbed_cluster()
    gpus = single_app_gpus(cluster, setup)
    planner = StrategyPlanner(cluster)
    out = []
    for scored in planner.plan(kind, size, gpus):
        c = scored.candidate
        out.append(
            (
                _signature_label(c.algorithm, c.channels, c.ring_label),
                c.algorithm,
                c.channels,
                c.ring,
            )
        )
    return out


def _measure_static(
    setup: str,
    kind: Collective,
    size: int,
    *,
    algorithm: str,
    channels: int,
    ring: Tuple[int, ...],
    iters: int,
) -> float:
    """Mean duration of ``iters`` collectives under one fixed strategy."""
    cluster = testbed_cluster()
    gpus = single_app_gpus(cluster, setup)
    deployment = MccsDeployment(cluster)
    strategy = CollectiveStrategy(
        ring=RingSchedule(tuple(ring)), channels=channels, algorithm=algorithm
    )
    comm = deployment.create_communicator(
        "A", gpus, strategy=strategy, datapath_tag=_DATAPATH_TAG
    )
    client = deployment.connect("A")
    shim_comm = client.adopt_communicator(comm.comm_id)
    durations: List[float] = []
    issue = {
        Collective.ALL_REDUCE: client.all_reduce,
        Collective.ALL_GATHER: client.all_gather,
    }[kind]
    for _ in range(iters):
        issue(
            shim_comm,
            size,
            on_complete=lambda inst, now: durations.append(inst.duration()),
        )
        deployment.run()
    return sum(durations) / len(durations)


def _measure_tuned(
    setup: str,
    kind: Collective,
    size: int,
    *,
    rounds: int,
    tail: int,
    config: Optional[AutotuneConfig],
) -> RegimeResult:
    """Run the online tuner from the default strategy; report the tail."""
    cluster = testbed_cluster()
    gpus = single_app_gpus(cluster, setup)
    deployment = MccsDeployment(cluster)
    tuner = deployment.enable_autotuning(config)
    comm = deployment.create_communicator(
        "A", gpus, datapath_tag=_DATAPATH_TAG
    )
    client = deployment.connect("A")
    shim_comm = client.adopt_communicator(comm.comm_id)
    durations: List[float] = []
    issue = {
        Collective.ALL_REDUCE: client.all_reduce,
        Collective.ALL_GATHER: client.all_gather,
    }[kind]
    for _ in range(rounds):
        issue(
            shim_comm,
            size,
            on_complete=lambda inst, now: durations.append(inst.duration()),
        )
        deployment.run()
    sessions = deployment.reconfig.sessions
    return RegimeResult(
        size=size,
        static_means={},  # filled by the caller
        tuned_tail_mean=sum(durations[-tail:]) / tail,
        tuned_first=durations[0],
        retunes=tuner.retunes_applied(comm.comm_id),
        barrier_only=bool(sessions)
        and all(s.barrier_enabled for s in sessions),
        inconsistent=comm.inconsistent_collectives,
    )


def run_autotune(
    *,
    setup: str = "8gpu",
    kind: Collective = Collective.ALL_REDUCE,
    sizes: Sequence[int] = DEFAULT_SIZES,
    static_iters: int = 4,
    tune_rounds: int = 24,
    tail: int = 4,
    config: Optional[AutotuneConfig] = None,
) -> AutotuneResult:
    """Tuned-vs-static comparison over the given size regimes."""
    result = AutotuneResult(setup=setup, kind=kind)
    for size in sizes:
        regime = _measure_tuned(
            setup, kind, size, rounds=tune_rounds, tail=tail, config=config
        )
        for label, algorithm, channels, ring in _static_signatures(
            size, setup, kind
        ):
            regime.static_means[label] = _measure_static(
                setup,
                kind,
                size,
                algorithm=algorithm,
                channels=channels,
                ring=ring,
                iters=static_iters,
            )
        result.regimes.append(regime)
    return result


def as_table(result: AutotuneResult) -> List[List[str]]:
    header = [
        "Size", "Best static", "Static (us)", "Tuned tail (us)",
        "First (us)", "Retunes", "Converged",
    ]
    rows = []
    for regime in result.regimes:
        label, best = regime.best_static
        rows.append(
            [
                format_size(regime.size),
                label,
                f"{best * 1e6:.1f}",
                f"{regime.tuned_tail_mean * 1e6:.1f}",
                f"{regime.tuned_first * 1e6:.1f}",
                str(regime.retunes),
                "yes" if regime.converged else "NO",
            ]
        )
    return [header] + rows


def as_json(result: AutotuneResult) -> Dict[str, object]:
    return {
        "setup": result.setup,
        "kind": result.kind.value,
        "regimes": [
            {
                "size": r.size,
                "static_means": r.static_means,
                "best_static": list(r.best_static),
                "tuned_tail_mean": r.tuned_tail_mean,
                "tuned_first": r.tuned_first,
                "retunes": r.retunes,
                "barrier_only": r.barrier_only,
                "inconsistent": r.inconsistent,
                "converged": r.converged,
            }
            for r in result.regimes
        ],
    }


def main(tune_rounds: int = 24, static_iters: int = 4) -> None:
    result = run_autotune(tune_rounds=tune_rounds, static_iters=static_iters)
    table = as_table(result)
    print_table(
        table[0],
        table[1:],
        title=(
            "Autotune — online tuner vs best static strategy "
            f"({result.setup}, {result.kind})"
        ),
    )
    out_path = os.environ.get(OUT_ENV)
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(as_json(result), fh, indent=2, sort_keys=True)
        print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
