"""Crashloop — control-plane resilience under kill/restart/upgrade cycles.

Not a figure from the paper, but the logical stress test of its premise:
if collective communication is a *managed service* (§3), then the service
process itself is infrastructure and must be allowed to die.  This
experiment runs the Figure 8 setup-2 multi-tenant workload (tenant A on
one GPU per host across both racks, B contained in rack 0, C contained in
rack 1) while the MCCS services on rack 1's hosts are repeatedly killed,
restarted from the write-ahead journal, and finally upgraded live through
the Figure 4 reconfiguration barrier.  It reports, per tenant:

* collectives issued / completed / failed (typed, never hung),
* shim reissues after hitting a down service,
* mean collective duration vs. a no-fault baseline run,

and deployment-wide: service crashes/restarts, upgrade drains, journal
size and replay-vs-live consistency, and admission sheds.  Tenant B
shares no host with the victims, so its run must be indistinguishable
from the baseline — the blast-radius-zero witness.  The final collective
of every surviving tenant carries real data and is checked byte-exactly.

``MCCS_CRASHLOOP_OUT=/path.json`` writes the rows as a JSON artifact
(consumed by the chaos CI job).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..cluster.specs import testbed_cluster
from ..core.admission import AdmissionPolicy
from ..core.controller import CentralManager
from ..core.deployment import MccsDeployment
from ..core.recovery import RecoveryPolicy
from ..netsim.errors import MccsError
from ..netsim.units import MB
from .report import print_table
from .setups import multi_app_setups

#: Hosts whose service processes are kill/restart cycled (rack 1).
VICTIM_HOSTS = (2, 3)
#: QoS class per tenant (A is the high-priority training job).
QOS_CLASSES = {"A": "high", "B": "normal", "C": "low"}


@dataclass
class TenantRow:
    """Per-tenant outcome of one crashloop run."""

    app_id: str
    qos: str
    issued: int
    completed: int
    failed: int
    shim_retries: int
    mean_duration_s: Optional[float]
    baseline_completed: int
    byte_correct: Optional[bool]


@dataclass
class CrashloopReport:
    """One crashloop run plus its no-fault baseline."""

    seed: int
    cycles: int
    tenants: List[TenantRow]
    service_crashes: int
    service_restarts: int
    upgrades_done: int
    upgrade_drained_comms: int
    admission_sheds: int
    journal_records: int
    journal_compacted: int
    #: Mismatch lines from replaying the journal against the live state
    #: (must be empty).
    journal_diff: List[str]
    #: B completed as many collectives as in the fault-free baseline.
    blast_radius_zero: bool


def _run_workload(
    *,
    seed: int,
    op_bytes: int,
    duration: float,
    cycles: int,
    inject: bool,
) -> Dict[str, object]:
    """One full run; ``inject=False`` is the baseline for comparison."""
    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster, ecmp_seed=seed)
    deployment.enable_recovery(RecoveryPolicy(collective_deadline=0.25))
    deployment.enable_service_supervision(restart_delay=0.02)
    admission = deployment.configure_admission(
        AdmissionPolicy(
            classes=(("high", 64), ("normal", 32), ("low", 16)),
            priority=("high", "normal", "low"),
        )
    )
    manager = CentralManager(deployment)
    placements = multi_app_setups()["setup2"]

    clients = {}
    comms = {}
    ops: Dict[str, List] = {}
    for placement in placements:
        admission.set_class(placement.app_id, QOS_CLASSES[placement.app_id])
        state = manager.admit(placement.app_id, placement.resolve(cluster))
        client = deployment.connect(placement.app_id)
        clients[placement.app_id] = client
        comms[placement.app_id] = client.adopt_communicator(state.comm_id)
        ops[placement.app_id] = []

    def make_chain(app_id: str) -> Callable[[object, float], None]:
        def chain(_instance: object, _now: float) -> None:
            if cluster.sim.now < duration:
                issue(app_id)

        return chain

    def issue(app_id: str) -> None:
        try:
            op = clients[app_id].all_reduce(
                comms[app_id], op_bytes, on_complete=make_chain(app_id)
            )
        except MccsError:
            # Typed rejection (admission shed, aborted communicator, dead
            # root service at issue time): recorded, never a hang.
            return
        ops[app_id].append(op)

    for placement in placements:
        issue(placement.app_id)

    upgrade_sessions: List[object] = []
    if inject:
        # Kill/restart cycles: alternate victims, spaced through the run;
        # the supervisor performs every restart from the journal.
        for i in range(cycles):
            host_id = VICTIM_HOSTS[i % len(VICTIM_HOSTS)]
            when = duration * (0.15 + 0.55 * i / max(cycles - 1, 1))
            cluster.sim.call_in(
                when,
                lambda host_id=host_id: deployment.crash_service(host_id),
            )
        # One live upgrade of the first victim after the cycles settle.
        def start_upgrade() -> None:
            service = deployment.service_of(VICTIM_HOSTS[0])
            if service.alive:
                upgrade_sessions.append(service.upgrade(component="service"))

        cluster.sim.call_in(duration * 0.85, start_upgrade)

    deployment.run()

    # Post-drain: one byte-carrying collective per surviving tenant.
    byte_correct: Dict[str, Optional[bool]] = {}
    for placement in placements:
        app_id = placement.app_id
        comm_obj = deployment.communicator(comms[app_id].comm_id)
        if comm_obj.aborted:
            byte_correct[app_id] = None
            continue
        gpus = placement.resolve(cluster)
        sends = [clients[app_id].alloc(g, 256) for g in gpus]
        recvs = [clients[app_id].alloc(g, 256) for g in gpus]
        for buf in sends:
            buf.view(np.float32)[:] = 3.0
        final = clients[app_id].all_reduce(
            comms[app_id], 256,
            send=[b.ref() for b in sends],
            recv=[b.ref() for b in recvs],
        )
        deployment.run()
        byte_correct[app_id] = final.completed and all(
            np.allclose(r.view(np.float32), 3.0 * len(gpus)) for r in recvs
        )

    compacted = deployment.journal.compact()
    return {
        "deployment": deployment,
        "clients": clients,
        "ops": ops,
        "byte_correct": byte_correct,
        "upgrades": upgrade_sessions,
        "compacted": compacted,
    }


def run_crashloop(
    *,
    seed: int = 0,
    op_bytes: int = 16 * MB,
    duration: float = 0.5,
    cycles: int = 2,
) -> CrashloopReport:
    """Run the crashloop and its no-fault baseline; compare and report."""
    baseline = _run_workload(
        seed=seed, op_bytes=op_bytes, duration=duration, cycles=0, inject=False
    )
    run = _run_workload(
        seed=seed, op_bytes=op_bytes, duration=duration, cycles=cycles, inject=True
    )

    deployment: MccsDeployment = run["deployment"]
    tenants: List[TenantRow] = []
    for app_id in sorted(run["ops"]):
        app_ops = run["ops"][app_id]
        completed = sum(1 for op in app_ops if op.completed)
        failed = sum(1 for op in app_ops if op.failed)
        durations = [op.duration() for op in app_ops if op.completed]
        tenants.append(
            TenantRow(
                app_id=app_id,
                qos=QOS_CLASSES[app_id],
                issued=len(app_ops),
                completed=completed,
                failed=failed,
                shim_retries=run["clients"][app_id].retries_total,
                mean_duration_s=(
                    sum(durations) / len(durations) if durations else None
                ),
                baseline_completed=sum(
                    1 for op in baseline["ops"][app_id] if op.completed
                ),
                byte_correct=run["byte_correct"][app_id],
            )
        )

    witness = next(row for row in tenants if row.app_id == "B")
    services = deployment.services.values()
    upgrades = run["upgrades"]
    return CrashloopReport(
        seed=seed,
        cycles=cycles,
        tenants=tenants,
        service_crashes=sum(s.crashes for s in services),
        service_restarts=sum(s.restarts for s in services),
        upgrades_done=sum(1 for s in upgrades if s.done and not s.failed),
        upgrade_drained_comms=sum(len(s.drained_comms) for s in upgrades),
        admission_sheds=(
            deployment.admission.shed_total
            if deployment.admission is not None
            else 0
        ),
        journal_records=len(deployment.journal),
        journal_compacted=run["compacted"],
        journal_diff=deployment.verify_journal(),
        blast_radius_zero=(
            witness.failed == 0
            and witness.completed >= witness.baseline_completed
        ),
    )


def main(seeds: Sequence[int] = (0, 1)) -> None:
    reports = [run_crashloop(seed=seed) for seed in seeds]
    rows = []
    for report in reports:
        for row in report.tenants:
            rows.append(
                (
                    str(report.seed),
                    row.app_id,
                    row.qos,
                    f"{row.completed}/{row.issued}",
                    str(row.failed),
                    str(row.shim_retries),
                    f"{row.mean_duration_s * 1e3:.2f} ms"
                    if row.mean_duration_s is not None
                    else "-",
                    str(row.baseline_completed),
                    {True: "yes", False: "NO", None: "-"}[row.byte_correct],
                )
            )
    print_table(
        (
            "seed", "tenant", "qos", "done/issued", "failed", "reissues",
            "mean", "baseline", "bytes ok",
        ),
        rows,
    )
    for report in reports:
        print(
            f"seed {report.seed}: crashes={report.service_crashes} "
            f"restarts={report.service_restarts} "
            f"upgrades={report.upgrades_done} "
            f"(drained {report.upgrade_drained_comms} comm(s)) "
            f"sheds={report.admission_sheds} "
            f"journal={report.journal_records} records "
            f"(compacted {report.journal_compacted})"
        )
        assert not report.journal_diff, report.journal_diff
        assert report.blast_radius_zero, (
            "witness tenant B was disturbed by rack-1 service crashes"
        )
        assert report.service_restarts >= report.service_crashes - 1
        for row in report.tenants:
            assert row.byte_correct is not False, f"{row.app_id} data corrupt"
    out = os.environ.get("MCCS_CRASHLOOP_OUT")
    if out:
        payload = {
            "experiment": "crashloop",
            "reports": [asdict(report) for report in reports],
        }
        with open(out, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"[crashloop JSON written to {out}]")


if __name__ == "__main__":
    main()
