"""Testbed experiment setups (Figure 5).

The single-application setups of §6.1:

* **4-GPU** — one GPU and one 50 Gbps virtual NIC per host;
* **8-GPU** — both GPUs and both virtual NICs of every host.

The four multi-application setups of Figure 5b place tenants A/B/C over
the 4-host x 2-GPU grid.  The figure itself is a drawing; we reconstruct
the placements from the paper's textual constraints (§6.3): tenants span
both racks (the bus-bandwidth contention is at the spine), "all
applications in setups 1, 2 and 4 use the same amount of NICs per host",
and in setup 3 "application A uses 2 GPUs and 2 NICs per host, while B
and C use only 1 per host" with A on 4 GPUs and B/C on 2 each (§6.4).
The reconstruction is recorded as a deviation in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..cluster.gpu import GpuDevice
from ..cluster.specs import Cluster

GpuCoord = Tuple[int, int]
"""(host_id, local gpu index)"""


@dataclass(frozen=True)
class TenantPlacement:
    """One tenant's GPUs within a multi-application setup."""

    app_id: str
    gpus: Tuple[GpuCoord, ...]

    def resolve(self, cluster: Cluster) -> List[GpuDevice]:
        return [cluster.hosts[h].gpus[k] for h, k in self.gpus]


def single_app_gpus(cluster: Cluster, setup: str) -> List[GpuDevice]:
    """The §6.2 single-application GPU sets."""
    if setup == "4gpu":
        return [cluster.hosts[h].gpus[0] for h in range(4)]
    if setup == "8gpu":
        return [g for h in range(4) for g in cluster.hosts[h].gpus]
    raise ValueError(f"unknown single-app setup {setup!r}")


def multi_app_setups() -> Dict[str, List[TenantPlacement]]:
    """The four Figure 5b setups (reconstructed placements).

    Hosts 0-1 sit in rack 0, hosts 2-3 in rack 1; GPU k of a host owns
    virtual NIC k.

    * **setup1** — two 4-GPU tenants, each one GPU/NIC per host.
    * **setup2** — one 4-GPU tenant (one GPU per host, crossing racks)
      plus two 2-GPU tenants each contained in one rack on the second GPU
      row; every tenant uses one NIC per host, and each tenant's
      inter-host path is bottlenecked by the same 50 Gbps NIC rate, which
      realizes the §6.3 statement that the setup-2 tenants "should have
      identical inter-host GPU communication performance".
    * **setup3** — the §6.4 QoS setup: A holds both GPUs of one host per
      rack (2 GPUs + 2 NICs per host), B and C hold one GPU per host on
      the remaining pair of hosts.
    * **setup4** — two 4-GPU tenants, each holding both GPUs of one host
      per rack (2 GPUs + 2 NICs per host).
    """
    return {
        "setup1": [
            TenantPlacement("A", ((0, 0), (1, 0), (2, 0), (3, 0))),
            TenantPlacement("B", ((0, 1), (1, 1), (2, 1), (3, 1))),
        ],
        "setup2": [
            TenantPlacement("A", ((0, 0), (1, 0), (2, 0), (3, 0))),
            TenantPlacement("B", ((0, 1), (1, 1))),
            TenantPlacement("C", ((2, 1), (3, 1))),
        ],
        "setup3": [
            TenantPlacement("A", ((0, 0), (0, 1), (2, 0), (2, 1))),
            TenantPlacement("B", ((1, 0), (3, 0))),
            TenantPlacement("C", ((1, 1), (3, 1))),
        ],
        "setup4": [
            TenantPlacement("A", ((0, 0), (0, 1), (2, 0), (2, 1))),
            TenantPlacement("B", ((1, 0), (1, 1), (3, 0), (3, 1))),
        ],
    }


def qos_setup() -> List[TenantPlacement]:
    """Setup 3, used by the §6.4 training-workload QoS experiments."""
    return multi_app_setups()["setup3"]


def naive_tenant_order(cluster: Cluster, gpus: Sequence[GpuDevice]) -> List[int]:
    """The rank order a topology-blind tenant ends up with.

    Cloud instance lists do not reflect racks; providers spread instances
    across failure domains, so a tenant enumerating its VMs typically
    *alternates* racks — the pattern §2.2 warns about ("randomly assign
    ranks to workers in different racks could lead the ring to cross racks
    back and forth multiple times").  We model that deterministic bad
    case: rank blocks stay host-major (tenants know their own VM
    boundaries) but hosts are enumerated round-robin across racks.
    """
    by_host: Dict[int, List[int]] = {}
    for rank, gpu in enumerate(gpus):
        by_host.setdefault(gpu.host_id, []).append(rank)
    by_rack: Dict[int, List[int]] = {}
    for host in sorted(by_host):
        by_rack.setdefault(cluster.hosts[host].rack, []).append(host)
    racks = sorted(by_rack)
    interleaved: List[int] = []
    depth = max(len(hosts) for hosts in by_rack.values())
    for i in range(depth):
        for rack in racks:
            if i < len(by_rack[rack]):
                interleaved.append(by_rack[rack][i])
    order: List[int] = []
    for host in interleaved:
        order.extend(sorted(by_host[host]))
    return order
