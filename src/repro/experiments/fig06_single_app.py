"""Figure 6 — single-application AllGather/AllReduce algorithm bandwidth.

Four systems on the Figure 5a testbed, 32 KB to 512 MB (output-buffer
sizes), 4-GPU and 8-GPU setups:

* **NCCL** — rank order as a topology-blind tenant would assign it
  (rack-alternating host enumeration), ECMP routing;
* **NCCL(OR)** — NCCL manually fed the locality-optimal ring (the paper's
  overhead baseline), ECMP routing;
* **MCCS(-FA)** — MCCS with the locality ring but no flow assignment
  (ECMP), isolating MCCS's datapath latency overhead;
* **MCCS** — the full system: locality ring + fair flow assignment.

Expected shape (§6.2): MCCS(-FA) loses clearly to NCCL(OR) below 8 MB
(the 50-80 us shim->service datapath) and converges above; NCCL(OR) beats
NCCL by ~1.5-1.8x at 512 MB; MCCS beats everything at large sizes (up to
~2.4x over NCCL on 8 GPUs) because FFA removes ECMP collisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..baselines.nccl import NcclCommunicator
from ..cluster.specs import testbed_cluster
from ..collectives.types import Collective
from ..core.controller import CentralManager
from ..core.deployment import MccsDeployment
from ..core.policies.ring_order import locality_ring_order
from ..netsim.units import KB, MB, format_size
from .report import Stat, print_table
from .setups import naive_tenant_order, single_app_gpus

SYSTEMS = ("nccl", "nccl_or", "mccs_nofa", "mccs")
SYSTEM_LABELS = {
    "nccl": "NCCL",
    "nccl_or": "NCCL(OR)",
    "mccs_nofa": "MCCS(-FA)",
    "mccs": "MCCS",
}
PAPER_SIZES = (
    32 * KB,
    128 * KB,
    512 * KB,
    2 * MB,
    8 * MB,
    32 * MB,
    128 * MB,
    512 * MB,
)


@dataclass
class SingleAppResult:
    """Mean algorithm bandwidth (GB/s) per (setup, kind, system, size)."""

    setup: str
    kind: Collective
    system: str
    size: int
    stat: Stat


def _issue_fn(
    system: str,
    setup: str,
    trial: int,
    datapath_latency: Optional[float] = None,
) -> Tuple[Callable[[Collective, int, Callable], None], Callable[[], float]]:
    """Build one system instance; returns (issue, run_sim).

    ``datapath_latency`` overrides the MCCS shim->service hop (§6.2's
    50-80 us range) for the MCCS systems; NCCL runs in-process and is
    unaffected.
    """
    cluster = testbed_cluster()
    gpus = single_app_gpus(cluster, setup)
    seed = trial * 1009 + 17
    if system in ("nccl", "nccl_or"):
        order = (
            naive_tenant_order(cluster, gpus)
            if system == "nccl"
            else locality_ring_order(cluster, gpus)
        )
        comm = NcclCommunicator(cluster, gpus, ring_order=order, ecmp_seed=seed)

        def issue(kind: Collective, out_bytes: int, on_complete) -> None:
            method = {
                Collective.ALL_REDUCE: comm.all_reduce,
                Collective.ALL_GATHER: comm.all_gather,
            }[kind]
            method(out_bytes, on_complete=lambda op, now: on_complete(op.duration()))

        return issue, lambda: cluster.sim.run()
    if system in ("mccs_nofa", "mccs"):
        deployment = MccsDeployment(
            cluster, ecmp_seed=seed, datapath_latency=datapath_latency
        )
        manager = CentralManager(deployment)
        state = manager.admit("A", gpus)
        if system == "mccs":
            manager.apply_flow_policy("ffa")
            deployment.run()
        client = deployment.connect("A")
        comm = client.adopt_communicator(state.comm_id)

        def issue(kind: Collective, out_bytes: int, on_complete) -> None:
            method = {
                Collective.ALL_REDUCE: client.all_reduce,
                Collective.ALL_GATHER: client.all_gather,
            }[kind]
            method(
                comm,
                out_bytes,
                on_complete=lambda inst, now: on_complete(inst.duration()),
            )

        return issue, lambda: deployment.run()
    raise ValueError(f"unknown system {system!r}")


def run_fig06(
    *,
    setups: Sequence[str] = ("4gpu", "8gpu"),
    kinds: Sequence[Collective] = (Collective.ALL_GATHER, Collective.ALL_REDUCE),
    sizes: Sequence[int] = PAPER_SIZES,
    systems: Sequence[str] = SYSTEMS,
    trials: int = 5,
    iters: int = 3,
    datapath_latency: Optional[float] = None,
) -> List[SingleAppResult]:
    """Sweep the Figure 6 grid; returns one result row per cell."""
    results: List[SingleAppResult] = []
    for setup in setups:
        for kind in kinds:
            for system in systems:
                samples: Dict[int, List[float]] = {size: [] for size in sizes}
                for trial in range(trials):
                    issue, run = _issue_fn(system, setup, trial, datapath_latency)
                    for size in sizes:
                        for _ in range(iters):
                            durations: List[float] = []
                            issue(kind, size, durations.append)
                            run()
                            samples[size].append(size / durations[0] / 1e9)
                for size in sizes:
                    results.append(
                        SingleAppResult(
                            setup=setup,
                            kind=kind,
                            system=system,
                            size=size,
                            stat=Stat.of(samples[size]),
                        )
                    )
    return results


def as_tables(results: Sequence[SingleAppResult]) -> Dict[Tuple[str, Collective], List[List[str]]]:
    """Group rows into one table per (setup, kind) panel."""
    panels: Dict[Tuple[str, Collective], Dict[int, Dict[str, Stat]]] = {}
    for r in results:
        panels.setdefault((r.setup, r.kind), {}).setdefault(r.size, {})[r.system] = r.stat
    tables = {}
    for key, by_size in panels.items():
        systems = [s for s in SYSTEMS if any(s in row for row in by_size.values())]
        rows = []
        for size in sorted(by_size):
            row = [format_size(size)]
            for system in systems:
                stat = by_size[size].get(system)
                row.append(f"{stat.mean:.2f}" if stat else "-")
            rows.append(row)
        tables[key] = [["Size"] + [SYSTEM_LABELS[s] for s in systems]] + rows
    return tables


def main(trials: int = 5, iters: int = 3) -> None:
    results = run_fig06(trials=trials, iters=iters)
    for (setup, kind), table in sorted(
        as_tables(results).items(), key=lambda kv: (kv[0][0], kv[0][1].value)
    ):
        print_table(
            table[0],
            table[1:],
            title=f"Figure 6 — {kind} algorithm bandwidth (GB/s), {setup} setup",
        )


if __name__ == "__main__":
    main()
