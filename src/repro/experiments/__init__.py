"""Experiment harness: one module per results figure of the paper.

Each ``figNN_*`` module exposes a parameterized ``run_*`` API (used by the
benchmarks and tests) and a ``main()`` that prints the paper's rows at
full scale.  ``python -m repro.experiments`` runs every figure in order.
"""

from . import (
    fig02_breakdown,
    fig03_crossrack,
    fig06_single_app,
    fig07_reconfig,
    fig08_multi_app,
    fig09_qos,
    fig10_dynamic,
    fig11_simulation,
    fig_attribution,
    fig_autotune,
    fig_crashloop,
    fig_elastic,
    fig_failover,
    fig_fleet,
    fig_synth,
)
from .report import Stat, cdf_points, format_table, geometric_mean, print_table
from .setups import (
    TenantPlacement,
    multi_app_setups,
    naive_tenant_order,
    qos_setup,
    single_app_gpus,
)

ALL_FIGURES = {
    "fig02": fig02_breakdown,
    "fig03": fig03_crossrack,
    "fig06": fig06_single_app,
    "fig07": fig07_reconfig,
    "fig08": fig08_multi_app,
    "fig09": fig09_qos,
    "fig10": fig10_dynamic,
    "fig11": fig11_simulation,
    "failover": fig_failover,
    "autotune": fig_autotune,
    "crashloop": fig_crashloop,
    "attribution": fig_attribution,
    "elastic": fig_elastic,
    "synth": fig_synth,
    "fleet": fig_fleet,
}

__all__ = [
    "ALL_FIGURES",
    "Stat",
    "TenantPlacement",
    "cdf_points",
    "fig02_breakdown",
    "fig03_crossrack",
    "fig06_single_app",
    "fig07_reconfig",
    "fig08_multi_app",
    "fig09_qos",
    "fig10_dynamic",
    "fig11_simulation",
    "fig_attribution",
    "fig_autotune",
    "fig_crashloop",
    "fig_elastic",
    "fig_failover",
    "fig_fleet",
    "fig_synth",
    "format_table",
    "geometric_mean",
    "multi_app_setups",
    "naive_tenant_order",
    "print_table",
    "qos_setup",
    "single_app_gpus",
]
