"""Bounded-exploration bandits over strategy arms.

Arms are runtime strategy signatures; rewards are *costs* (measured
collective durations, lower is better).  Both policies spend a bounded
exploration budget and then turn purely greedy, so a tenant is never
subjected to unbounded experimentation: every exploratory pull is one
collective executed under a possibly-suboptimal (but always correct)
strategy.

* :class:`EpsilonGreedy` — explore uniformly at random with probability
  ``epsilon`` while budget remains;
* :class:`UcbBandit` — optimistic lower-confidence-bound selection
  (UCB1 adapted to cost minimization), scale-free via the running mean.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence


@dataclass
class ArmStats:
    pulls: int = 0
    total_cost: float = 0.0

    @property
    def mean(self) -> float:
        return self.total_cost / self.pulls if self.pulls else math.inf

    def observe(self, cost: float) -> None:
        self.pulls += 1
        self.total_cost += cost


@dataclass
class BanditState:
    """Shared bookkeeping: per-arm stats + the exploration ledger."""

    arms: Dict[Hashable, ArmStats] = field(default_factory=dict)
    exploration_spent: int = 0
    total_pulls: int = 0

    def stats(self, arm: Hashable) -> ArmStats:
        stats = self.arms.get(arm)
        if stats is None:
            stats = self.arms[arm] = ArmStats()
        return stats


class CostBandit:
    """Base class: arm registration, observation, greedy choice."""

    def __init__(self, *, exploration_budget: int = 16) -> None:
        if exploration_budget < 0:
            raise ValueError("exploration_budget must be non-negative")
        self.exploration_budget = exploration_budget
        self.state = BanditState()

    # -- shared plumbing -------------------------------------------------
    def observe(self, arm: Hashable, cost: float) -> None:
        if cost < 0:
            raise ValueError("cost must be non-negative")
        self.state.stats(arm).observe(cost)
        self.state.total_pulls += 1

    def mean(self, arm: Hashable) -> Optional[float]:
        stats = self.state.arms.get(arm)
        if stats is None or stats.pulls == 0:
            return None
        return stats.mean

    def best_arm(self, arms: Sequence[Hashable]) -> Hashable:
        """Pure exploitation: lowest observed mean (unpulled arms last)."""
        return min(arms, key=lambda a: (self.state.stats(a).mean, str(a)))

    def _unpulled(self, arms: Sequence[Hashable]) -> List[Hashable]:
        return [a for a in arms if self.state.stats(a).pulls == 0]

    @property
    def exploration_exhausted(self) -> bool:
        return self.state.exploration_spent >= self.exploration_budget

    def _spend_exploration(self) -> None:
        self.state.exploration_spent += 1

    def select(self, arms: Sequence[Hashable]) -> Hashable:
        raise NotImplementedError


class EpsilonGreedy(CostBandit):
    """Classic epsilon-greedy with a deterministic seed and a budget."""

    def __init__(
        self,
        *,
        epsilon: float = 0.2,
        exploration_budget: int = 16,
        seed: int = 0,
    ) -> None:
        super().__init__(exploration_budget=exploration_budget)
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.epsilon = epsilon
        self._rng = random.Random(seed)

    def select(self, arms: Sequence[Hashable]) -> Hashable:
        if not arms:
            raise ValueError("no arms to select from")
        unpulled = self._unpulled(arms)
        if unpulled and not self.exploration_exhausted:
            self._spend_exploration()
            return unpulled[0]
        if (
            not self.exploration_exhausted
            and self._rng.random() < self.epsilon
        ):
            self._spend_exploration()
            return arms[self._rng.randrange(len(arms))]
        return self.best_arm(arms)


class UcbBandit(CostBandit):
    """UCB1 for costs: pick the arm with the lowest optimistic bound.

    The confidence width is scaled by the arm's own mean so the policy is
    invariant to the absolute duration scale (microseconds vs seconds).
    """

    def __init__(
        self, *, c: float = 0.5, exploration_budget: int = 32
    ) -> None:
        super().__init__(exploration_budget=exploration_budget)
        if c < 0:
            raise ValueError("c must be non-negative")
        self.c = c

    def select(self, arms: Sequence[Hashable]) -> Hashable:
        if not arms:
            raise ValueError("no arms to select from")
        unpulled = self._unpulled(arms)
        if unpulled and not self.exploration_exhausted:
            self._spend_exploration()
            return unpulled[0]
        if self.exploration_exhausted:
            return self.best_arm(arms)
        total = max(1, self.state.total_pulls)

        def bound(arm: Hashable) -> float:
            stats = self.state.stats(arm)
            if stats.pulls == 0:
                return -math.inf  # optimism for never-tried arms
            width = self.c * stats.mean * math.sqrt(
                2.0 * math.log(total) / stats.pulls
            )
            return stats.mean - width

        choice = min(arms, key=lambda a: (bound(a), str(a)))
        if choice != self.best_arm(arms):
            self._spend_exploration()
        return choice


def make_bandit(
    policy: str,
    *,
    epsilon: float = 0.2,
    ucb_c: float = 0.5,
    exploration_budget: int = 16,
    seed: int = 0,
) -> CostBandit:
    if policy == "epsilon":
        return EpsilonGreedy(
            epsilon=epsilon, exploration_budget=exploration_budget, seed=seed
        )
    if policy == "ucb":
        return UcbBandit(c=ucb_c, exploration_budget=exploration_budget)
    raise ValueError(f"unknown bandit policy {policy!r}; use 'epsilon' or 'ucb'")
