"""Cost-model + measurement-driven strategy autotuning.

Two halves, matching how a provider would actually run this:

* **Offline planner** (:class:`StrategyPlanner`) — enumerate candidate
  strategies (algorithm family including ``halving_doubling``, channel
  count, ring order, chunk size), score them with the alpha-beta model
  plus topology-aware bottleneck estimates, and persist the winners in a
  JSON :class:`TuningTable` keyed by (kind, world, size bucket, topology
  fingerprint).
* **Online tuner** (:class:`AutoTuner`) — consume measured per-collective
  durations, run a bounded-exploration bandit per bucket, and apply every
  strategy change live through the §4.2 reconfiguration barrier.

Enable with ``MccsDeployment.enable_autotuning(...)``; see
``docs/autotuning.md`` for the full walkthrough.
"""

from .bandit import (
    ArmStats,
    CostBandit,
    EpsilonGreedy,
    UcbBandit,
    make_bandit,
)
from .cost import (
    bottleneck_seconds,
    estimate_seconds,
    pair_traffic,
    pipelined_seconds,
    topology_fingerprint,
    wan_rtt_seconds,
)
from .planner import (
    Candidate,
    ScoredCandidate,
    StrategyPlanner,
    canonical_ring,
)
from .table import (
    TABLE_FORMAT_VERSION,
    TableEntry,
    TableKey,
    TuningTable,
    size_bucket,
)
from .tuner import AutotuneConfig, AutoTuner

__all__ = [
    "ArmStats",
    "AutoTuner",
    "AutotuneConfig",
    "Candidate",
    "CostBandit",
    "EpsilonGreedy",
    "ScoredCandidate",
    "StrategyPlanner",
    "TABLE_FORMAT_VERSION",
    "TableEntry",
    "TableKey",
    "TuningTable",
    "UcbBandit",
    "bottleneck_seconds",
    "canonical_ring",
    "estimate_seconds",
    "make_bandit",
    "pair_traffic",
    "pipelined_seconds",
    "size_bucket",
    "topology_fingerprint",
    "wan_rtt_seconds",
]
