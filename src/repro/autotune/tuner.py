"""The online autotuner: measurement-driven strategy selection.

The tuner subscribes to every finished collective (via
:meth:`ServiceCommunicator.add_completion_listener`), attributes the
measured duration to the strategy signature that executed it (through
``instance.rank_versions`` and the communicator's ``strategy_history``),
and feeds a bounded-exploration bandit per ``(kind, world, size-bucket)``.
When the bandit's choice differs from the communicator's current strategy,
the tuner applies the change **live through the §4.2 reconfiguration
barrier** — ``barrier_enabled=True``, always — so the tenant is never
interrupted and co-tenants see zero blast radius.

Arms are seeded from the offline planner's ranked candidates and, when
available, the persisted tuning table (hits/misses are surfaced as
``mccs_autotune_table_{hits,misses}_total``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ..collectives.types import Collective
from ..netsim.errors import ReconfigurationError
from .bandit import CostBandit, make_bandit
from .cost import topology_fingerprint
from .planner import Signature, StrategyPlanner
from .table import TableEntry, TableKey, TuningTable, size_bucket

if TYPE_CHECKING:  # pragma: no cover - import cycle broken for type hints
    from ..core.communicator import CollectiveInstance, ServiceCommunicator
    from ..core.deployment import MccsDeployment

#: One bandit instance per (collective kind, world size, size bucket).
BucketKey = Tuple[str, int, int]


@dataclass
class AutotuneConfig:
    """Knobs of the online tuner.

    Attributes:
        policy: ``"ucb"`` or ``"epsilon"`` (see :mod:`repro.autotune.bandit`).
        epsilon: Exploration probability for the epsilon-greedy policy.
        ucb_c: Confidence-width scale for the UCB policy.
        exploration_budget: Maximum exploratory pulls per bucket; after
            the budget is spent the bandit is purely greedy (bounded
            exploration — the tenant is never experimented on forever).
        max_arms: Planner candidates admitted as arms per bucket.
        min_observations: Measurements a bucket needs before its first
            retune may be issued.
        cooldown: Completed collectives between consecutive retunes of the
            same communicator.
        seed: Deterministic seed for the epsilon-greedy RNG.
        use_table: Consult (and grow) the tuning table when seeding arms.
    """

    policy: str = "ucb"
    epsilon: float = 0.2
    ucb_c: float = 0.5
    exploration_budget: int = 12
    max_arms: int = 6
    min_observations: int = 1
    cooldown: int = 1
    seed: int = 0
    use_table: bool = True


@dataclass
class _ArmSpec:
    """What a reconfiguration must install to run one arm."""

    algorithm: str
    channels: int
    ring: Tuple[int, ...]
    predicted_seconds: float = 0.0


@dataclass
class _BucketState:
    bandit: CostBandit
    arms: Dict[Signature, _ArmSpec] = field(default_factory=dict)
    observations: int = 0
    baseline: Optional[Signature] = None


@dataclass
class _CommState:
    comm: "ServiceCommunicator"
    fingerprint: str
    buckets: Dict[BucketKey, _BucketState] = field(default_factory=dict)
    retune_inflight: bool = False
    since_retune: int = 0
    retunes_applied: int = 0
    #: Membership epoch awaiting its first applied retune (attribution).
    pending_epoch: Optional[int] = None
    epoch_retunes_applied: int = 0


class AutoTuner:
    """Per-deployment online tuner; attach communicators to start tuning."""

    def __init__(
        self,
        deployment: "MccsDeployment",
        *,
        config: Optional[AutotuneConfig] = None,
        planner: Optional[StrategyPlanner] = None,
        table: Optional[TuningTable] = None,
    ) -> None:
        self.deployment = deployment
        self.config = config if config is not None else AutotuneConfig()
        self.metrics = deployment.telemetry().metrics
        self.planner = (
            planner
            if planner is not None
            else StrategyPlanner(
                deployment.cluster,
                latency=deployment.latency,
                metrics=self.metrics,
            )
        )
        self.table = table if table is not None else TuningTable()
        self._states: Dict[int, _CommState] = {}

        self._observations = self.metrics.counter(
            "mccs_autotune_observations_total",
            "Measured collective durations fed to the autotuner, by comm.",
        )
        self._retunes_applied = self.metrics.counter(
            "mccs_autotune_retunes_applied_total",
            "Strategy changes applied live through the reconfiguration "
            "barrier, by comm and target algorithm.",
        )
        self._retunes_failed = self.metrics.counter(
            "mccs_autotune_retunes_failed_total",
            "Autotuner reconfigurations that failed or were rejected.",
        )
        self._table_hits = self.metrics.counter(
            "mccs_autotune_table_hits_total",
            "Tuning-table lookups that found a planned entry.",
        )
        self._table_misses = self.metrics.counter(
            "mccs_autotune_table_misses_total",
            "Tuning-table lookups that fell back to online planning.",
        )
        self._gain = self.metrics.gauge(
            "mccs_autotune_gain_seconds",
            "Per-bucket estimated gain: baseline arm mean minus best arm "
            "mean (positive = tuner found a faster strategy).",
        )
        self._regret = self.metrics.counter(
            "mccs_autotune_regret_seconds_total",
            "Cumulative estimated regret: observed duration minus the "
            "bucket's best known mean, by comm.",
        )
        self._epoch_retunes = self.metrics.counter(
            "mccs_autotune_epoch_retunes_total",
            "Retunes applied and attributed to a membership epoch change "
            "(the first retune after an elastic grow/shrink), by comm.",
        )

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, comm: "ServiceCommunicator") -> None:
        """Start tuning ``comm`` (idempotent)."""
        if comm.comm_id in self._states:
            return
        state = _CommState(
            comm=comm,
            fingerprint=topology_fingerprint(
                self.deployment.cluster, comm.gpus
            ),
        )
        self._states[comm.comm_id] = state
        comm.add_completion_listener(
            lambda instance, state=state: self._observe(state, instance)
        )

    def attached_comms(self) -> Tuple[int, ...]:
        return tuple(sorted(self._states))

    def retunes_applied(self, comm_id: Optional[int] = None) -> int:
        if comm_id is not None:
            state = self._states.get(comm_id)
            return state.retunes_applied if state else 0
        return sum(s.retunes_applied for s in self._states.values())

    def epoch_retunes(self, comm_id: Optional[int] = None) -> int:
        """Retunes applied and attributed to a membership epoch change."""
        if comm_id is not None:
            state = self._states.get(comm_id)
            return state.epoch_retunes_applied if state else 0
        return sum(s.epoch_retunes_applied for s in self._states.values())

    def membership_changed(self, comm: "ServiceCommunicator") -> None:
        """Elastic-coordinator notification: ``comm``'s rank set changed.

        The old buckets keyed on the previous world size and the old
        placement fingerprint are useless (WAN-crossing placements tune
        completely differently), so drop them, recompute the fingerprint,
        and attribute the next applied retune to the new epoch.
        """
        state = self._states.get(comm.comm_id)
        if state is None:
            return
        state.fingerprint = topology_fingerprint(
            self.deployment.cluster, comm.gpus
        )
        state.buckets.clear()
        state.retune_inflight = False
        state.since_retune = self.config.cooldown
        state.pending_epoch = comm.membership_epoch

    # ------------------------------------------------------------------
    # measurement path
    # ------------------------------------------------------------------
    @staticmethod
    def _signature_of(strategy) -> Signature:
        return (
            strategy.algorithm,
            strategy.channels,
            tuple(strategy.ring.order),
        )

    def _bucket_key(self, instance: "CollectiveInstance") -> BucketKey:
        return (
            instance.kind.value,
            instance.world,
            size_bucket(instance.out_bytes),
        )

    def _ensure_bucket(
        self, state: _CommState, instance: "CollectiveInstance"
    ) -> _BucketState:
        key = self._bucket_key(instance)
        bucket = state.buckets.get(key)
        if bucket is not None:
            return bucket
        cfg = self.config
        bucket = _BucketState(
            bandit=make_bandit(
                cfg.policy,
                epsilon=cfg.epsilon,
                ucb_c=cfg.ucb_c,
                exploration_budget=cfg.exploration_budget,
                seed=cfg.seed + len(state.buckets),
            )
        )
        state.buckets[key] = bucket

        # Seed arms: planner ranking first, then the table's pick (if any),
        # and always the strategy currently running on the communicator.
        ranked = self.planner.plan(
            instance.kind, instance.out_bytes, state.comm.gpus
        )
        for scored in ranked[: cfg.max_arms]:
            candidate = scored.candidate
            bucket.arms[candidate.signature()] = _ArmSpec(
                algorithm=candidate.algorithm,
                channels=candidate.channels,
                ring=candidate.ring,
                predicted_seconds=scored.predicted_seconds,
            )
        if cfg.use_table:
            entry = self.table.lookup(
                instance.kind.value,
                instance.world,
                instance.out_bytes,
                state.fingerprint,
            )
            if entry is not None:
                self._table_hits.inc(comm=f"comm{state.comm.comm_id}")
                bucket.arms.setdefault(
                    entry.signature(),
                    _ArmSpec(
                        algorithm=entry.algorithm,
                        channels=entry.channels,
                        ring=entry.ring,
                        predicted_seconds=entry.predicted_seconds,
                    ),
                )
            else:
                self._table_misses.inc(comm=f"comm{state.comm.comm_id}")
                winner = ranked[0]
                self.table.put(
                    TableKey(
                        kind=instance.kind.value,
                        world=instance.world,
                        bucket=size_bucket(instance.out_bytes),
                        fingerprint=state.fingerprint,
                    ),
                    TableEntry(
                        algorithm=winner.candidate.algorithm,
                        channels=winner.candidate.channels,
                        ring=winner.candidate.ring,
                        chunk_bytes=winner.candidate.chunk_bytes,
                        predicted_seconds=winner.predicted_seconds,
                        candidates_evaluated=len(ranked),
                    ),
                )
        current = self._signature_of(state.comm.strategy)
        bucket.arms.setdefault(
            current,
            _ArmSpec(
                algorithm=state.comm.strategy.algorithm,
                channels=state.comm.strategy.channels,
                ring=tuple(state.comm.strategy.ring.order),
            ),
        )
        return bucket

    def _observe(
        self, state: _CommState, instance: "CollectiveInstance"
    ) -> None:
        if instance.aborted or instance.end_time is None:
            return
        if not instance.consistent or not instance.rank_versions:
            return
        version = next(iter(instance.rank_versions.values()))
        strategy = state.comm.strategy_history.get(version)
        if strategy is None:
            return
        duration = instance.duration()
        bucket = self._ensure_bucket(state, instance)
        signature = self._signature_of(strategy)
        bucket.arms.setdefault(
            signature,
            _ArmSpec(
                algorithm=strategy.algorithm,
                channels=strategy.channels,
                ring=tuple(strategy.ring.order),
            ),
        )
        if bucket.baseline is None:
            bucket.baseline = signature
        bucket.bandit.observe(signature, duration)
        bucket.observations += 1
        state.since_retune += 1
        comm_label = f"comm{state.comm.comm_id}"
        self._observations.inc(comm=comm_label)
        self._publish_estimates(state, bucket, duration, comm_label)
        self._maybe_retune(state, instance, bucket)

    def _publish_estimates(
        self,
        state: _CommState,
        bucket: _BucketState,
        duration: float,
        comm_label: str,
    ) -> None:
        arms = list(bucket.arms)
        best = bucket.bandit.best_arm(arms)
        best_mean = bucket.bandit.mean(best)
        if best_mean is None:
            return
        self._regret.inc(max(0.0, duration - best_mean), comm=comm_label)
        if bucket.baseline is not None:
            baseline_mean = bucket.bandit.mean(bucket.baseline)
            if baseline_mean is not None:
                key = next(
                    k for k, b in state.buckets.items() if b is bucket
                )
                self._gain.set(
                    baseline_mean - best_mean,
                    comm=comm_label,
                    bucket=f"{key[0]}/2^{key[2]}",
                )

    # ------------------------------------------------------------------
    # retuning through the barrier
    # ------------------------------------------------------------------
    def _maybe_retune(
        self,
        state: _CommState,
        instance: "CollectiveInstance",
        bucket: _BucketState,
    ) -> None:
        cfg = self.config
        if state.retune_inflight:
            return
        if bucket.observations < cfg.min_observations:
            return
        if state.since_retune < cfg.cooldown:
            return
        choice = bucket.bandit.select(list(bucket.arms))
        current = self._signature_of(state.comm.strategy)
        if choice == current:
            return
        self._retune(state, bucket.arms[choice])

    def _retune(self, state: _CommState, spec: _ArmSpec) -> None:
        comm = state.comm
        # Route pins are keyed (src, dst, channel); shrinking the channel
        # count would orphan high-channel pins, so clear them and let the
        # controller's flow policy re-pin on the new shape.
        routes = (
            {}
            if spec.channels < comm.strategy.channels
            and comm.strategy.route_ids
            else None
        )

        def done(session) -> None:
            state.retune_inflight = False
            state.since_retune = 0
            state.retunes_applied += 1
            self._retunes_applied.inc(
                comm=f"comm{comm.comm_id}", algorithm=spec.algorithm
            )
            if state.pending_epoch is not None:
                state.epoch_retunes_applied += 1
                self._epoch_retunes.inc(
                    comm=f"comm{comm.comm_id}",
                    epoch=str(state.pending_epoch),
                )
                state.pending_epoch = None

        def failed(session) -> None:
            state.retune_inflight = False
            self._retunes_failed.inc(comm=f"comm{comm.comm_id}")

        state.retune_inflight = True
        try:
            self.deployment.reconfigure(
                comm.comm_id,
                ring=spec.ring,
                channels=spec.channels,
                algorithm=spec.algorithm,
                barrier_enabled=True,  # §4.2: never bypass the barrier
                routes=routes,
                on_done=done,
                on_failed=failed,
            )
        except ReconfigurationError:
            # Another controller policy is mid-reconfiguration on this
            # communicator; skip this round and try again later.
            state.retune_inflight = False
            self._retunes_failed.inc(comm=f"comm{comm.comm_id}")
