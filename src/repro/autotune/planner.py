"""The offline strategy planner.

Enumerates candidate :class:`~repro.core.strategy.CollectiveStrategy`
configurations — algorithm family (every registry entry, including
``halving_doubling``), channel count, ring order, chunk size — and scores
each with :func:`repro.autotune.cost.estimate_seconds`.  The output is
either a ranked candidate list (seeding the online bandit's arms) or a
persistable :class:`~repro.autotune.table.TuningTable` covering a sweep of
(kind, size) cells.

Chunk size is a *planning* dimension: the fluid simulator's runtime cost
does not depend on it, so candidates sharing a runtime signature
``(algorithm, channels, ring)`` are collapsed to their cheapest chunking
before ranking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.gpu import GpuDevice
from ..cluster.specs import Cluster
from ..collectives.cost_model import LatencyModel, MCCS_LATENCY
from ..collectives.halving_doubling import is_power_of_two
from ..collectives.types import Collective
from ..core.policies.ring_order import locality_ring_order
from ..netsim.units import KB
from ..telemetry.metrics import MetricsRegistry
from .cost import estimate_seconds, topology_fingerprint
from .table import TableEntry, TableKey, TuningTable, size_bucket

#: Runtime-distinguishable part of a candidate: what a reconfiguration can
#: actually install and what a measurement can be attributed to.
Signature = Tuple[str, int, Tuple[int, ...]]

DEFAULT_CHANNEL_OPTIONS = (1, 2)
DEFAULT_CHUNK_OPTIONS = (64 * KB, 256 * KB, 1024 * KB)


@dataclass(frozen=True)
class Candidate:
    """One point of the planner's search space."""

    algorithm: str
    channels: int
    ring: Tuple[int, ...]
    ring_label: str
    chunk_bytes: int

    def signature(self) -> Signature:
        return (self.algorithm, self.channels, self.ring)


@dataclass(frozen=True)
class ScoredCandidate:
    candidate: Candidate
    predicted_seconds: float


class StrategyPlanner:
    """Enumerates and scores candidate strategies for one cluster.

    Args:
        cluster: Fabric + placement the estimates are computed against.
        latency: Fixed-overhead model (must match the deployment's so
            predicted and measured times are on the same scale).
        channel_options: Channel counts to consider.
        chunk_options: Chunk sizes (bytes) to consider; collapsed per
            runtime signature.
        metrics: Optional registry receiving
            ``mccs_autotune_plans_evaluated_total``.
    """

    def __init__(
        self,
        cluster: Cluster,
        *,
        latency: LatencyModel = MCCS_LATENCY,
        channel_options: Sequence[int] = DEFAULT_CHANNEL_OPTIONS,
        chunk_options: Sequence[int] = DEFAULT_CHUNK_OPTIONS,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not channel_options or any(c < 1 for c in channel_options):
            raise ValueError("channel_options must be positive channel counts")
        if not chunk_options or any(c < 1 for c in chunk_options):
            raise ValueError("chunk_options must be positive byte counts")
        self.cluster = cluster
        self.latency = latency
        self.channel_options = tuple(channel_options)
        self.chunk_options = tuple(sorted(chunk_options))
        self.metrics = metrics
        self.plans_evaluated = 0

    # ------------------------------------------------------------------
    # candidate space
    # ------------------------------------------------------------------
    def ring_orders(
        self, gpus: Sequence[GpuDevice]
    ) -> Dict[str, Tuple[int, ...]]:
        """Named ring orders worth considering for this placement."""
        world = len(gpus)
        orders: Dict[str, Tuple[int, ...]] = {
            "rank_order": tuple(range(world))
        }
        locality = tuple(locality_ring_order(self.cluster, gpus))
        if locality not in orders.values():
            orders["locality"] = locality
        return orders

    def algorithms(self, kind: Collective, world: int) -> List[str]:
        """Registry algorithms that do not just alias the ring here."""
        from ..core.algorithms import registered_algorithms

        names = ["ring"]
        if kind is Collective.ALL_REDUCE:
            for name in registered_algorithms():
                if name == "ring":
                    continue
                if name == "halving_doubling" and not is_power_of_two(world):
                    continue
                names.append(name)
        return names

    def candidates(
        self, kind: Collective, gpus: Sequence[GpuDevice]
    ) -> List[Candidate]:
        out: List[Candidate] = []
        for algorithm in self.algorithms(kind, len(gpus)):
            for channels in self.channel_options:
                for label, ring in sorted(self.ring_orders(gpus).items()):
                    for chunk_bytes in self.chunk_options:
                        out.append(
                            Candidate(
                                algorithm=algorithm,
                                channels=channels,
                                ring=ring,
                                ring_label=label,
                                chunk_bytes=chunk_bytes,
                            )
                        )
        return out

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def plan(
        self, kind: Collective, out_bytes: int, gpus: Sequence[GpuDevice]
    ) -> List[ScoredCandidate]:
        """Score every candidate, collapse chunking per runtime signature,
        and return the survivors cheapest-first."""
        best_by_signature: Dict[Signature, ScoredCandidate] = {}
        evaluated = 0
        for candidate in self.candidates(kind, gpus):
            predicted = estimate_seconds(
                self.cluster,
                gpus,
                kind,
                out_bytes,
                algorithm=candidate.algorithm,
                channels=candidate.channels,
                ring=candidate.ring,
                chunk_bytes=candidate.chunk_bytes,
                latency=self.latency,
            )
            evaluated += 1
            signature = candidate.signature()
            current = best_by_signature.get(signature)
            if current is None or predicted < current.predicted_seconds:
                best_by_signature[signature] = ScoredCandidate(
                    candidate=candidate, predicted_seconds=predicted
                )
        self.plans_evaluated += evaluated
        if self.metrics is not None:
            self.metrics.counter(
                "mccs_autotune_plans_evaluated_total",
                "Candidate strategies scored by the autotune planner.",
            ).inc(evaluated, kind=kind.value)
        return sorted(
            best_by_signature.values(), key=lambda s: s.predicted_seconds
        )

    def best(
        self, kind: Collective, out_bytes: int, gpus: Sequence[GpuDevice]
    ) -> ScoredCandidate:
        return self.plan(kind, out_bytes, gpus)[0]

    # ------------------------------------------------------------------
    # offline table construction
    # ------------------------------------------------------------------
    def build_table(
        self,
        gpus: Sequence[GpuDevice],
        *,
        kinds: Sequence[Collective],
        sizes: Sequence[int],
        table: Optional[TuningTable] = None,
    ) -> TuningTable:
        """Plan a (kind, size) sweep into a persistable tuning table.

        Sizes landing in the same power-of-two bucket are planned once at
        the largest representative.
        """
        if table is None:
            table = TuningTable()
        fingerprint = topology_fingerprint(self.cluster, gpus)
        world = len(gpus)
        for kind in kinds:
            representatives: Dict[int, int] = {}
            for size in sizes:
                bucket = size_bucket(size)
                representatives[bucket] = max(
                    representatives.get(bucket, 0), size
                )
            for bucket, size in sorted(representatives.items()):
                ranked = self.plan(kind, size, gpus)
                winner = ranked[0]
                table.put(
                    TableKey(
                        kind=kind.value,
                        world=world,
                        bucket=bucket,
                        fingerprint=fingerprint,
                    ),
                    TableEntry(
                        algorithm=winner.candidate.algorithm,
                        channels=winner.candidate.channels,
                        ring=winner.candidate.ring,
                        chunk_bytes=winner.candidate.chunk_bytes,
                        predicted_seconds=winner.predicted_seconds,
                        candidates_evaluated=len(ranked),
                    ),
                )
        return table
