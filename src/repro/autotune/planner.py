"""The offline strategy planner.

Enumerates candidate :class:`~repro.core.strategy.CollectiveStrategy`
configurations — algorithm family (every registry entry, including
``halving_doubling``), channel count, ring order, chunk size — and scores
each with :func:`repro.autotune.cost.estimate_seconds`.  The output is
either a ranked candidate list (seeding the online bandit's arms) or a
persistable :class:`~repro.autotune.table.TuningTable` covering a sweep of
(kind, size) cells.

Chunk size is a *planning* dimension: the fluid simulator's runtime cost
does not depend on it, so candidates sharing a runtime signature
``(algorithm, channels, ring)`` are collapsed to their cheapest chunking
before ranking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.gpu import GpuDevice
from ..cluster.specs import Cluster
from ..collectives.cost_model import LatencyModel, MCCS_LATENCY
from ..collectives.halving_doubling import is_power_of_two
from ..collectives.types import Collective
from ..core.policies.ring_order import locality_ring_order
from ..netsim.units import KB
from ..telemetry.metrics import MetricsRegistry
from .cost import estimate_seconds, topology_fingerprint
from .table import TableEntry, TableKey, TuningTable, size_bucket

#: Runtime-distinguishable part of a candidate: what a reconfiguration can
#: actually install and what a measurement can be attributed to.
Signature = Tuple[str, int, Tuple[int, ...]]

DEFAULT_CHANNEL_OPTIONS = (1, 2)
DEFAULT_CHUNK_OPTIONS = (64 * KB, 256 * KB, 1024 * KB)


def canonical_ring(order: Sequence[int]) -> Tuple[int, ...]:
    """Canonical representative of a ring under rotation and reflection.

    A ring order is a *cycle*: rotations produce the identical set of
    directed edges, and the reflection reverses every edge — which costs
    the same on duplex symmetric links.  Candidates whose orders share a
    canonical form are duplicates the planner should score only once.
    """
    order = tuple(order)
    if not order:
        return order

    def rotated(o: Tuple[int, ...]) -> Tuple[int, ...]:
        pivot = o.index(min(o))
        return o[pivot:] + o[:pivot]

    return min(rotated(order), rotated(tuple(reversed(order))))


@dataclass(frozen=True)
class Candidate:
    """One point of the planner's search space."""

    algorithm: str
    channels: int
    ring: Tuple[int, ...]
    ring_label: str
    chunk_bytes: int

    def signature(self) -> Signature:
        return (self.algorithm, self.channels, self.ring)


@dataclass(frozen=True)
class ScoredCandidate:
    candidate: Candidate
    predicted_seconds: float


class StrategyPlanner:
    """Enumerates and scores candidate strategies for one cluster.

    Args:
        cluster: Fabric + placement the estimates are computed against.
        latency: Fixed-overhead model (must match the deployment's so
            predicted and measured times are on the same scale).
        channel_options: Channel counts to consider.
        chunk_options: Chunk sizes (bytes) to consider; collapsed per
            runtime signature.
        metrics: Optional registry receiving
            ``mccs_autotune_plans_evaluated_total``.
    """

    def __init__(
        self,
        cluster: Cluster,
        *,
        latency: LatencyModel = MCCS_LATENCY,
        channel_options: Sequence[int] = DEFAULT_CHANNEL_OPTIONS,
        chunk_options: Sequence[int] = DEFAULT_CHUNK_OPTIONS,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not channel_options or any(c < 1 for c in channel_options):
            raise ValueError("channel_options must be positive channel counts")
        if not chunk_options or any(c < 1 for c in chunk_options):
            raise ValueError("chunk_options must be positive byte counts")
        self.cluster = cluster
        self.latency = latency
        self.channel_options = tuple(channel_options)
        self.chunk_options = tuple(sorted(chunk_options))
        self.metrics = metrics
        self.plans_evaluated = 0

    # ------------------------------------------------------------------
    # candidate space
    # ------------------------------------------------------------------
    def ring_orders(
        self, gpus: Sequence[GpuDevice]
    ) -> Dict[str, Tuple[int, ...]]:
        """Named ring orders worth considering for this placement.

        Orders that are rotations or reflections of an already-kept one
        are dropped (see :func:`canonical_ring`): they produce the same
        (or the edge-reversed) traffic on every link, so scoring them
        would only duplicate candidates.
        """
        world = len(gpus)
        orders: Dict[str, Tuple[int, ...]] = {
            "rank_order": tuple(range(world))
        }
        seen = {canonical_ring(order) for order in orders.values()}
        locality = tuple(locality_ring_order(self.cluster, gpus))
        if canonical_ring(locality) not in seen:
            orders["locality"] = locality
        return orders

    def algorithms(self, kind: Collective, world: int) -> List[str]:
        """Registry algorithms that do not just alias the ring here.

        Synthesized chunk-level programs are excluded: they are offered
        by :meth:`synth_algorithms` only on an exactly matching topology
        fingerprint, with their own fixed channel/ring configuration.
        """
        from ..core.algorithms import get_algorithm, registered_algorithms

        names = ["ring"]
        if kind is Collective.ALL_REDUCE:
            for name in registered_algorithms():
                if name == "ring":
                    continue
                if name == "halving_doubling" and not is_power_of_two(world):
                    continue
                if getattr(get_algorithm(name), "program", None) is not None:
                    continue
                names.append(name)
        return names

    def synth_algorithms(
        self, kind: Collective, gpus: Sequence[GpuDevice]
    ) -> List[str]:
        """Synthesized programs applicable to this exact placement.

        A program qualifies only if it covers (kind, world) *and* was
        synthesized for this placement's topology fingerprint — programs
        registered for other fabrics (or with no fingerprint at all)
        never leak into the plan.
        """
        from ..core.algorithms import get_algorithm, registered_algorithms

        fingerprint = topology_fingerprint(self.cluster, gpus)
        names: List[str] = []
        for name in registered_algorithms():
            algo = get_algorithm(name)
            if getattr(algo, "program", None) is None:
                continue
            if getattr(algo, "fingerprint", None) != fingerprint:
                continue
            if not algo.supports(kind, len(gpus)):
                continue
            names.append(name)
        return names

    def candidates(
        self, kind: Collective, gpus: Sequence[GpuDevice]
    ) -> List[Candidate]:
        from ..core.algorithms import get_algorithm

        out: List[Candidate] = []
        for algorithm in self.algorithms(kind, len(gpus)):
            for channels in self.channel_options:
                for label, ring in sorted(self.ring_orders(gpus).items()):
                    for chunk_bytes in self.chunk_options:
                        out.append(
                            Candidate(
                                algorithm=algorithm,
                                channels=channels,
                                ring=ring,
                                ring_label=label,
                                chunk_bytes=chunk_bytes,
                            )
                        )
        identity = tuple(range(len(gpus)))
        for algorithm in self.synth_algorithms(kind, gpus):
            # A program fixes its own channel assignment and ignores the
            # ring order; only the chunking dimension is swept.
            program = get_algorithm(algorithm).program
            for chunk_bytes in self.chunk_options:
                out.append(
                    Candidate(
                        algorithm=algorithm,
                        channels=program.channels,
                        ring=identity,
                        ring_label="synth",
                        chunk_bytes=chunk_bytes,
                    )
                )
        return out

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def plan(
        self, kind: Collective, out_bytes: int, gpus: Sequence[GpuDevice]
    ) -> List[ScoredCandidate]:
        """Score every candidate, collapse chunking per runtime signature,
        and return the survivors cheapest-first."""
        best_by_signature: Dict[Signature, ScoredCandidate] = {}
        evaluated = 0
        for candidate in self.candidates(kind, gpus):
            predicted = estimate_seconds(
                self.cluster,
                gpus,
                kind,
                out_bytes,
                algorithm=candidate.algorithm,
                channels=candidate.channels,
                ring=candidate.ring,
                chunk_bytes=candidate.chunk_bytes,
                latency=self.latency,
            )
            evaluated += 1
            signature = candidate.signature()
            current = best_by_signature.get(signature)
            if current is None or predicted < current.predicted_seconds:
                best_by_signature[signature] = ScoredCandidate(
                    candidate=candidate, predicted_seconds=predicted
                )
        self.plans_evaluated += evaluated
        if self.metrics is not None:
            self.metrics.counter(
                "mccs_autotune_plans_evaluated_total",
                "Candidate strategies scored by the autotune planner.",
            ).inc(evaluated, kind=kind.value)
        return sorted(
            best_by_signature.values(), key=lambda s: s.predicted_seconds
        )

    def best(
        self, kind: Collective, out_bytes: int, gpus: Sequence[GpuDevice]
    ) -> ScoredCandidate:
        return self.plan(kind, out_bytes, gpus)[0]

    # ------------------------------------------------------------------
    # offline table construction
    # ------------------------------------------------------------------
    def build_table(
        self,
        gpus: Sequence[GpuDevice],
        *,
        kinds: Sequence[Collective],
        sizes: Sequence[int],
        table: Optional[TuningTable] = None,
    ) -> TuningTable:
        """Plan a (kind, size) sweep into a persistable tuning table.

        Sizes landing in the same power-of-two bucket are planned once at
        the largest representative.
        """
        if table is None:
            table = TuningTable()
        fingerprint = topology_fingerprint(self.cluster, gpus)
        world = len(gpus)
        for kind in kinds:
            representatives: Dict[int, int] = {}
            for size in sizes:
                bucket = size_bucket(size)
                representatives[bucket] = max(
                    representatives.get(bucket, 0), size
                )
            for bucket, size in sorted(representatives.items()):
                ranked = self.plan(kind, size, gpus)
                winner = ranked[0]
                table.put(
                    TableKey(
                        kind=kind.value,
                        world=world,
                        bucket=bucket,
                        fingerprint=fingerprint,
                    ),
                    TableEntry(
                        algorithm=winner.candidate.algorithm,
                        channels=winner.candidate.channels,
                        ring=winner.candidate.ring,
                        chunk_bytes=winner.candidate.chunk_bytes,
                        predicted_seconds=winner.predicted_seconds,
                        candidates_evaluated=len(ranked),
                    ),
                )
        return table
