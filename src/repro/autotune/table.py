"""The persistent tuning table produced by the offline planner.

Entries are keyed by ``(collective kind, world size, message-size bucket,
topology fingerprint)`` — everything the best static choice depends on —
and record the winning candidate plus its predicted cost.  Buckets are
power-of-two exponents (sizes in ``(2^(k-1), 2^k]`` share bucket ``k``),
matching the Figure 6 sweep axis.

The table round-trips through JSON (:meth:`TuningTable.save` /
:meth:`TuningTable.load`) so a provider can plan once per fabric and ship
the result; lookups count hits and misses for the ``mccs_autotune_table_*``
metrics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

TABLE_FORMAT_VERSION = 1


def size_bucket(nbytes: int) -> int:
    """Power-of-two bucket index: sizes in ``(2^(k-1), 2^k]`` map to ``k``."""
    if nbytes <= 0:
        raise ValueError("size must be positive")
    return int(nbytes - 1).bit_length()


@dataclass(frozen=True)
class TableKey:
    """Everything the best static strategy choice depends on."""

    kind: str
    world: int
    bucket: int
    fingerprint: str

    def encode(self) -> str:
        return f"{self.kind}|{self.world}|{self.bucket}|{self.fingerprint}"

    @classmethod
    def decode(cls, text: str) -> "TableKey":
        kind, world, bucket, fingerprint = text.split("|", 3)
        return cls(
            kind=kind, world=int(world), bucket=int(bucket),
            fingerprint=fingerprint,
        )


@dataclass(frozen=True)
class TableEntry:
    """The planner's pick for one key."""

    algorithm: str
    channels: int
    ring: Tuple[int, ...]
    chunk_bytes: int
    predicted_seconds: float
    candidates_evaluated: int = 0

    def signature(self) -> Tuple[str, int, Tuple[int, ...]]:
        """The runtime-distinguishable part (what a bandit arm is keyed by)."""
        return (self.algorithm, self.channels, tuple(self.ring))


class TuningTable:
    """Key -> best-candidate map with hit/miss accounting."""

    def __init__(self) -> None:
        self._entries: Dict[TableKey, TableEntry] = {}
        self.hits = 0
        self.misses = 0

    def put(self, key: TableKey, entry: TableEntry) -> None:
        self._entries[key] = entry

    def get(self, key: TableKey) -> Optional[TableEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def lookup(
        self, kind: str, world: int, nbytes: int, fingerprint: str
    ) -> Optional[TableEntry]:
        return self.get(
            TableKey(
                kind=kind, world=world, bucket=size_bucket(nbytes),
                fingerprint=fingerprint,
            )
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[TableKey, TableEntry]]:
        return iter(sorted(self._entries.items(), key=lambda kv: kv[0].encode()))

    def stats(self) -> Dict[str, int]:
        return {"size": len(self._entries), "hits": self.hits, "misses": self.misses}

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        return {
            "format_version": TABLE_FORMAT_VERSION,
            "entries": {
                key.encode(): {
                    "algorithm": entry.algorithm,
                    "channels": entry.channels,
                    "ring": list(entry.ring),
                    "chunk_bytes": entry.chunk_bytes,
                    "predicted_seconds": entry.predicted_seconds,
                    "candidates_evaluated": entry.candidates_evaluated,
                }
                for key, entry in self._entries.items()
            },
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "TuningTable":
        version = data.get("format_version")
        if version != TABLE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported tuning-table format {version!r}; "
                f"expected {TABLE_FORMAT_VERSION}"
            )
        table = cls()
        for encoded, raw in data.get("entries", {}).items():
            table.put(
                TableKey.decode(encoded),
                TableEntry(
                    algorithm=str(raw["algorithm"]),
                    channels=int(raw["channels"]),
                    ring=tuple(int(r) for r in raw["ring"]),
                    chunk_bytes=int(raw["chunk_bytes"]),
                    predicted_seconds=float(raw["predicted_seconds"]),
                    candidates_evaluated=int(raw.get("candidates_evaluated", 0)),
                ),
            )
        return table

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)

    @classmethod
    def load(cls, path: str) -> "TuningTable":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(json.load(fh))
