"""Topology-aware cost estimation for candidate collective strategies.

The planner scores candidates with the classic alpha-beta model *plus*
bottleneck terms derived from the actual placement: per-NIC egress/ingress
load, per-rack spine-uplink load (where the testbed's 2:1 oversubscription
bites), and the intra-host channel.  Traffic comes from the same per-pair
byte models the fluid simulator is validated against
(:func:`~repro.collectives.ring.edge_traffic`,
:func:`~repro.collectives.tree.double_tree_allreduce_traffic`,
:func:`~repro.collectives.halving_doubling.halving_doubling_traffic`), so
the estimates rank candidates the way the network actually treats them.

Chunking enters through the pipelined closed form

    ``T_net = (steps + chunks - 1) * (T_bottleneck / (steps * chunks)
              + per_step)``

which reduces to ``T_bottleneck + steps * per_step`` for one chunk and
exposes a genuine optimum: more chunks overlap the pipeline stages but pay
``per_step`` each.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple

from ..cluster.gpu import GpuDevice
from ..cluster.specs import Cluster
from ..collectives.cost_model import LatencyModel, MCCS_LATENCY
from ..collectives.halving_doubling import halving_doubling_traffic, is_power_of_two
from ..collectives.ring import edge_traffic
from ..collectives.tree import double_binary_trees, double_tree_allreduce_traffic
from ..collectives.types import Collective
from ..netsim.units import gBps, gbps

#: Bytes per directed (src_rank, dst_rank) pair for one collective.
PairTraffic = Dict[Tuple[int, int], float]


def topology_fingerprint(cluster: Cluster, gpus: Sequence[GpuDevice]) -> str:
    """Stable key describing fabric + placement *shape* (not identity).

    Two placements with the same per-host GPU counts on the same fabric
    share tuning-table entries; moving a job to differently-shaped hosts
    (or another fabric) invalidates them.
    """
    spec = cluster.fabric.spec
    per_host: Dict[int, int] = {}
    for gpu in gpus:
        per_host[gpu.host_id] = per_host.get(gpu.host_id, 0) + 1
    shape = "x".join(str(per_host[h]) for h in sorted(per_host))
    racks = {cluster.rack_of(gpu) for gpu in gpus}
    key = (
        f"{spec.name}/spines{spec.num_spines}@{spec.fabric_gbps:g}g"
        f"/nic{spec.nic_gbps:g}g/hosts{len(per_host)}[{shape}]"
        f"/racks{len(racks)}"
    )
    region_of_host = getattr(spec, "region_of_host", None)
    if callable(region_of_host):
        # WAN-crossing placements tune completely differently from
        # single-region ones; keep their table entries apart.
        regions = {region_of_host(h) for h in per_host}
        key += f"/regions{len(regions)}"
    return key


def _synth_program(algorithm: str, kind: Collective, world: int):
    """The chunk-level program behind ``algorithm``, when it covers
    (kind, world); ``None`` for built-ins and out-of-scope programs."""
    from ..core.algorithms import get_algorithm
    from ..netsim.errors import MccsError

    try:
        algo = get_algorithm(algorithm)
    except MccsError:
        return None
    program = getattr(algo, "program", None)
    if program is None:
        return None
    supports = getattr(algo, "supports", None)
    if callable(supports) and not supports(kind, world):
        return None
    return program


def pair_traffic(
    algorithm: str,
    kind: Collective,
    order: Sequence[int],
    out_bytes: float,
) -> PairTraffic:
    """Per-(src_rank, dst_rank) bytes of one collective under ``algorithm``.

    Mirrors the fallback rules of the registered algorithms: ``tree`` and
    ``halving_doubling`` only specialize AllReduce (the latter only on
    power-of-two worlds); everything else is the ring.  Synthesized
    chunk-level programs report their own exact per-pair bytes (they
    ignore the ring order — a program is built against a concrete
    rank->location mapping).
    """
    order = list(order)
    world = len(order)
    program = _synth_program(algorithm, kind, world)
    if program is not None:
        return program.pair_traffic(out_bytes)
    if algorithm == "tree" and kind is Collective.ALL_REDUCE:
        return double_tree_allreduce_traffic(
            double_binary_trees(order), out_bytes
        )
    if (
        algorithm == "halving_doubling"
        and kind is Collective.ALL_REDUCE
        and is_power_of_two(world)
    ):
        return halving_doubling_traffic(order, out_bytes)
    per_edge = edge_traffic(kind, out_bytes, world, 0)
    traffic: PairTraffic = {}
    for pos in range(world):
        nbytes = per_edge[pos]
        if nbytes <= 0:
            continue
        pair = (order[pos], order[(pos + 1) % world])
        traffic[pair] = traffic.get(pair, 0.0) + nbytes
    return traffic


def bottleneck_seconds(
    cluster: Cluster,
    gpus: Sequence[GpuDevice],
    traffic: PairTraffic,
    channels: int,
) -> float:
    """Serial transfer time of the most loaded resource on the placement.

    Considers per-NIC egress and ingress (bytes split over the channel->NIC
    rotation), per-rack spine uplink/downlink aggregate (``num_spines *
    fabric_gbps`` per leaf — the oversubscription bottleneck), the
    intra-host channel for co-located pairs, and — on geo-distributed
    fabrics — the directed WAN link between each region pair, whose
    bandwidth is typically the scarcest resource of all.
    """
    spec = cluster.fabric.spec
    nic_bw = gbps(spec.nic_gbps)
    uplink_bw = spec.num_spines * gbps(spec.fabric_gbps)
    local_bw = gBps(spec.local_gBps)
    region_of_host = getattr(spec, "region_of_host", None)
    wan_bw = (
        gbps(spec.wan_gbps)
        if callable(region_of_host) and getattr(spec, "wan_gbps", 0.0)
        else None
    )

    nic_out: Dict[str, float] = {}
    nic_in: Dict[str, float] = {}
    rack_out: Dict[int, float] = {}
    rack_in: Dict[int, float] = {}
    wan: Dict[Tuple[int, int], float] = {}
    local: Dict[int, float] = {}
    for (src_rank, dst_rank), nbytes in traffic.items():
        src, dst = gpus[src_rank], gpus[dst_rank]
        if src.host_id == dst.host_id:
            local[src.host_id] = local.get(src.host_id, 0.0) + nbytes
            continue
        per_channel = nbytes / channels
        for channel in range(channels):
            src_nic = cluster.nic_of_channel(src, channel)
            dst_nic = cluster.nic_of_channel(dst, channel)
            nic_out[src_nic] = nic_out.get(src_nic, 0.0) + per_channel
            nic_in[dst_nic] = nic_in.get(dst_nic, 0.0) + per_channel
        src_rack, dst_rack = cluster.rack_of(src), cluster.rack_of(dst)
        if src_rack != dst_rack:
            rack_out[src_rack] = rack_out.get(src_rack, 0.0) + nbytes
            rack_in[dst_rack] = rack_in.get(dst_rack, 0.0) + nbytes
        if wan_bw is not None:
            src_region = region_of_host(src.host_id)
            dst_region = region_of_host(dst.host_id)
            if src_region != dst_region:
                pair = (src_region, dst_region)
                wan[pair] = wan.get(pair, 0.0) + nbytes

    worst = 0.0
    for load in list(nic_out.values()) + list(nic_in.values()):
        worst = max(worst, load / nic_bw)
    for load in list(rack_out.values()) + list(rack_in.values()):
        worst = max(worst, load / uplink_bw)
    if wan_bw is not None:
        for load in wan.values():
            worst = max(worst, load / wan_bw)
    for load in local.values():
        worst = max(worst, load / local_bw)
    return worst


def pipelined_seconds(
    bottleneck: float, steps: int, chunks: int, per_step: float
) -> float:
    """The pipelined closed form (see module docstring)."""
    if steps <= 0:
        return 0.0
    if chunks < 1:
        raise ValueError("chunks must be >= 1")
    return (steps + chunks - 1) * (
        bottleneck / (steps * chunks) + per_step
    )


def wan_rtt_seconds(
    cluster: Cluster,
    gpus: Sequence[GpuDevice],
    kind: Collective,
    *,
    algorithm: str,
    steps: int,
    traffic: PairTraffic,
) -> float:
    """RTT-weighted penalty for WAN-crossing pipeline steps.

    The fluid flow model carries capacities, not propagation delays, so
    the planner accounts for WAN RTT here: each pipeline step containing
    at least one inter-region transfer pays one ``wan_rtt``.  Chunk-level
    programs report their exact WAN-crossing step count; for the
    built-ins (rings, trees, butterflies) every step of a region-crossing
    schedule synchronizes through the WAN, so all ``steps`` pay.  This is
    what makes a flat locality ring lose to a two-level hierarchical
    schedule on a ``multi_region`` fingerprint even at small sizes.
    """
    spec = cluster.fabric.spec
    region_of_host = getattr(spec, "region_of_host", None)
    wan_rtt = float(getattr(spec, "wan_rtt", 0.0))
    if not callable(region_of_host) or wan_rtt <= 0.0:
        return 0.0
    regions = [region_of_host(gpu.host_id) for gpu in gpus]
    program = _synth_program(algorithm, kind, len(gpus))
    if program is not None:
        return wan_rtt * program.wan_step_count(lambda rank: regions[rank])
    crossing = any(
        regions[src] != regions[dst] for (src, dst) in traffic
    )
    return wan_rtt * steps if crossing else 0.0


def estimate_seconds(
    cluster: Cluster,
    gpus: Sequence[GpuDevice],
    kind: Collective,
    out_bytes: int,
    *,
    algorithm: str,
    channels: int,
    ring: Sequence[int],
    chunk_bytes: int,
    latency: LatencyModel = MCCS_LATENCY,
) -> float:
    """Predicted completion time of one collective under a candidate."""
    from ..core.algorithms import get_algorithm

    algo = get_algorithm(algorithm)
    steps = algo.steps(kind, len(gpus))
    traffic = pair_traffic(algorithm, kind, ring, out_bytes)
    bottleneck = bottleneck_seconds(cluster, gpus, traffic, channels)
    per_step = latency.per_step
    protocol = getattr(algo, "protocol", None)
    if protocol is not None:
        # NCCL-style protocol point: LL/LL128 trade wire efficiency
        # (inflating the bandwidth term) for cheaper per-step syncs.
        bottleneck /= protocol.bandwidth_efficiency
        per_step *= protocol.latency_factor
    chunks = max(1, math.ceil(out_bytes / max(1, chunk_bytes)))
    return (
        latency.base
        + latency.datapath
        + pipelined_seconds(bottleneck, steps, chunks, per_step)
        + wan_rtt_seconds(
            cluster,
            gpus,
            kind,
            algorithm=algorithm,
            steps=steps,
            traffic=traffic,
        )
    )
