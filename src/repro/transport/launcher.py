"""Turning collective launches into network flows.

This is the shared machinery beneath NCCL's transport agent and MCCS's
transport engines: given a collective (kind, size), a schedule (ring or
tree), the GPU of each rank and an established connection table, it injects
one fluid flow per (edge, channel) into the simulator and reports
completion when the slowest flow finishes — a collective is only done when
every participant is done.

Fixed overheads (kernel launch, rendezvous, and for MCCS the shim->service
IPC hop) are modelled by delaying flow injection by the latency model's
per-collective cost, which is what produces the small-message penalty of
Figure 6.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from ..cluster.gpu import GpuDevice
from ..cluster.specs import Cluster
from ..collectives.cost_model import LatencyModel
from ..collectives.programs import FlowProgramCache, ProgramTransfer
from ..collectives.ring import RingSchedule, edge_traffic, steps_for
from ..collectives.tree import (
    TreeSchedule,
    double_tree_allreduce_traffic,
    tree_steps,
)
from ..collectives.types import Collective
from ..netsim.errors import CollectiveTimeoutError, FaultError
from ..netsim.flows import Flow
from .connections import ConnectionTable

_launch_counter = itertools.count()


class FlowGate(Protocol):
    """Hook letting a QoS policy gate a job's traffic (see TS, §4.3)."""

    def register(self, flow: Flow) -> None:  # pragma: no cover - protocol
        ...


@dataclass
class LaunchHandle:
    """One in-flight (or completed) collective launch."""

    launch_id: int
    kind: Collective
    out_bytes: int
    job_id: Optional[str]
    issue_time: float
    flows: List[Flow] = field(default_factory=list)
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    tags: Dict[str, object] = field(default_factory=dict)
    #: First failure that killed this launch (flow failure or deadline);
    #: the remaining flows were cancelled when it was set.
    error: Optional[BaseException] = None

    @property
    def completed(self) -> bool:
        return self.end_time is not None and self.error is None

    @property
    def failed(self) -> bool:
        return self.error is not None

    def duration(self) -> float:
        """Wall time from issue to completion (includes fixed latency)."""
        if self.end_time is None:
            raise ValueError("collective still in flight")
        return self.end_time - self.issue_time


class FlowTransport:
    """Injects collective traffic into the fluid simulator."""

    def __init__(
        self,
        cluster: Cluster,
        latency: LatencyModel,
        gate: Optional[FlowGate] = None,
    ) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.latency = latency
        self.gate = gate
        self.launches: List[LaunchHandle] = []
        # Rank-level transfer programs: identical (kind, size, schedule,
        # channels, root) launches — the common traffic-loop case — reuse
        # the compiled list and only rebind GPUs.
        self.program_cache = FlowProgramCache()

    # ------------------------------------------------------------------
    def launch_ring(
        self,
        *,
        kind: Collective,
        out_bytes: int,
        schedule: RingSchedule,
        gpus_by_rank: Sequence[GpuDevice],
        table: ConnectionTable,
        channels: int,
        job_id: Optional[str] = None,
        root: int = 0,
        on_complete: Optional[Callable[[LaunchHandle, float], None]] = None,
        tags: Optional[Dict[str, object]] = None,
        on_fail: Optional[Callable[[LaunchHandle, float, BaseException], None]] = None,
        deadline: Optional[float] = None,
    ) -> LaunchHandle:
        """Issue a ring collective; returns immediately with a handle.

        ``deadline`` (seconds from issue) arms a watchdog: if the launch
        has not finished by then it fails with
        :class:`CollectiveTimeoutError` and its flows are cancelled.
        ``on_fail`` fires when any flow dies or the deadline expires.
        """
        if channels < 1:
            raise ValueError("channels must be >= 1")
        world = schedule.world
        if len(gpus_by_rank) != world:
            raise ValueError("gpus_by_rank must cover every rank")

        def compile_ring() -> Tuple[ProgramTransfer, ...]:
            root_position = schedule.position_of(root)
            per_channel = out_bytes / channels
            per_edge = edge_traffic(kind, per_channel, world, root_position)
            return tuple(
                (schedule.order[pos], schedule.order[(pos + 1) % world], channel, nbytes)
                for channel in range(channels)
                for pos, nbytes in enumerate(per_edge)
                if nbytes > 0
            )

        program = self.program_cache.get(
            ("ring", kind, out_bytes, schedule.order, channels, root),
            compile_ring,
        )
        transfers = [
            (gpus_by_rank[src_rank], gpus_by_rank[dst_rank], channel, nbytes)
            for src_rank, dst_rank, channel, nbytes in program
        ]
        steps = steps_for(kind, world)
        return self._launch(
            kind, out_bytes, transfers, table, steps, job_id, on_complete,
            tags, on_fail=on_fail, deadline=deadline,
        )

    def launch_double_tree(
        self,
        *,
        out_bytes: int,
        trees: Tuple[TreeSchedule, TreeSchedule],
        gpus_by_rank: Sequence[GpuDevice],
        table: ConnectionTable,
        job_id: Optional[str] = None,
        on_complete: Optional[Callable[[LaunchHandle, float], None]] = None,
        tags: Optional[Dict[str, object]] = None,
        on_fail: Optional[Callable[[LaunchHandle, float, BaseException], None]] = None,
        deadline: Optional[float] = None,
    ) -> LaunchHandle:
        """Issue an AllReduce over a double binary tree."""
        world = trees[0].world
        if len(gpus_by_rank) != world:
            raise ValueError("gpus_by_rank must cover every rank")

        def compile_tree() -> Tuple[ProgramTransfer, ...]:
            traffic = double_tree_allreduce_traffic(trees, out_bytes)
            return tuple(
                (src_rank, dst_rank, 0, nbytes)
                for (src_rank, dst_rank), nbytes in sorted(traffic.items())
                if nbytes > 0
            )

        program = self.program_cache.get(
            ("tree", trees, out_bytes), compile_tree
        )
        transfers = [
            (gpus_by_rank[src_rank], gpus_by_rank[dst_rank], channel, nbytes)
            for src_rank, dst_rank, channel, nbytes in program
        ]
        steps = max(tree_steps(t) for t in trees)
        return self._launch(
            Collective.ALL_REDUCE,
            out_bytes,
            transfers,
            table,
            steps,
            job_id,
            on_complete,
            tags,
            on_fail=on_fail,
            deadline=deadline,
        )

    # ------------------------------------------------------------------
    def _launch(
        self,
        kind: Collective,
        out_bytes: int,
        transfers: List[Tuple[GpuDevice, GpuDevice, int, float]],
        table: ConnectionTable,
        steps: int,
        job_id: Optional[str],
        on_complete: Optional[Callable[[LaunchHandle, float], None]],
        tags: Optional[Dict[str, object]],
        on_fail: Optional[Callable[[LaunchHandle, float, BaseException], None]] = None,
        deadline: Optional[float] = None,
    ) -> LaunchHandle:
        handle = LaunchHandle(
            launch_id=next(_launch_counter),
            kind=kind,
            out_bytes=out_bytes,
            job_id=job_id,
            issue_time=self.sim.now,
            tags=dict(tags or {}),
        )
        self.launches.append(handle)
        fixed = self.latency.collective_latency(steps)

        def fail(error: BaseException) -> None:
            """Kill the launch: one failed flow (or a blown deadline)
            fails the whole collective, and the survivors are cancelled
            so the handle settles instead of hanging."""
            if handle.end_time is not None:
                return
            handle.error = error
            handle.end_time = self.sim.now
            for other in handle.flows:
                self.sim.cancel_flow(other)
            if on_fail is not None:
                on_fail(handle, handle.end_time, error)

        def inject() -> None:
            if handle.end_time is not None:
                return  # deadline expired before injection
            handle.start_time = self.sim.now
            try:
                for src, dst, channel, nbytes in transfers:
                    conn = table.connection(src, dst, channel)
                    flow = self.sim.add_flow(
                        nbytes,
                        conn.path,
                        job_id=job_id,
                        tags={
                            "launch": handle.launch_id,
                            "kind": kind.value,
                            "channel": channel,
                            **handle.tags,
                        },
                        on_fail=lambda _f, _t, err: fail(err),
                    )
                    handle.flows.append(flow)
                    if self.gate is not None:
                        self.gate.register(flow)
            except FaultError as exc:
                fail(exc)
                return

            def finished(now: float) -> None:
                if handle.end_time is not None:
                    return
                handle.end_time = now
                if on_complete is not None:
                    on_complete(handle, now)

            self.sim.when_all(handle.flows, finished)

        if deadline is not None:
            self.sim.call_in(
                deadline,
                lambda: fail(
                    CollectiveTimeoutError(
                        f"launch {handle.launch_id} ({kind.value}, "
                        f"{out_bytes:g}B) exceeded its {deadline:g}s deadline"
                    )
                ),
            )
        if fixed > 0:
            self.sim.call_in(fixed, inject)
        else:
            inject()
        return handle
