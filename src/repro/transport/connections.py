"""Peer-to-peer connections underlying collective traffic.

Both NCCL's "transport agent" and MCCS's "transport engine" establish
point-to-point connections between communicating GPU pairs when a
communicator (or a new collective strategy) is set up, and then push every
collective's traffic over those connections.  Two properties of real
deployments matter for the evaluation and are modelled here:

* **Path selection happens at connection-establishment time.**  Under
  ECMP the switch hashes each connection's 5-tuple once; the same
  connection keeps colliding (or keeps not colliding) for its entire
  lifetime.  This is why re-rolling the ring (or re-establishing
  connections during reconfiguration) can change performance at all.
* **Connections are channel-indexed.**  NCCL "instantiates multiple
  TCP/RDMA connections between nodes ... even though the connections may
  be routed via the same (shared) physical path" (§1); channel ``c`` uses
  NIC ``c mod nics_per_host`` on both ends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..cluster.gpu import GpuDevice
from ..cluster.specs import Cluster
from ..netsim.fabric import local_link_id
from ..netsim.routing import ConnectionKey, PathSelector

EdgeId = Tuple[int, int, int]
"""(src gpu global id, dst gpu global id, channel)"""


@dataclass
class Connection:
    """An established point-to-point connection.

    Attributes:
        src, dst: The endpoint GPUs.
        channel: Channel index; selects which NIC pair is used.
        path: Concrete link-id path the connection is pinned to.
        key: The (src endpoint, dst endpoint, discriminator) triple shown
            to the path selector; policies address connections by it.
        intra_host: Whether the connection rides the intra-host channel.
    """

    src: GpuDevice
    dst: GpuDevice
    channel: int
    path: List[str]
    key: ConnectionKey
    intra_host: bool

    @property
    def edge_id(self) -> EdgeId:
        return (self.src.global_id, self.dst.global_id, self.channel)


def connection_key(
    cluster: Cluster,
    src: GpuDevice,
    dst: GpuDevice,
    channel: int,
    discriminator: str,
) -> ConnectionKey:
    """The selector-visible key of an inter-host connection."""
    src_nic = cluster.nic_of_channel(src, channel)
    dst_nic = cluster.nic_of_channel(dst, channel)
    return (src_nic, dst_nic, f"{discriminator}/ch{channel}")


class ConnectionTable:
    """Connections of one communicator configuration.

    The table is (re)built whenever the strategy changes: creating it is
    the analogue of establishing RDMA queue pairs, and
    :meth:`ConnectionTable.teardown` of closing them, which is exactly what
    the MCCS proxy engine does during a reconfiguration (§4.2: "close all
    existing peer-to-peer connections for the communicator and clean up
    corresponding resources").
    """

    def __init__(self, cluster: Cluster, discriminator: str) -> None:
        self.cluster = cluster
        self.discriminator = discriminator
        self._connections: Dict[EdgeId, Connection] = {}
        self.torn_down = False
        # Routing generation the pinned paths were resolved under.  When
        # the topology's epoch moves (link restored / bandwidth resized),
        # the pins are stale: a connection hashed away from a then-down
        # link would otherwise never use it again.
        self._routing_epoch = cluster.topology.routing_epoch

    def establish(
        self,
        edges: Iterable[Tuple[GpuDevice, GpuDevice]],
        channels: int,
        selector: PathSelector,
    ) -> None:
        """Create connections for each (src, dst) pair on every channel."""
        if self.torn_down:
            raise RuntimeError("connection table already torn down")
        for src, dst in edges:
            for channel in range(channels):
                self._establish_one(src, dst, channel, selector)

    def establish_edge(
        self,
        src: GpuDevice,
        dst: GpuDevice,
        channel: int,
        selector: PathSelector,
    ) -> Connection:
        if self.torn_down:
            raise RuntimeError("connection table already torn down")
        return self._establish_one(src, dst, channel, selector)

    def _establish_one(
        self, src: GpuDevice, dst: GpuDevice, channel: int, selector: PathSelector
    ) -> Connection:
        epoch = self.cluster.topology.routing_epoch
        if epoch != self._routing_epoch:
            # Re-resolve every pin: the usable path set widened since the
            # connections were established (restored or resized link).
            self._connections.clear()
            self._routing_epoch = epoch
        edge = (src.global_id, dst.global_id, channel)
        if edge in self._connections:
            return self._connections[edge]
        if src.host_id == dst.host_id:
            conn = Connection(
                src=src,
                dst=dst,
                channel=channel,
                path=[local_link_id(src.host_id)],
                key=("", "", f"{self.discriminator}/local"),
                intra_host=True,
            )
        else:
            key = connection_key(self.cluster, src, dst, channel, self.discriminator)
            path = selector.select(self.cluster.topology, key)
            conn = Connection(
                src=src,
                dst=dst,
                channel=channel,
                path=list(path),
                key=key,
                intra_host=False,
            )
        self._connections[edge] = conn
        return conn

    # ------------------------------------------------------------------
    def connection(self, src: GpuDevice, dst: GpuDevice, channel: int) -> Connection:
        edge = (src.global_id, dst.global_id, channel)
        try:
            return self._connections[edge]
        except KeyError:
            raise KeyError(f"no connection for edge {edge}") from None

    def connections(self) -> List[Connection]:
        return list(self._connections.values())

    def inter_host_connections(self) -> List[Connection]:
        return [c for c in self._connections.values() if not c.intra_host]

    def teardown(self) -> None:
        """Close every connection (idempotent)."""
        self._connections.clear()
        self.torn_down = True

    def __len__(self) -> int:
        return len(self._connections)
