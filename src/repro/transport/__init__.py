"""Shared transport substrate: connections and flow launching.

NCCL's transport agent (:mod:`repro.baselines.nccl`) and MCCS's transport
engines (:mod:`repro.core.transport`) are both built on these pieces.
"""

from .connections import Connection, ConnectionTable, EdgeId, connection_key
from .launcher import FlowGate, FlowTransport, LaunchHandle

__all__ = [
    "Connection",
    "ConnectionTable",
    "EdgeId",
    "FlowGate",
    "FlowTransport",
    "LaunchHandle",
    "connection_key",
]
