"""MCCS: Managed Collective Communication as a Service — the core system.

The paper's contribution: a provider-controlled collective communication
service with an NCCL-like tenant interface.  Applications use
:class:`~repro.core.shim.MccsClient` (the shim library); the provider uses
:class:`~repro.core.deployment.MccsDeployment` (the management surface)
and the policies under :mod:`repro.core.policies`.
"""

from .communicator import CollectiveInstance, ServiceCommunicator, VersionedDataPath
from .deployment import MccsDeployment
from .elastic import ElasticCoordinator, ElasticPolicy, MembershipChange
from .memory import ManagedAllocation, MemoryManager
from .messages import (
    AllocateRequest,
    AllocateResponse,
    BufferRef,
    CollectiveRequest,
    CollectiveResponse,
    CommandQueue,
    CreateCommunicatorRequest,
    CreateCommunicatorResponse,
    DestroyCommunicatorRequest,
    FreeRequest,
)
from .proxy import ProxyEngine
from .reconfig import (
    DEFAULT_CONTROL_RING_LATENCY,
    ControlBarrier,
    ReconfigManager,
    ReconfigSession,
)
from .recovery import (
    HeartbeatMonitor,
    RecoveryManager,
    RecoveryPolicy,
    fault_kind,
)
from .service import FrontendEngine, MccsService
from .shim import ClientCollective, MccsBuffer, MccsClient, MccsCommunicator
from .strategy import CollectiveStrategy, default_strategy
from .tracing import DEFAULT_TRACE_CAPACITY, CommTrace, TraceRecord, TraceStore
from .transport import TrafficGateManager, WindowSchedule

__all__ = [
    "AllocateRequest",
    "AllocateResponse",
    "BufferRef",
    "ClientCollective",
    "CollectiveInstance",
    "CollectiveRequest",
    "CollectiveResponse",
    "CollectiveStrategy",
    "CommTrace",
    "CommandQueue",
    "ControlBarrier",
    "CreateCommunicatorRequest",
    "CreateCommunicatorResponse",
    "DEFAULT_CONTROL_RING_LATENCY",
    "DEFAULT_TRACE_CAPACITY",
    "DestroyCommunicatorRequest",
    "ElasticCoordinator",
    "ElasticPolicy",
    "FreeRequest",
    "FrontendEngine",
    "HeartbeatMonitor",
    "ManagedAllocation",
    "MccsBuffer",
    "MccsClient",
    "MccsCommunicator",
    "MccsDeployment",
    "MccsService",
    "MembershipChange",
    "MemoryManager",
    "ProxyEngine",
    "ReconfigManager",
    "ReconfigSession",
    "RecoveryManager",
    "RecoveryPolicy",
    "ServiceCommunicator",
    "TraceRecord",
    "TraceStore",
    "TrafficGateManager",
    "VersionedDataPath",
    "WindowSchedule",
    "default_strategy",
    "fault_kind",
]
