"""Pluggable collective algorithms for the MCCS proxy engines.

§4.2: the proxy engine "enables the incorporation of various collective
strategies optimized for specific topologies, such as those proposed in
recent research [MSCCL/TACCL/...] or even proprietary strategies developed
in-house by the provider".

This module is that extension point.  An *algorithm* maps one rank's view
of a collective onto the transfers that rank must perform; the registry
resolves :attr:`CollectiveStrategy.algorithm` names to implementations,
and providers can :func:`register_algorithm` their own without touching
the service.

Built-ins:

* ``"ring"`` — the NCCL-style ring schedules (the prototype's focus);
* ``"tree"`` — double-binary-tree AllReduce (ring for other kinds), the
  extension §5 calls straightforward;
* ``"halving_doubling"`` — recursive halving-doubling (butterfly)
  AllReduce for power-of-two worlds (ring otherwise), the latency-optimal
  arm the :mod:`repro.autotune` planner can promote for small messages.

An algorithm also supplies the matching data plane so collectives keep
moving real bytes correctly whichever strategy the provider picks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..collectives.halving_doubling import (
    HalvingDoublingDataPlane,
    halving_doubling_traffic,
    hd_steps,
    is_power_of_two,
)
from ..collectives.ring import RingDataPlane, edge_traffic, steps_for
from ..collectives.tree import (
    DoubleTreeDataPlane,
    double_binary_trees,
    tree_steps,
)
from ..collectives.types import Collective, ReduceOp
from ..netsim.errors import MccsError


@dataclass(frozen=True)
class RankTransfer:
    """One outgoing transfer of one rank within a collective."""

    dst_rank: int
    nbytes: float
    channel: int


@dataclass(frozen=True)
class AlgorithmContext:
    """Everything an algorithm may consult to plan a rank's transfers."""

    kind: Collective
    out_bytes: int
    world: int
    rank: int
    root: int
    ring_order: Sequence[int]
    channels: int


class CollectiveAlgorithm:
    """Interface implemented by every pluggable algorithm."""

    name = "abstract"

    def rank_transfers(self, ctx: AlgorithmContext) -> List[RankTransfer]:
        """Outgoing transfers of ``ctx.rank`` (one flow each)."""
        raise NotImplementedError

    def steps(self, kind: Collective, world: int) -> int:
        """Pipeline hops, for the fixed-latency model."""
        raise NotImplementedError

    def run_data(
        self,
        ctx: AlgorithmContext,
        inputs: Sequence[np.ndarray],
        op: ReduceOp,
    ) -> List[np.ndarray]:
        """Execute the collective on real buffers (data plane)."""
        raise NotImplementedError


class RingAlgorithm(CollectiveAlgorithm):
    """The default: NCCL-style rings for every collective kind."""

    name = "ring"

    def rank_transfers(self, ctx: AlgorithmContext) -> List[RankTransfer]:
        order = list(ctx.ring_order)
        pos = order.index(ctx.rank)
        root_pos = order.index(ctx.root)
        per_channel = ctx.out_bytes / ctx.channels
        per_edge = edge_traffic(ctx.kind, per_channel, ctx.world, root_pos)
        nbytes = per_edge[pos]
        if nbytes <= 0:
            return []
        dst = order[(pos + 1) % ctx.world]
        return [
            RankTransfer(dst_rank=dst, nbytes=nbytes, channel=c)
            for c in range(ctx.channels)
        ]

    def steps(self, kind: Collective, world: int) -> int:
        return steps_for(kind, world)

    def run_data(self, ctx, inputs, op):
        from ..collectives.ring import RingSchedule

        plane = RingDataPlane(RingSchedule(tuple(ctx.ring_order)))
        return plane.run(ctx.kind, list(inputs), op=op, root=ctx.root)


class DoubleTreeAlgorithm(CollectiveAlgorithm):
    """Double binary trees for AllReduce; other kinds fall back to rings.

    The trees are derived from the strategy's ring order, so a locality-
    optimized order also produces locality-friendly trees.
    """

    name = "tree"

    def __init__(self) -> None:
        self._ring = RingAlgorithm()

    def _trees(self, ctx: AlgorithmContext):
        return double_binary_trees(list(ctx.ring_order))

    def rank_transfers(self, ctx: AlgorithmContext) -> List[RankTransfer]:
        if ctx.kind is not Collective.ALL_REDUCE:
            return self._ring.rank_transfers(ctx)
        transfers: List[RankTransfer] = []
        half = ctx.out_bytes / 2.0
        per_channel = half / ctx.channels
        for tree in self._trees(ctx):
            parent = tree.parent[ctx.rank]
            peers = list(tree.children(ctx.rank))
            if parent != -1:
                peers.append(parent)
            for peer in peers:
                for channel in range(ctx.channels):
                    transfers.append(
                        RankTransfer(dst_rank=peer, nbytes=per_channel, channel=channel)
                    )
        return transfers

    def steps(self, kind: Collective, world: int) -> int:
        if kind is not Collective.ALL_REDUCE:
            return self._ring.steps(kind, world)
        trees = double_binary_trees(range(world))
        return max(tree_steps(t) for t in trees)

    def run_data(self, ctx, inputs, op):
        if ctx.kind is not Collective.ALL_REDUCE:
            return self._ring.run_data(ctx, inputs, op)
        plane = DoubleTreeDataPlane(self._trees(ctx))
        return plane.all_reduce(list(inputs), op)


class HalvingDoublingAlgorithm(CollectiveAlgorithm):
    """Recursive halving-doubling AllReduce (butterfly exchange).

    Applies only to AllReduce on power-of-two worlds; everything else
    falls back to rings, mirroring :class:`DoubleTreeAlgorithm`.  The
    strategy's ring order assigns ranks to butterfly positions, so a
    locality order keeps the small-mask (frequent, small-payload)
    exchanges on nearby ranks.
    """

    name = "halving_doubling"

    def __init__(self) -> None:
        self._ring = RingAlgorithm()

    def _applies(self, ctx_kind: Collective, world: int) -> bool:
        return ctx_kind is Collective.ALL_REDUCE and is_power_of_two(world)

    def rank_transfers(self, ctx: AlgorithmContext) -> List[RankTransfer]:
        if not self._applies(ctx.kind, ctx.world):
            return self._ring.rank_transfers(ctx)
        order = list(ctx.ring_order)
        v = order.index(ctx.rank)
        n = ctx.world
        transfers: List[RankTransfer] = []
        mask = n >> 1
        while mask:
            # S*m/n bytes to the mask-partner in each of the two phases.
            nbytes = 2.0 * ctx.out_bytes * mask / n / ctx.channels
            peer = order[v ^ mask]
            for channel in range(ctx.channels):
                transfers.append(
                    RankTransfer(dst_rank=peer, nbytes=nbytes, channel=channel)
                )
            mask >>= 1
        return transfers

    def steps(self, kind: Collective, world: int) -> int:
        if not self._applies(kind, world):
            return self._ring.steps(kind, world)
        return hd_steps(world)

    def run_data(self, ctx, inputs, op):
        if not self._applies(ctx.kind, ctx.world):
            return self._ring.run_data(ctx, inputs, op)
        plane = HalvingDoublingDataPlane(ctx.ring_order)
        return plane.all_reduce(list(inputs), op)


_REGISTRY: Dict[str, CollectiveAlgorithm] = {}


def register_algorithm(algorithm: CollectiveAlgorithm, *, replace: bool = False) -> None:
    """Install a (possibly proprietary) algorithm under its name."""
    if algorithm.name in _REGISTRY and not replace:
        raise MccsError(f"algorithm {algorithm.name!r} already registered")
    _REGISTRY[algorithm.name] = algorithm


def unregister_algorithm(name: str) -> None:
    """Remove a registered algorithm (e.g. a retired synthesized program).

    The built-ins are load-bearing for every deployment and cannot be
    removed.
    """
    if name in _BUILTINS:
        raise MccsError(f"cannot unregister built-in algorithm {name!r}")
    if name not in _REGISTRY:
        raise MccsError(f"algorithm {name!r} is not registered")
    del _REGISTRY[name]


def get_algorithm(name: str) -> CollectiveAlgorithm:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise MccsError(
            f"unknown collective algorithm {name!r}; "
            f"registered: {sorted(_REGISTRY)}"
        ) from None


def registered_algorithms() -> List[str]:
    return sorted(_REGISTRY)


register_algorithm(RingAlgorithm())
register_algorithm(DoubleTreeAlgorithm())
register_algorithm(HalvingDoublingAlgorithm())

_BUILTINS = frozenset(_REGISTRY)
