"""The dynamic reconfiguration barrier protocol (§4.2, Figure 4).

Reconfiguration must not require "expensive synchronization operations on
the fast path": in the absence of a request there is zero overhead, and
when a request is issued the proxies agree on a cut of the collective
sequence via an AllGather on the per-communicator control ring:

1. the provider's command reaches each rank's proxy after an arbitrary
   delay;
2. on receipt, a proxy queues subsequent collectives and contributes the
   sequence number of the last collective it *launched*;
3. when every proxy has contributed, the AllGather completes (modelled as
   one control-ring round-trip latency) and everyone learns
   ``max_seq = max(contributions)``;
4. each proxy launches queued collectives with ``seq <= max_seq`` under
   the old configuration, applies the update (tearing down and
   re-establishing peer connections), and resumes with the new one.

:class:`ReconfigSession` owns one such request's lifecycle;
:class:`ControlBarrier` is the AllGather.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Set

from ..netsim.engine import FlowSimulator
from ..netsim.errors import ReconfigurationError
from ..telemetry.spans import EVENT_BARRIER_RESOLVED, EVENT_RANK_APPLIED
from .communicator import ServiceCommunicator
from .strategy import CollectiveStrategy

if TYPE_CHECKING:  # pragma: no cover
    from ..telemetry.hub import TelemetryHub
    from .proxy import ProxyEngine

_session_counter = itertools.count()

#: One AllGather round on the TCP/IP control ring.  The paper reports
#: sub-millisecond schedule computation and "rather small" reconfiguration
#: overhead; a control round-trip in the 100 us range matches a
#: host-crossing TCP exchange.
DEFAULT_CONTROL_RING_LATENCY = 100e-6


class ControlBarrier:
    """AllGather of launched-sequence numbers over the control ring."""

    def __init__(
        self,
        sim: FlowSimulator,
        world: int,
        latency: float,
        on_resolve: Callable[[int], None],
    ) -> None:
        self.sim = sim
        self.world = world
        self.latency = latency
        self._on_resolve = on_resolve
        self.contributions: Dict[int, int] = {}
        self.resolved = False
        self.max_seq: Optional[int] = None

    def contribute(self, rank: int, launched_seq: int) -> None:
        if self.resolved:
            raise ReconfigurationError("late contribution to resolved barrier")
        if rank in self.contributions:
            raise ReconfigurationError(f"rank {rank} contributed twice")
        self.contributions[rank] = launched_seq
        if len(self.contributions) == self.world:
            self.max_seq = max(self.contributions.values())
            self.sim.call_in(self.latency, self._resolve)

    def _resolve(self) -> None:
        self.resolved = True
        assert self.max_seq is not None
        self._on_resolve(self.max_seq)


class ReconfigSession:
    """One reconfiguration request's lifecycle across all rank proxies."""

    def __init__(
        self,
        comm: ServiceCommunicator,
        new_strategy: CollectiveStrategy,
        proxies: Sequence["ProxyEngine"],
        *,
        barrier_enabled: bool = True,
        control_latency: float = DEFAULT_CONTROL_RING_LATENCY,
        barrier_timeout: Optional[float] = None,
        on_done: Optional[Callable[["ReconfigSession"], None]] = None,
        on_failed: Optional[Callable[["ReconfigSession"], None]] = None,
        telemetry: Optional["TelemetryHub"] = None,
    ) -> None:
        if new_strategy.version <= comm.strategy.version:
            raise ReconfigurationError(
                "new strategy version must exceed the current one "
                f"({new_strategy.version} <= {comm.strategy.version})"
            )
        self.session_id = next(_session_counter)
        self.comm = comm
        self.new_strategy = new_strategy
        self.proxies = list(proxies)
        self.barrier_enabled = barrier_enabled
        self.issue_time = comm.sim.now
        self.resolve_time: Optional[float] = None
        self.done_time: Optional[float] = None
        self._applied: Set[int] = set()
        self._on_done = on_done
        self._on_failed = on_failed
        self.barrier = ControlBarrier(
            comm.sim, comm.world, control_latency, self._barrier_resolved
        )
        self.max_seq: Optional[int] = None
        self.barrier_timeout = barrier_timeout
        self.failed = False
        self.error: Optional[ReconfigurationError] = None
        if barrier_enabled and barrier_timeout is not None:
            if barrier_timeout <= 0:
                raise ReconfigurationError("barrier timeout must be positive")
            comm.sim.call_in(barrier_timeout, self._check_timeout)
        self.telemetry = telemetry
        self.span = None
        self._barrier_span = None
        if telemetry is not None:
            attrs = {"app": comm.app_id, "comm": f"comm{comm.comm_id}"}
            self.span = telemetry.spans.begin(
                f"reconfig comm{comm.comm_id} "
                f"v{comm.strategy.version}->v{new_strategy.version}",
                self.issue_time,
                category="reconfig",
                session=self.session_id,
                barrier_enabled=barrier_enabled,
                **attrs,
            )
            if barrier_enabled:
                # The Figure 4 stall: command issue to AllGather resolution.
                self._barrier_span = telemetry.spans.begin(
                    "barrier", self.issue_time, category="reconfig",
                    parent=self.span, **attrs,
                )
            telemetry.events.log(
                self.issue_time,
                "reconfig_issued",
                f"comm{comm.comm_id} -> v{new_strategy.version}",
                comm=comm.comm_id,
                version=new_strategy.version,
                barrier=barrier_enabled,
            )
            telemetry.metrics.counter(
                "mccs_reconfigs_total",
                "Reconfiguration commands issued, by communicator.",
            ).inc(comm=f"comm{comm.comm_id}")

    # ------------------------------------------------------------------
    def deliver(self, rank: int, delay: float) -> None:
        """Schedule delivery of the request to ``rank``'s proxy."""

        def arrive() -> None:
            if self.failed:
                return  # delivered after the barrier timed out: drop it
            self.proxies[rank].receive_reconfig(rank, self)

        self.comm.sim.call_in(delay, arrive)

    def contribute(self, rank: int, launched_seq: int) -> None:
        if self.failed:
            return
        self.barrier.contribute(rank, launched_seq)

    def _check_timeout(self) -> None:
        """Fail the session if the AllGather has not resolved in time.

        Every rank that never contributed (dead proxy, lost delivery) is
        named in the error; proxies that *did* stall behind the barrier
        are released under their old strategy so the communicator does not
        hang.  With an ``on_failed`` handler (failure recovery) the error
        is delivered there; without one it is raised, which propagates out
        of :meth:`FlowSimulator.run`.
        """
        if self.failed or self.done or self.barrier.resolved:
            return
        missing = sorted(
            rank for rank in range(self.comm.world)
            if rank not in self.barrier.contributions
        )
        self.failed = True
        self.error = ReconfigurationError(
            f"reconfiguration barrier for comm {self.comm.comm_id} timed out "
            f"after {self.barrier_timeout:g}s waiting for rank(s) "
            f"{missing or '(AllGather latency)'}"
        )
        now = self.comm.sim.now
        for rank, proxy in enumerate(self.proxies):
            proxy.abort_reconfig(rank, self)
        if self._barrier_span is not None and not self._barrier_span.finished:
            self._barrier_span.finish(now)
        if self.span is not None and not self.span.finished:
            self.span.mark("barrier_timeout", now, missing=missing)
            self.span.finish(now)
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "mccs_reconfig_timeouts_total",
                "Reconfiguration barriers abandoned on timeout.",
            ).inc(comm=f"comm{self.comm.comm_id}")
            self.telemetry.events.log(
                now, "reconfig_timeout", str(self.error),
                comm=self.comm.comm_id, missing=missing,
            )
        if self._on_failed is not None:
            self._on_failed(self)
        else:
            raise self.error

    def _barrier_resolved(self, max_seq: int) -> None:
        if self.failed:
            return
        self.max_seq = max_seq
        self.resolve_time = self.comm.sim.now
        if self.span is not None:
            self.span.mark(
                EVENT_BARRIER_RESOLVED, self.resolve_time, max_seq=max_seq
            )
        if self._barrier_span is not None:
            self._barrier_span.finish(self.resolve_time)
        if self.telemetry is not None:
            self.telemetry.metrics.histogram(
                "mccs_barrier_stall_seconds",
                "Reconfiguration barrier stall (issue to AllGather resolve).",
            ).observe(self.resolve_time - self.issue_time)
            if self.telemetry.causal is not None:
                self.telemetry.causal.annotate_comm(
                    f"comm{self.comm.comm_id}",
                    self.resolve_time,
                    "barrier_resolved",
                    max_seq=max_seq,
                    version=self.new_strategy.version,
                )
        # All proxies learn the cut; the communicator adopts the new
        # strategy version so freshly retired connection tables know what
        # "current" means.
        self.comm.commit_strategy(self.new_strategy)
        for rank, proxy in enumerate(self.proxies):
            proxy.barrier_resolved(rank, self, max_seq)

    def mark_applied(self, rank: int) -> None:
        if rank in self._applied:
            raise ReconfigurationError(f"rank {rank} applied update twice")
        self._applied.add(rank)
        if not self.barrier_enabled:
            # broken-protocol mode: commit on first application so that
            # launches under the new version find the strategy registered
            self.comm.commit_strategy(self.new_strategy)
        if self.span is not None:
            self.span.mark(EVENT_RANK_APPLIED, self.comm.sim.now, rank=rank)
        if len(self._applied) == self.comm.world:
            self.done_time = self.comm.sim.now
            if self.span is not None:
                self.span.finish(self.done_time)
            if self.telemetry is not None:
                self.telemetry.metrics.histogram(
                    "mccs_reconfig_duration_seconds",
                    "Reconfiguration issue-to-applied-everywhere time.",
                ).observe(self.done_time - self.issue_time)
                self.telemetry.events.log(
                    self.done_time,
                    "reconfig_done",
                    f"comm{self.comm.comm_id} at v{self.new_strategy.version}",
                    comm=self.comm.comm_id,
                    version=self.new_strategy.version,
                    duration=self.done_time - self.issue_time,
                )
            if self._on_done is not None:
                self._on_done(self)

    @property
    def done(self) -> bool:
        return self.done_time is not None


class ReconfigManager:
    """Issues reconfiguration commands on behalf of the provider.

    This is the command interface "made available to the provider (not the
    applications)" (§4.2); the centralized controller calls it with the
    outputs of its policies.
    """

    def __init__(
        self,
        sim: FlowSimulator,
        proxies_of: Callable[[ServiceCommunicator], List["ProxyEngine"]],
        telemetry: Optional["TelemetryHub"] = None,
    ) -> None:
        self._sim = sim
        self._proxies_of = proxies_of
        self._telemetry = telemetry
        self._active: Dict[int, ReconfigSession] = {}
        self.sessions: List[ReconfigSession] = []

    def reconfigure(
        self,
        comm: ServiceCommunicator,
        new_strategy: CollectiveStrategy,
        *,
        delays: Optional[Sequence[float]] = None,
        barrier_enabled: bool = True,
        control_latency: float = DEFAULT_CONTROL_RING_LATENCY,
        barrier_timeout: Optional[float] = None,
        on_done: Optional[Callable[[ReconfigSession], None]] = None,
        on_failed: Optional[Callable[[ReconfigSession], None]] = None,
    ) -> ReconfigSession:
        """Send a reconfiguration request to every rank's proxy.

        Args:
            comm: Target communicator.
            new_strategy: The next strategy (its version must be newer).
            delays: Per-rank delivery delays modelling "arbitrary network
                and processing delays"; defaults to immediate delivery.
            barrier_enabled: Disable only to demonstrate the Figure 4
                hazard; production code always leaves this True.
            control_latency: One AllGather round on the control ring.
            barrier_timeout: Give up on the barrier after this long and
                fail the session with a :class:`ReconfigurationError`
                naming the ranks that never contributed.  ``None`` waits
                forever (the pre-fault-tolerance behaviour).
            on_done: Callback once every rank applied the update.
            on_failed: Callback on barrier timeout; without one the
                timeout error is raised out of the simulation loop.
        """
        if comm.comm_id in self._active and not self._active[comm.comm_id].done:
            raise ReconfigurationError(
                f"communicator {comm.comm_id} already reconfiguring"
            )
        proxies = self._proxies_of(comm)
        if len(proxies) != comm.world:
            raise ReconfigurationError("need one proxy per rank")

        def finished(session: ReconfigSession) -> None:
            self._active.pop(comm.comm_id, None)
            if on_done is not None:
                on_done(session)

        def timed_out(session: ReconfigSession) -> None:
            self._active.pop(comm.comm_id, None)
            if on_failed is not None:
                on_failed(session)
            else:
                assert session.error is not None
                raise session.error

        session = ReconfigSession(
            comm,
            new_strategy,
            proxies,
            barrier_enabled=barrier_enabled,
            control_latency=control_latency,
            barrier_timeout=barrier_timeout,
            on_done=finished,
            on_failed=timed_out,
            telemetry=self._telemetry,
        )
        self._active[comm.comm_id] = session
        self.sessions.append(session)
        if delays is None:
            delays = [0.0] * comm.world
        if len(delays) != comm.world:
            raise ReconfigurationError("need one delivery delay per rank")
        for rank, delay in enumerate(delays):
            session.deliver(rank, delay)
        return session
