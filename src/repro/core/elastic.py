"""Elastic membership: live grow/shrink of communicators.

Geo-distributed training jobs on a multi-tenant WAN fabric do not keep a
fixed rank set: spot capacity in a remote region comes and goes, and the
provider must let a communicator *shrink* (a rank leaves gracefully) or
*grow* (a joiner is admitted) without tearing the job down.  The
:class:`ElasticCoordinator` implements both on top of the same Figure 4
reconfiguration barrier that strategy changes use, as a small state
machine per membership operation:

``DRAIN``
    Push a barrier reconfiguration through the communicator.  The barrier
    AllGathers every rank's launch cursor, picks the cut sequence, and
    lets stragglers catch up under the old strategy — after it resolves,
    no rank will ever launch a pre-cut collective again.  A busy barrier
    (another session in flight, e.g. an autotuner retune) is retried on
    the simulation clock.

``QUIESCE``
    Wait for the in-flight collectives to finish draining their flows.
    Rank renumbering while traffic is live would corrupt the rank→GPU
    mapping of running instances, so the cutover refuses to proceed until
    :attr:`~repro.core.communicator.ServiceCommunicator.active_instances`
    is empty.

``CUTOVER``
    Journal a write-ahead ``membership_change`` record, unregister every
    old rank's proxy engine, install the new rank set and a fresh
    strategy for the new world size
    (:meth:`~repro.core.communicator.ServiceCommunicator.apply_membership`
    bumps the membership epoch), re-register the surviving and joining
    proxies with their launch cursors at the communicator's frontier, and
    notify failure recovery and the autotuner.  Survivors keep their
    relative rank order; joiners are appended.

Joiners go through a handshake first: admission control vets the
tenant (:class:`~repro.core.admission.AdmissionController`), and a
staging buffer is allocated on each joiner's service — the same
write-ahead ``alloc`` path tenant buffers use, so crash/restart replay
reconstructs them.  The buffers are freed if the rank later leaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from ..cluster.gpu import GpuDevice
from ..netsim.errors import (
    CommunicatorError,
    MccsError,
    MembershipChangeError,
)
from .communicator import ServiceCommunicator
from .strategy import default_strategy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .deployment import MccsDeployment

#: Minimum world size a shrink may leave behind (collectives need peers).
MIN_WORLD = 2


@dataclass(frozen=True)
class ElasticPolicy:
    """Knobs of the elastic coordinator.

    Attributes:
        drain_timeout: Barrier timeout handed to the drain
            reconfiguration; a drain whose barrier times out is retried.
        retry_delay: Simulated seconds between drain attempts when the
            barrier is busy or timed out.
        max_drain_attempts: Attempts before the operation fails terminally
            with :class:`~repro.errors.MembershipChangeError`.
        staging_bytes: Size of the per-joiner staging buffer allocated
            during the join handshake.
    """

    drain_timeout: Optional[float] = 0.5
    retry_delay: float = 0.01
    max_drain_attempts: int = 25
    staging_bytes: int = 1 << 16


@dataclass
class MembershipChange:
    """One grow/shrink operation, from request to commit (or failure)."""

    comm_id: int
    app_id: str
    #: ``"rank_join"`` or ``"rank_leave"``.
    kind: str
    started: float
    world_before: int
    #: Global GPU ids leaving (shrink) / joining (grow).
    left: List[int] = field(default_factory=list)
    joined: List[int] = field(default_factory=list)
    #: Filled at commit time.
    committed: Optional[float] = None
    world_after: Optional[int] = None
    epoch: Optional[int] = None
    error: Optional[BaseException] = None
    #: Internal state: ``drain`` -> ``quiesce`` -> ``done``/``failed``.
    state: str = "drain"
    attempts: int = 0

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed")


class ElasticCoordinator:
    """Deployment-wide coordinator for live membership changes.

    One operation per communicator may be in flight at a time; a second
    request while one is active raises
    :class:`~repro.errors.MembershipChangeError` synchronously.
    """

    def __init__(
        self,
        deployment: "MccsDeployment",
        policy: Optional[ElasticPolicy] = None,
    ) -> None:
        self.deployment = deployment
        self.sim = deployment.sim
        self.policy = policy if policy is not None else ElasticPolicy()
        self.telemetry = deployment.telemetry()
        self._inflight: Dict[int, "_Operation"] = {}
        #: Every finished operation, in commit/failure order (audits).
        self.history: List[MembershipChange] = []
        #: Staging buffers allocated for joiners, freed when they leave.
        self._staging: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def grow(
        self,
        comm_id: int,
        joiners: Sequence[GpuDevice],
        *,
        on_done: Optional[Callable[[MembershipChange], None]] = None,
        on_failed: Optional[Callable[[MembershipChange], None]] = None,
    ) -> MembershipChange:
        """Admit ``joiners`` into the communicator (elastic grow).

        The joiner handshake — admission check and staging-buffer
        allocation — happens synchronously; the drain/quiesce/cutover
        sequence then runs on the simulation clock and reports through
        ``on_done``/``on_failed``.
        """
        comm = self._checked_comm(comm_id)
        joiners = list(joiners)
        if not joiners:
            raise MembershipChangeError("grow needs at least one joiner")
        members = {gpu.global_id for gpu in comm.gpus}
        seen: set = set()
        for gpu in joiners:
            if gpu.global_id in members:
                raise MembershipChangeError(
                    f"GPU {gpu.global_id} is already a member of "
                    f"communicator {comm_id}"
                )
            if gpu.global_id in seen:
                raise MembershipChangeError(
                    f"GPU {gpu.global_id} listed twice in the join request"
                )
            seen.add(gpu.global_id)
            host = self.deployment.cluster.hosts[gpu.host_id]
            if not host.alive:
                raise MembershipChangeError(
                    f"joiner GPU {gpu.global_id} is on crashed host {gpu.host_id}"
                )
            self.deployment.service_of_gpu(gpu).check_alive()
        # Joiner handshake: admission vets the tenant, then each joiner
        # gets a staging buffer through the journaled alloc path.
        if self.deployment.admission is not None:
            self.deployment.admission.admit(comm.app_id)
        for gpu in joiners:
            response = self.deployment.service_of_gpu(gpu).allocate(
                comm.app_id, gpu.global_id, self.policy.staging_bytes
            )
            self._staging[(comm.comm_id, gpu.global_id)] = response.buffer_id
        record = MembershipChange(
            comm_id=comm.comm_id,
            app_id=comm.app_id,
            kind="rank_join",
            started=self.sim.now,
            world_before=comm.world,
            joined=[gpu.global_id for gpu in joiners],
        )
        op = _Operation(record, comm, joiners=joiners,
                        on_done=on_done, on_failed=on_failed)
        self._begin(op)
        return record

    def shrink(
        self,
        comm_id: int,
        ranks: Sequence[int],
        *,
        on_done: Optional[Callable[[MembershipChange], None]] = None,
        on_failed: Optional[Callable[[MembershipChange], None]] = None,
    ) -> MembershipChange:
        """Gracefully remove ``ranks`` from the communicator.

        Survivors are renumbered deterministically: they keep their
        relative order, ranks compact downward.
        """
        comm = self._checked_comm(comm_id)
        leaving = set(ranks)
        if not leaving:
            raise MembershipChangeError("shrink needs at least one rank")
        for rank in leaving:
            if not 0 <= rank < comm.world:
                raise MembershipChangeError(
                    f"rank {rank} out of range for world {comm.world}"
                )
        if comm.world - len(leaving) < MIN_WORLD:
            raise MembershipChangeError(
                f"shrinking communicator {comm_id} by {len(leaving)} rank(s) "
                f"would leave {comm.world - len(leaving)} < {MIN_WORLD}"
            )
        record = MembershipChange(
            comm_id=comm.comm_id,
            app_id=comm.app_id,
            kind="rank_leave",
            started=self.sim.now,
            world_before=comm.world,
            left=[comm.gpus[rank].global_id for rank in sorted(leaving)],
        )
        op = _Operation(record, comm, leaving_ranks=leaving,
                        on_done=on_done, on_failed=on_failed)
        self._begin(op)
        return record

    def inflight(self, comm_id: int) -> Optional[MembershipChange]:
        op = self._inflight.get(comm_id)
        return op.record if op is not None else None

    # ------------------------------------------------------------------
    # chaos entry points (fault injector)
    # ------------------------------------------------------------------
    def chaos_shrink(self, comm_id: Optional[int] = None) -> bool:
        """Deterministic chaos helper: the lowest-id shrinkable
        communicator (or ``comm_id``) loses its highest rank.  Returns
        whether a shrink was started; never raises."""
        comm = self._chaos_pick(comm_id, lambda c: c.world > MIN_WORLD)
        if comm is None:
            return False
        try:
            self.shrink(comm.comm_id, [comm.world - 1])
        except MccsError:
            return False
        return True

    def chaos_grow(self, comm_id: Optional[int] = None) -> bool:
        """Deterministic chaos helper: the lowest-id growable communicator
        (or ``comm_id``) admits the lowest-id spare alive GPU.  Returns
        whether a grow was started; never raises."""
        comm = self._chaos_pick(comm_id, lambda c: True)
        if comm is None:
            return False
        used = {
            gpu.global_id
            for other in self.deployment.communicators()
            for gpu in other.gpus
        }
        spare = None
        for gpu in self.deployment.cluster.gpus:
            if gpu.global_id in used:
                continue
            host = self.deployment.cluster.hosts[gpu.host_id]
            if not host.alive or not self.deployment.service_of_gpu(gpu).alive:
                continue
            spare = gpu
            break
        if spare is None:
            return False
        try:
            self.grow(comm.comm_id, [spare])
        except MccsError:
            return False
        return True

    def _chaos_pick(
        self, comm_id: Optional[int], eligible: Callable[[ServiceCommunicator], bool]
    ) -> Optional[ServiceCommunicator]:
        if comm_id is not None:
            try:
                comm = self.deployment.communicator(comm_id)
            except CommunicatorError:
                return None
            candidates = [comm]
        else:
            candidates = sorted(
                self.deployment.communicators(), key=lambda c: c.comm_id
            )
        for comm in candidates:
            if comm.aborted or comm.destroyed:
                continue
            if comm.comm_id in self._inflight:
                continue
            if eligible(comm):
                return comm
        return None

    # ------------------------------------------------------------------
    # state machine
    # ------------------------------------------------------------------
    def _checked_comm(self, comm_id: int) -> ServiceCommunicator:
        comm = self.deployment.communicator(comm_id)
        if comm.aborted:
            raise MembershipChangeError(
                f"communicator {comm_id} is aborted: {comm.abort_error}"
            )
        if comm_id in self._inflight:
            raise MembershipChangeError(
                f"communicator {comm_id} already has a "
                f"{self._inflight[comm_id].record.kind} in flight"
            )
        return comm

    def _begin(self, op: "_Operation") -> None:
        self._inflight[op.comm.comm_id] = op
        self.telemetry.events.log(
            self.sim.now,
            "membership_started",
            f"comm{op.comm.comm_id} {op.record.kind}: "
            f"left={op.record.left} joined={op.record.joined}",
            comm=op.comm.comm_id,
            app=op.comm.app_id,
        )
        self._drain(op)

    def _drain(self, op: "_Operation") -> None:
        if op.record.finished:
            return
        comm = op.comm
        if comm.aborted or comm.destroyed:
            self._fail(op, MembershipChangeError(
                f"communicator {comm.comm_id} died during drain"
            ))
            return
        op.record.attempts += 1
        if op.record.attempts > self.policy.max_drain_attempts:
            self._fail(op, MembershipChangeError(
                f"drain of communicator {comm.comm_id} failed after "
                f"{self.policy.max_drain_attempts} attempts"
            ))
            return
        try:
            self.deployment.reconfigure(
                comm.comm_id,
                routes={},
                barrier_enabled=True,
                barrier_timeout=self.policy.drain_timeout,
                on_done=lambda session, op=op: self._quiesce(op),
                on_failed=lambda session, op=op: self._retry(op),
            )
        except MccsError:
            # Barrier busy (concurrent retune/recovery session) or the
            # communicator went away between checks: retry on the clock.
            self._retry(op)

    def _retry(self, op: "_Operation") -> None:
        if op.record.finished:
            return
        self.sim.call_in(self.policy.retry_delay, lambda: self._drain(op))

    def _quiesce(self, op: "_Operation") -> None:
        if op.record.finished:
            return
        op.record.state = "quiesce"
        comm = op.comm
        if not comm.active_instances:
            self._cutover(op)
            return

        def on_finished(instance, op=op) -> None:
            if op.record.finished or op.record.state != "quiesce":
                return
            if op.comm.aborted or op.comm.destroyed:
                self._fail(op, MembershipChangeError(
                    f"communicator {op.comm.comm_id} died during quiesce"
                ))
                return
            if not op.comm.active_instances:
                self._cutover(op)

        comm.add_completion_listener(on_finished)

    def _cutover(self, op: "_Operation") -> None:
        comm = op.comm
        deployment = self.deployment
        if comm.aborted or comm.destroyed:
            self._fail(op, MembershipChangeError(
                f"communicator {comm.comm_id} died before cutover"
            ))
            return
        old_gpus = list(comm.gpus)
        if op.record.kind == "rank_join":
            new_gpus = old_gpus + list(op.joiners)
        else:
            new_gpus = [
                gpu for rank, gpu in enumerate(old_gpus)
                if rank not in op.leaving_ranks
            ]
        # Write-ahead: the membership record lands before any live-state
        # mutation, so a crash mid-cutover replays to the new rank set.
        deployment.journal.append(
            self.sim.now,
            "membership_change",
            app=comm.app_id,
            comm_id=comm.comm_id,
            epoch=comm.membership_epoch + 1,
            kind=op.record.kind,
            gpus=[gpu.global_id for gpu in new_gpus],
            left=list(op.record.left),
            joined=list(op.record.joined),
        )
        for rank, gpu in enumerate(old_gpus):
            service = deployment.service_of_gpu(gpu)
            if not service.alive:
                continue
            try:
                service.proxy_for(gpu.global_id).unregister(comm, rank)
            except MccsError:
                pass  # proxy already gone (service restarted mid-drain)
        new_strategy = replace(
            default_strategy(len(new_gpus), comm.strategy.channels),
            version=comm.strategy.version + 1,
        )
        comm.apply_membership(new_gpus, new_strategy)
        for rank, gpu in enumerate(comm.gpus):
            proxy = deployment.service_of_gpu(gpu).proxy_for(gpu.global_id)
            proxy.register(comm, rank)
            proxy.state(comm.comm_id, rank).launched_seq = comm.launch_frontier()
        # Leavers hand their staging buffers back.
        for global_id in op.record.left:
            buffer_id = self._staging.pop((comm.comm_id, global_id), None)
            if buffer_id is not None:
                gpu = deployment.cluster.gpu(global_id)
                service = deployment.service_of_gpu(gpu)
                if service.alive:
                    service.free(comm.app_id, buffer_id)
        op.record.state = "done"
        op.record.committed = self.sim.now
        op.record.world_after = comm.world
        op.record.epoch = comm.membership_epoch
        self._inflight.pop(comm.comm_id, None)
        self.history.append(op.record)
        if deployment.recovery is not None:
            deployment.recovery.membership_changed(comm, op.record.kind)
        if deployment.autotuner is not None:
            deployment.autotuner.membership_changed(comm)
        self.telemetry.metrics.counter(
            "mccs_membership_changes_total",
            "Committed elastic membership changes, by app and kind.",
        ).inc(app=comm.app_id, kind=op.record.kind)
        self.telemetry.metrics.histogram(
            "mccs_membership_drain_seconds",
            "Drain-to-commit latency of membership changes, by kind.",
        ).observe(op.record.committed - op.record.started, kind=op.record.kind)
        self.telemetry.events.log(
            self.sim.now,
            "membership_committed",
            f"comm{comm.comm_id} {op.record.kind} committed: "
            f"world {op.record.world_before}->{op.record.world_after} "
            f"epoch={comm.membership_epoch}",
            comm=comm.comm_id,
            app=comm.app_id,
        )
        if op.on_done is not None:
            op.on_done(op.record)

    def _fail(self, op: "_Operation", error: BaseException) -> None:
        if op.record.finished:
            return
        op.record.state = "failed"
        op.record.error = error
        self._inflight.pop(op.comm.comm_id, None)
        self.history.append(op.record)
        # A failed grow never reached the cutover: release the joiners'
        # staging buffers so the handshake leaves no residue.
        for global_id in op.record.joined:
            buffer_id = self._staging.pop((op.comm.comm_id, global_id), None)
            if buffer_id is not None:
                gpu = self.deployment.cluster.gpu(global_id)
                service = self.deployment.service_of_gpu(gpu)
                if service.alive:
                    service.free(op.comm.app_id, buffer_id)
        self.telemetry.metrics.counter(
            "mccs_membership_failures_total",
            "Elastic membership changes that failed terminally, by kind.",
        ).inc(app=op.comm.app_id, kind=op.record.kind)
        self.telemetry.events.log(
            self.sim.now,
            "membership_failed",
            f"comm{op.comm.comm_id} {op.record.kind} failed: {error}",
            comm=op.comm.comm_id,
            app=op.comm.app_id,
        )
        if op.on_failed is not None:
            op.on_failed(op.record)


class _Operation:
    """Mutable driver state of one in-flight membership change."""

    __slots__ = ("record", "comm", "joiners", "leaving_ranks",
                 "on_done", "on_failed")

    def __init__(
        self,
        record: MembershipChange,
        comm: ServiceCommunicator,
        *,
        joiners: Optional[List[GpuDevice]] = None,
        leaving_ranks: Optional[set] = None,
        on_done: Optional[Callable[[MembershipChange], None]] = None,
        on_failed: Optional[Callable[[MembershipChange], None]] = None,
    ) -> None:
        self.record = record
        self.comm = comm
        self.joiners = joiners if joiners is not None else []
        self.leaving_ranks = leaving_ranks if leaving_ranks is not None else set()
        self.on_done = on_done
        self.on_failed = on_failed
