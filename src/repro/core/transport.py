"""Transport-engine mechanisms: traffic gating for time-window QoS.

The MCCS transport engine is "responsible for providing the underlying
mechanisms for scheduling flows on network paths" and, for the traffic
scheduling (TS) policy, for "allow[ing] other applications to send traffic
only when the prioritized application is idle" (§4.3, Example 4).

Path pinning is handled by the route-id selectors built into each
communicator's :class:`~repro.core.communicator.VersionedDataPath`; this
module supplies the *when* half: a :class:`WindowSchedule` describing when
an application may transmit, and a :class:`TrafficGateManager` that gates
and releases the application's live flows on the simulator clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from ..netsim.engine import FlowSimulator
from ..netsim.flows import Flow

if TYPE_CHECKING:  # pragma: no cover
    from ..telemetry.hub import TelemetryHub

_EPS = 1e-9


@dataclass(frozen=True)
class WindowSchedule:
    """A periodic transmission window.

    Within each period of length ``period`` starting at phase ``t0``, the
    application may send during ``open_intervals`` (relative offsets).
    The TS policy computes these windows from the prioritized tenant's
    trace: everyone else's windows are the prioritized tenant's idle
    (compute) phases.
    """

    period: float
    open_intervals: Tuple[Tuple[float, float], ...]
    t0: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        last_end = 0.0
        for start, end in self.open_intervals:
            if not 0.0 <= start < end <= self.period + _EPS:
                raise ValueError(f"bad interval ({start}, {end})")
            if start < last_end - _EPS:
                raise ValueError("intervals must be sorted and disjoint")
            last_end = end

    def phase(self, t: float) -> float:
        return (t - self.t0) % self.period

    def is_open(self, t: float) -> bool:
        p = self.phase(t)
        return any(s - _EPS <= p < e - _EPS for s, e in self.open_intervals)

    def next_toggle(self, t: float) -> float:
        """The next absolute time the open/closed state changes."""
        p = self.phase(t)
        boundaries: List[float] = []
        for s, e in self.open_intervals:
            boundaries.extend((s, e))
        for b in boundaries:
            if b > p + _EPS:
                return t + (b - p)
        # wrap to the first boundary of the next period
        first = boundaries[0] if boundaries else self.period
        return t + (self.period - p) + first


def always_open() -> Optional[WindowSchedule]:
    """Placeholder: no schedule means the app may always transmit."""
    return None


class TrafficGateManager:
    """Gates tenant flows according to per-application window schedules.

    The manager is shared by all transport engines of a deployment; each
    communicator registers its flows here at injection time, and policy
    code installs or clears schedules through
    :meth:`TrafficGateManager.set_schedule`.
    """

    def __init__(
        self, sim: FlowSimulator, telemetry: Optional["TelemetryHub"] = None
    ) -> None:
        self._sim = sim
        self._telemetry = telemetry
        self._schedules: Dict[str, WindowSchedule] = {}
        self._live: Dict[str, Set[Flow]] = {}
        self._ticking: Set[str] = set()
        self.gate_transitions = 0

    # -- policy interface -------------------------------------------------
    def set_schedule(self, app_id: str, schedule: Optional[WindowSchedule]) -> None:
        """Install (or clear, with ``None``) an app's transmission windows."""
        if self._telemetry is not None:
            self._telemetry.events.log(
                self._sim.now,
                "traffic_schedule",
                ("cleared" if schedule is None else "installed")
                + f" for {app_id}",
                app=app_id,
                period=None if schedule is None else schedule.period,
            )
        if schedule is None:
            self._schedules.pop(app_id, None)
            for flow in self._flows_of(app_id):
                self._sim.gate_flow(flow, False)
            return
        self._schedules[app_id] = schedule
        self._apply(app_id)
        self._ensure_ticker(app_id)

    def schedule_of(self, app_id: str) -> Optional[WindowSchedule]:
        return self._schedules.get(app_id)

    # -- transport interface ------------------------------------------------
    def register(self, flow: Flow) -> None:
        """Adopt a freshly injected flow; gate it if its app is closed."""
        app_id = flow.job_id or ""
        self._live.setdefault(app_id, set()).add(flow)
        schedule = self._schedules.get(app_id)
        if schedule is not None:
            if not schedule.is_open(self._sim.now):
                self._sim.gate_flow(flow, True)
                self.gate_transitions += 1
            self._ensure_ticker(app_id)

    def gate_for(self, app_id: str):
        """A per-app registration facade matching the FlowGate protocol."""
        manager = self

        class _Gate:
            def register(self, flow: Flow) -> None:
                manager.register(flow)

        return _Gate()

    # -- internals ---------------------------------------------------------
    def _flows_of(self, app_id: str) -> List[Flow]:
        flows = self._live.get(app_id, set())
        # Completed *or cancelled* flows are stale: a cancelled flow never
        # sets ``completed``, so ask the simulator whether it still exists
        # rather than leaking it (and re-gating it) forever.
        stale = {f for f in flows if f.completed or not self._sim.has_flow(f)}
        flows -= stale
        return list(flows)

    def _apply(self, app_id: str) -> None:
        schedule = self._schedules.get(app_id)
        open_now = schedule is None or schedule.is_open(self._sim.now)
        for flow in self._flows_of(app_id):
            if flow.gated == open_now:
                self._sim.gate_flow(flow, not open_now)
                self.gate_transitions += 1

    def _ensure_ticker(self, app_id: str) -> None:
        if app_id in self._ticking:
            return
        self._ticking.add(app_id)
        self._tick(app_id)

    def _tick(self, app_id: str) -> None:
        schedule = self._schedules.get(app_id)
        if schedule is None:
            self._ticking.discard(app_id)
            return
        self._apply(app_id)
        if not self._flows_of(app_id):
            # Nothing live to gate: let the ticker sleep so the simulator
            # can drain; it restarts on the app's next flow registration.
            self._ticking.discard(app_id)
            return
        when = schedule.next_toggle(self._sim.now)
        self._sim.schedule(when, lambda: self._tick(app_id))
