"""Stream/event synchronization bridge between shim and service (§4.1).

CUDA streams cannot be shared across processes, but events can (via IPC
handles).  MCCS therefore bridges the application's streams and the
service's per-communicator stream with *pairs of events*:

* before issuing a collective, the shim records an event on the
  application stream that produced the data; the service's communicator
  stream waits on it, so the communication kernel cannot overtake the
  producer computation;
* the service records a completion event after the communication kernel;
  the shim makes the application stream wait on it, so consumers cannot
  overtake the collective.

**Snapshot semantics.**  CUDA's ``cudaStreamWaitEvent`` waits on the state
captured by the most recent ``cudaEventRecord`` *at call time*; a later
re-record does not disturb an earlier wait.  Our simulated ``WaitEventOp``
instead evaluates when the stream reaches it, so reusing one event object
per stream (as the prototype does) could release a waiter with a stale
firing.  To keep the simulation faithful to CUDA's capture semantics we
materialize each record as a fresh :class:`~repro.cluster.gpu.Event` — one
event object per synchronization point, which is exactly the semantic
object CUDA captures under the hood.
"""

from __future__ import annotations

import itertools
from typing import Tuple

from ..cluster.gpu import Event, Stream
from ..cluster.ipc import IpcEventHandle, IpcRegistry

_sync_counter = itertools.count()


def snapshot_event(stream: Stream, label: str = "snapshot") -> Event:
    """Record a fresh event at the stream's current tail.

    The returned event fires when every operation currently enqueued on
    ``stream`` has executed — the simulation analogue of
    ``cudaEventRecord(event, stream)``.
    """
    event = Event(name=f"{label}#{next(_sync_counter)}")
    stream.record_event(event)
    return event


def export_snapshot(
    stream: Stream, ipc: IpcRegistry, label: str = "snapshot"
) -> Tuple[Event, IpcEventHandle]:
    """Record a snapshot event and export it for the peer process."""
    event = snapshot_event(stream, label)
    return event, ipc.export_event(event)


def bridge_wait(stream: Stream, ipc: IpcRegistry, handle: IpcEventHandle) -> Event:
    """Open a peer's event handle and make ``stream`` wait on it."""
    event = ipc.open_event(handle)
    stream.wait_event(event)
    return event
