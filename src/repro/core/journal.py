"""Write-ahead state journal for the MCCS control plane.

The control plane (services, frontend engines, proxy engines) is an
in-memory object graph; a service crash would strand every tenant whose
buffers and communicators it tracked.  The journal fixes that the way
databases do: every state-mutating control operation — allocate/free,
communicator create/destroy, strategy install, collective issue — appends
one typed, JSON-serializable :class:`JournalRecord` *before* the mutation
is applied.  A crashed engine is then reconstructed by deterministic
replay (:func:`replay_journal`), and the reconstruction is validated
against the live object graph by comparing :class:`ControlPlaneState`
snapshots.

Record schema (``op`` -> payload keys):

======================  ====================================================
``alloc``               app, host, gpu, buffer_id, size, handle_id
``free``                app, host, buffer_id
``create_communicator`` app, comm_id, gpus, strategy
``install_strategy``    comm_id, strategy  (one per committed version)
``collective_issued``   app, comm_id, seq, kind, bytes [, trace]
``membership_change``   app, comm_id, epoch, kind, gpus, left, joined
``destroy_communicator`` app, comm_id
``tenant_register``     tenant, key_hash, quota
``tenant_update``       tenant, key_hash, quota  (full-state replacement)
``tenant_revoke``       tenant
``service_crash``       host, generation   (informational)
``service_restart``     host, generation, replayed  (informational)
``service_upgrade``     host, component, generation  (informational)
======================  ====================================================

Strategy payloads use :func:`strategy_descriptor`: ``{algorithm, ring,
channels, version, routes: [[src, dst, channel, route_id], ...]}``.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..netsim.errors import JournalError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry.hub import TelemetryHub
    from .deployment import MccsDeployment  # noqa: F401
    from .strategy import CollectiveStrategy

#: Ops that mutate replayable state (anything else is informational).
_STATE_OPS = {
    "alloc",
    "free",
    "create_communicator",
    "install_strategy",
    "collective_issued",
    "membership_change",
    "destroy_communicator",
    "tenant_register",
    "tenant_update",
    "tenant_revoke",
}
_INFO_OPS = {"service_crash", "service_restart", "service_upgrade"}


def strategy_descriptor(strategy: "CollectiveStrategy") -> Dict[str, object]:
    """JSON-serializable description of a strategy (journal payload form)."""
    return {
        "algorithm": strategy.algorithm,
        "ring": list(strategy.ring.order),
        "channels": strategy.channels,
        "version": strategy.version,
        "routes": sorted(
            [src, dst, channel, route_id]
            for (src, dst, channel), route_id in strategy.route_map().items()
        ),
    }


@dataclass(frozen=True)
class JournalRecord:
    """One appended control operation."""

    seq: int
    time: float
    op: str
    payload: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "time": self.time,
            "op": self.op,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JournalRecord":
        return cls(
            seq=int(data["seq"]),
            time=float(data["time"]),
            op=str(data["op"]),
            payload=dict(data.get("payload", {})),
        )


class StateJournal:
    """Append-only write-ahead log of control-plane mutations.

    The journal is owned by the :class:`~repro.core.deployment.
    MccsDeployment` — not by any per-host service — so it survives a
    service crash the way a WAL on durable storage would.
    """

    def __init__(self, telemetry: Optional["TelemetryHub"] = None) -> None:
        self._records: List[JournalRecord] = []
        self._seq = itertools.count()
        self.telemetry = telemetry
        self.appends_total = 0
        self.compactions = 0

    def __len__(self) -> int:
        return len(self._records)

    def append(self, time: float, op: str, **payload: object) -> JournalRecord:
        if op not in _STATE_OPS and op not in _INFO_OPS:
            raise JournalError(f"unknown journal op {op!r}")
        record = JournalRecord(
            seq=next(self._seq), time=time, op=op, payload=payload
        )
        # Round-trip through JSON so a non-serializable payload fails at
        # append time (write-ahead means the record must be durable-form).
        try:
            json.dumps(record.payload)
        except TypeError as exc:
            raise JournalError(
                f"journal payload for {op!r} is not JSON-serializable: {exc}"
            ) from None
        self._records.append(record)
        self.appends_total += 1
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "mccs_journal_appends_total",
                "Control-plane operations appended to the state journal.",
            ).inc(op=op)
            self.telemetry.metrics.gauge(
                "mccs_journal_records",
                "Records currently retained in the state journal.",
            ).set(len(self._records))
        return record

    def records(self) -> List[JournalRecord]:
        return list(self._records)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps([record.to_dict() for record in self._records])

    @classmethod
    def from_json(
        cls, text: str, telemetry: Optional["TelemetryHub"] = None
    ) -> "StateJournal":
        journal = cls(telemetry=telemetry)
        records = [JournalRecord.from_dict(item) for item in json.loads(text)]
        journal._records = records
        last = records[-1].seq if records else -1
        journal._seq = itertools.count(last + 1)
        return journal

    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Drop records whose effects are fully superseded.

        Alloc/free pairs of freed buffers and the full history of
        destroyed communicators replay to nothing; dropping them keeps the
        journal bounded over a long-lived deployment.  Returns the number
        of records removed.  Replay of the compacted journal equals replay
        of the original.
        """
        state = replay_journal(self._records)
        freed = {
            rec.payload["buffer_id"]
            for rec in self._records
            if rec.op == "free"
        }
        destroyed = {
            rec.payload["comm_id"]
            for rec in self._records
            if rec.op == "destroy_communicator"
        }
        # Keep the issue frontier of live communicators intact: only the
        # latest collective_issued per live comm matters for next_seq.
        latest_issue: Dict[object, int] = {}
        for rec in self._records:
            if rec.op == "collective_issued":
                latest_issue[rec.payload["comm_id"]] = rec.seq
        # Tenant records: a tenant may be revoked and later re-registered,
        # so only the records after its last revoke matter — and of those,
        # only the register plus the latest full-state update.
        last_revoke: Dict[object, int] = {}
        for rec in self._records:
            if rec.op == "tenant_revoke":
                last_revoke[rec.payload["tenant"]] = rec.seq
        latest_tenant_update: Dict[object, int] = {}
        for rec in self._records:
            if rec.op == "tenant_update" and rec.seq > last_revoke.get(
                rec.payload["tenant"], -1
            ):
                latest_tenant_update[rec.payload["tenant"]] = rec.seq
        live_tenants = set(state.tenants)

        def keep(rec: JournalRecord) -> bool:
            if rec.op in ("alloc", "free"):
                return rec.payload["buffer_id"] not in freed
            if rec.op in (
                "create_communicator",
                "install_strategy",
                "membership_change",
                "destroy_communicator",
            ):
                return rec.payload["comm_id"] not in destroyed
            if rec.op == "collective_issued":
                comm_id = rec.payload["comm_id"]
                if comm_id in destroyed:
                    return False
                return latest_issue.get(comm_id) == rec.seq
            if rec.op == "tenant_register":
                tenant = rec.payload["tenant"]
                return tenant in live_tenants and rec.seq > last_revoke.get(
                    tenant, -1
                )
            if rec.op == "tenant_update":
                tenant = rec.payload["tenant"]
                return (
                    tenant in live_tenants
                    and latest_tenant_update.get(tenant) == rec.seq
                )
            if rec.op == "tenant_revoke":
                return False
            return rec.op in _INFO_OPS

        kept = [rec for rec in self._records if keep(rec)]
        removed = len(self._records) - len(kept)
        self._records = kept
        if replay_journal(kept) != state:  # pragma: no cover - invariant
            raise JournalError("compaction changed replay state")
        self.compactions += 1
        if removed and self.telemetry is not None:
            self.telemetry.metrics.counter(
                "mccs_journal_compacted_total",
                "Journal records dropped by compaction.",
            ).inc(records=removed)
            self.telemetry.metrics.gauge(
                "mccs_journal_records",
                "Records currently retained in the state journal.",
            ).set(len(self._records))
        return removed


@dataclass
class ControlPlaneState:
    """Comparable snapshot of the deployment's control-plane state.

    Two sources produce it — :func:`snapshot_deployment` from the live
    object graph and :func:`replay_journal` purely from the journal — and
    crash/restart validation asserts they are equal.
    """

    #: buffer_id -> {app, host, gpu, size, handle}
    buffers: Dict[int, Dict[str, object]] = field(default_factory=dict)
    #: comm_id -> {app, gpus, version, epoch, next_seq, strategies}
    communicators: Dict[int, Dict[str, object]] = field(default_factory=dict)
    #: tenant_id -> {key_hash, quota} (live gateway accounts)
    tenants: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def diff(self, other: "ControlPlaneState") -> List[str]:
        """Human-readable mismatches (empty when states are equal)."""
        lines: List[str] = []
        if self.buffers != other.buffers:
            mine, theirs = set(self.buffers), set(other.buffers)
            lines.append(
                f"buffer tables differ: only-left={sorted(mine - theirs)} "
                f"only-right={sorted(theirs - mine)} "
                f"changed={[b for b in mine & theirs if self.buffers[b] != other.buffers[b]]}"
            )
        if self.communicators != other.communicators:
            mine, theirs = set(self.communicators), set(other.communicators)
            lines.append(
                f"communicators differ: only-left={sorted(mine - theirs)} "
                f"only-right={sorted(theirs - mine)} "
                f"changed={[c for c in mine & theirs if self.communicators[c] != other.communicators[c]]}"
            )
        if self.tenants != other.tenants:
            mine, theirs = set(self.tenants), set(other.tenants)
            lines.append(
                f"tenant tables differ: only-left={sorted(mine - theirs)} "
                f"only-right={sorted(theirs - mine)} "
                f"changed={[t for t in mine & theirs if self.tenants[t] != other.tenants[t]]}"
            )
        return lines


def replay_journal(records: List[JournalRecord]) -> ControlPlaneState:
    """Reconstruct control-plane state purely from journal records."""
    state = ControlPlaneState()
    for rec in records:
        p = rec.payload
        if rec.op == "alloc":
            state.buffers[p["buffer_id"]] = {
                "app": p["app"],
                "host": p["host"],
                "gpu": p["gpu"],
                "size": p["size"],
                "handle": p["handle_id"],
            }
        elif rec.op == "free":
            if p["buffer_id"] not in state.buffers:
                raise JournalError(
                    f"journal frees unknown buffer {p['buffer_id']}"
                )
            del state.buffers[p["buffer_id"]]
        elif rec.op == "create_communicator":
            strategy = dict(p["strategy"])
            state.communicators[p["comm_id"]] = {
                "app": p["app"],
                "gpus": list(p["gpus"]),
                "version": strategy["version"],
                "epoch": 0,
                "membership_epoch": 0,
                "next_seq": 0,
                "strategies": {strategy["version"]: strategy},
            }
        elif rec.op == "install_strategy":
            comm = state.communicators.get(p["comm_id"])
            if comm is None:
                raise JournalError(
                    f"journal installs strategy on unknown comm {p['comm_id']}"
                )
            strategy = dict(p["strategy"])
            comm["version"] = strategy["version"]
            comm["epoch"] += 1
            comm["strategies"][strategy["version"]] = strategy
        elif rec.op == "collective_issued":
            comm = state.communicators.get(p["comm_id"])
            if comm is None:
                raise JournalError(
                    f"journal issues collective on unknown comm {p['comm_id']}"
                )
            comm["next_seq"] = max(comm["next_seq"], p["seq"] + 1)
        elif rec.op == "membership_change":
            # The rank-set cutover; the strategy for the new world arrives
            # in the subsequent install_strategy record (which bumps the
            # strategy epoch as usual — membership does not double-bump).
            comm = state.communicators.get(p["comm_id"])
            if comm is None:
                raise JournalError(
                    f"journal changes membership of unknown comm {p['comm_id']}"
                )
            comm["gpus"] = list(p["gpus"])
            comm["membership_epoch"] = p["epoch"]
        elif rec.op == "destroy_communicator":
            if p["comm_id"] not in state.communicators:
                raise JournalError(
                    f"journal destroys unknown comm {p['comm_id']}"
                )
            del state.communicators[p["comm_id"]]
        elif rec.op == "tenant_register":
            tenant = str(p["tenant"])
            if tenant in state.tenants:
                raise JournalError(
                    f"journal registers already-live tenant {tenant!r}"
                )
            state.tenants[tenant] = {
                "key_hash": p["key_hash"],
                "quota": dict(p["quota"]),
            }
        elif rec.op == "tenant_update":
            tenant = str(p["tenant"])
            if tenant not in state.tenants:
                raise JournalError(
                    f"journal updates unknown tenant {tenant!r}"
                )
            state.tenants[tenant] = {
                "key_hash": p["key_hash"],
                "quota": dict(p["quota"]),
            }
        elif rec.op == "tenant_revoke":
            tenant = str(p["tenant"])
            if tenant not in state.tenants:
                raise JournalError(
                    f"journal revokes unknown tenant {tenant!r}"
                )
            del state.tenants[tenant]
        # informational ops replay to nothing
    return state


def snapshot_deployment(deployment: "MccsDeployment") -> ControlPlaneState:
    """Snapshot the live object graph in journal-comparable form."""
    state = ControlPlaneState()
    for service in deployment.services.values():
        for buffer_id, alloc in service.memory.allocations().items():
            state.buffers[buffer_id] = {
                "app": alloc.app_id,
                "host": service.host.host_id,
                "gpu": alloc.buffer.device.global_id,
                "size": alloc.buffer.size,
                "handle": alloc.handle.handle_id,
            }
    for comm in deployment.communicators():
        state.communicators[comm.comm_id] = {
            "app": comm.app_id,
            "gpus": [gpu.global_id for gpu in comm.gpus],
            "version": comm.strategy.version,
            "epoch": len(comm.strategy_history) - 1,
            "membership_epoch": comm.membership_epoch,
            "next_seq": comm.next_seq,
            "strategies": {
                version: strategy_descriptor(strategy)
                for version, strategy in comm.strategy_history.items()
            },
        }
    gateway = getattr(deployment, "gateway", None)
    registry = (
        gateway.registry
        if gateway is not None
        else getattr(deployment, "tenant_registry", None)
    )
    if registry is not None:
        state.tenants = registry.snapshot()
    return state
