"""Collective strategy descriptors.

A :class:`CollectiveStrategy` is everything the provider can decide for a
communicator: the algorithm family, the ring ordering (or tree layout),
how many channels to open, and which route id each inter-host connection
should be pinned to.  Strategies are versioned; the reconfiguration
protocol (§4.2) moves a communicator from one version to the next without
interrupting the application.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..collectives.ring import RingSchedule, identity_ring


@dataclass(frozen=True)
class CollectiveStrategy:
    """Provider-chosen implementation plan for one communicator.

    Attributes:
        ring: The ring schedule (rank permutation).
        channels: Number of connections per peer pair (>= 1); the paper's
            simulator sets this to the number of network multi-path
            choices when rings are provider-optimized.
        algorithm: ``"ring"`` (the prototype's focus) or ``"tree"``.
        route_ids: Optional map from (src rank, dst rank, channel) to a
            route id; populated by the flow-assignment policies (FFA/PFA).
            Connections absent from the map fall back to ECMP.
        version: Monotonic strategy version, bumped per reconfiguration.
    """

    ring: RingSchedule
    channels: int = 1
    algorithm: str = "ring"
    route_ids: Tuple[Tuple[Tuple[int, int, int], int], ...] = ()
    version: int = 0

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ValueError("channels must be >= 1")
        from .algorithms import registered_algorithms

        if self.algorithm not in registered_algorithms():
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; "
                f"registered: {registered_algorithms()}"
            )
        world = self.ring.world
        for entry in self.route_ids:
            try:
                (src, dst, channel), route_id = entry
            except (TypeError, ValueError):
                raise ValueError(
                    f"malformed route_ids entry {entry!r}; expected "
                    "((src_rank, dst_rank, channel), route_id)"
                ) from None
            if not (0 <= src < world and 0 <= dst < world):
                raise ValueError(
                    f"route_ids entry {entry!r} names rank(s) outside "
                    f"world {world}"
                )
            if src == dst:
                raise ValueError(
                    f"route_ids entry {entry!r} routes a rank to itself"
                )
            if not 0 <= channel < self.channels:
                raise ValueError(
                    f"route_ids entry {entry!r} uses channel {channel}; "
                    f"strategy has {self.channels} channel(s)"
                )
            if route_id < 0:
                raise ValueError(
                    f"route_ids entry {entry!r} has a negative route id"
                )

    @property
    def world(self) -> int:
        return self.ring.world

    def route_map(self) -> Dict[Tuple[int, int, int], int]:
        """Route assignments as a dict keyed by (src, dst, channel) ranks."""
        return dict(self.route_ids)

    def with_ring(self, ring: RingSchedule) -> "CollectiveStrategy":
        return replace(self, ring=ring, version=self.version + 1)

    def with_routes(
        self, routes: Dict[Tuple[int, int, int], int]
    ) -> "CollectiveStrategy":
        return replace(
            self,
            route_ids=tuple(sorted(routes.items())),
            version=self.version + 1,
        )

    def evolve(
        self,
        *,
        ring: Optional[RingSchedule] = None,
        channels: Optional[int] = None,
        algorithm: Optional[str] = None,
        routes: Optional[Dict[Tuple[int, int, int], int]] = None,
    ) -> "CollectiveStrategy":
        """Produce the next strategy version with the given overrides."""
        return CollectiveStrategy(
            ring=ring if ring is not None else self.ring,
            channels=channels if channels is not None else self.channels,
            algorithm=algorithm if algorithm is not None else self.algorithm,
            route_ids=tuple(sorted(routes.items()))
            if routes is not None
            else self.route_ids,
            version=self.version + 1,
        )


def default_strategy(world: int, channels: int = 1) -> CollectiveStrategy:
    """Initial strategy before any policy runs: rank-order ring, ECMP."""
    return CollectiveStrategy(ring=identity_ring(world), channels=channels)
