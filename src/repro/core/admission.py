"""Overload protection: bounded request admission with QoS-aware shedding.

The frontend engines are the service's open door: nothing in §4.1 stops a
tenant from queueing unbounded work and starving everyone sharing the
host.  This module bounds them.  Each application is assigned a QoS class
(the Figure 9 setups map the high-priority training job to ``"high"`` and
the fine-tuning jobs to lower classes); every collective/p2p request is
checked against

* the class's per-tenant in-flight quota, and
* an optional deployment-wide in-flight cap under which only the highest
  priority class keeps being admitted (priority-aware load shedding).

A shed request raises the typed :class:`AdmissionRejectedError` back
through the command queue — a *decision*, which the shim surfaces rather
than retries — and is counted in ``mccs_admission_total`` /
``mccs_shed_total``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ..netsim.errors import AdmissionRejectedError, PolicyError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry.hub import TelemetryHub
    from .deployment import MccsDeployment


@dataclass(frozen=True)
class AdmissionPolicy:
    """Quotas of the admission controller.

    Attributes:
        classes: QoS class name -> max in-flight collectives per tenant
            of that class (``None`` = unlimited for that class).
        priority: Class names from most to least important; shedding under
            the global cap spares classes in order.
        total_inflight: Deployment-wide in-flight cap; once reached, only
            the highest-priority class is admitted.  ``None`` disables.
        default_class: Class of tenants never explicitly classified.
    """

    classes: Tuple[Tuple[str, Optional[int]], ...] = (
        ("high", 64),
        ("normal", 16),
        ("low", 4),
    )
    priority: Tuple[str, ...] = ("high", "normal", "low")
    total_inflight: Optional[int] = None
    default_class: str = "normal"

    def quota(self, qos: str) -> Optional[int]:
        for name, limit in self.classes:
            if name == qos:
                return limit
        raise PolicyError(f"unknown QoS class {qos!r}")


@dataclass
class AdmissionDecision:
    """Outcome of one admission check (kept for audits/tests)."""

    time: float
    app: str
    qos: str
    admitted: bool
    reason: str = ""
    outstanding: int = 0


class AdmissionController:
    """Per-deployment admission control over frontend-engine requests."""

    def __init__(
        self,
        deployment: "MccsDeployment",
        policy: Optional[AdmissionPolicy] = None,
        telemetry: Optional["TelemetryHub"] = None,
    ) -> None:
        self.deployment = deployment
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.telemetry = (
            telemetry if telemetry is not None else deployment.telemetry()
        )
        self._classes: Dict[str, str] = {}
        self.decisions: list = []
        self.admitted_total = 0
        self.shed_total = 0

    # ------------------------------------------------------------------
    def set_class(self, app_id: str, qos: str) -> None:
        self.policy.quota(qos)  # validates the class name
        self._classes[app_id] = qos

    def class_of(self, app_id: str) -> str:
        return self._classes.get(app_id, self.policy.default_class)

    def outstanding(self, app_id: str) -> int:
        """Collectives currently in flight for one tenant."""
        return sum(
            len(comm.active_instances)
            for comm in self.deployment.communicators()
            if comm.app_id == app_id
        )

    def total_outstanding(self) -> int:
        return sum(
            len(comm.active_instances)
            for comm in self.deployment.communicators()
        )

    # ------------------------------------------------------------------
    def admit(self, app_id: str) -> None:
        """Admit or shed one data-path request; sheds raise typed errors."""
        qos = self.class_of(app_id)
        outstanding = self.outstanding(app_id)
        quota = self.policy.quota(qos)
        if quota is not None and outstanding >= quota:
            self._shed(
                app_id,
                qos,
                outstanding,
                f"tenant quota: {outstanding} in flight >= {quota} "
                f"({qos} class)",
            )
        if self.policy.total_inflight is not None:
            total = self.total_outstanding()
            if (
                total >= self.policy.total_inflight
                and qos != self.policy.priority[0]
            ):
                self._shed(
                    app_id,
                    qos,
                    outstanding,
                    f"overload: {total} in flight deployment-wide >= "
                    f"{self.policy.total_inflight}; shedding non-"
                    f"{self.policy.priority[0]} traffic",
                )
        self.admitted_total += 1
        self._record(
            AdmissionDecision(
                time=self.deployment.sim.now,
                app=app_id,
                qos=qos,
                admitted=True,
                outstanding=outstanding,
            )
        )

    def _shed(
        self, app_id: str, qos: str, outstanding: int, reason: str
    ) -> None:
        self.shed_total += 1
        self._record(
            AdmissionDecision(
                time=self.deployment.sim.now,
                app=app_id,
                qos=qos,
                admitted=False,
                reason=reason,
                outstanding=outstanding,
            )
        )
        self.telemetry.metrics.counter(
            "mccs_shed_total",
            "Requests shed by admission control, by app and QoS class.",
        ).inc(app=app_id, qos=qos)
        self.telemetry.slo.record_shed(app_id)
        if self.telemetry.flight is not None:
            self.telemetry.flight.trigger(
                "admission_shed",
                self.deployment.sim.now,
                tenant=app_id,
                qos=qos,
                cause=reason,
            )
        raise AdmissionRejectedError(
            f"request from {app_id!r} shed by admission control ({reason})"
        )

    def _record(self, decision: AdmissionDecision) -> None:
        self.decisions.append(decision)
        self.telemetry.metrics.counter(
            "mccs_admission_total",
            "Admission decisions on data-path requests, by outcome.",
        ).inc(
            app=decision.app,
            qos=decision.qos,
            decision="admit" if decision.admitted else "shed",
        )
