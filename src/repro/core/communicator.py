"""Service-side communicators and in-flight collective instances.

A :class:`ServiceCommunicator` is the MCCS service's view of one tenant
communicator: the rank->GPU mapping, the current provider-chosen
:class:`~repro.core.strategy.CollectiveStrategy`, the single service-managed
stream that serializes the communicator's collectives (§4.1), and the
per-strategy-version connection tables.

A :class:`CollectiveInstance` is one issued collective.  Crucially, its
traffic is injected **per rank**: each rank's proxy engine launches its
own share of the flows using *that proxy's* current strategy version.
This is what makes the Figure 4 synchronization hazard expressible — with
the barrier disabled, rank 0 can launch collective ``seq=1`` on the old
ring while ranks 1 and 2 launch it on the new one, and the instance is
flagged inconsistent.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..cluster.gpu import AsyncOp, Event, GpuDevice, Stream
from ..cluster.specs import Cluster
from ..collectives.cost_model import LatencyModel, MCCS_LATENCY
from ..collectives.programs import FlowProgramCache
from ..collectives.ring import RingSchedule  # noqa: F401  (re-export for tests)
from ..collectives.types import Collective, ReduceOp, validate_world
from ..netsim.errors import FaultError, NoPathError, ReconfigurationError
from ..netsim.flows import Flow
from ..netsim.routing import RouteIdSelector, RouteMap
from ..telemetry.causal import TraceContext
from ..telemetry.hub import TelemetryHub
from ..telemetry.spans import (
    EVENT_LAST_FLOW_END,
    EVENT_RANK_LAUNCH,
    Span,
    SpanRecorder,
)
from ..transport.connections import ConnectionTable, connection_key
from .strategy import CollectiveStrategy
from .tracing import CommTrace

_comm_counter = itertools.count()


class VersionedDataPath:
    """Connection tables per strategy version for one communicator.

    Reconfiguration tears down the old version's connections and
    establishes new ones (§4.2); tables are created lazily on first use of
    a version and retired once no in-flight collective references them.
    """

    def __init__(
        self,
        cluster: Cluster,
        job_id: str,
        ecmp_seed: int,
        *,
        stable: bool = False,
    ) -> None:
        self.cluster = cluster
        self.job_id = job_id
        self.ecmp_seed = ecmp_seed
        #: With ``stable=True`` the ECMP discriminator omits the strategy
        #: version: re-established connections of the same edge re-draw the
        #: same path, so measurements are comparable across versions (and
        #: across processes, when the job id is caller-chosen too).
        self.stable = stable
        self._tables: Dict[int, ConnectionTable] = {}
        self._selectors: Dict[int, RouteIdSelector] = {}
        self._inflight: Dict[int, int] = {}
        self.teardowns = 0

    def _build(
        self, strategy: CollectiveStrategy, gpus: Sequence[GpuDevice]
    ) -> None:
        version = strategy.version
        if self.stable:
            discriminator = self.job_id
            fallback_seed = self.ecmp_seed
        else:
            discriminator = f"{self.job_id}/v{version}"
            fallback_seed = self.ecmp_seed + version
        route_map = RouteMap()
        for (src_rank, dst_rank, channel), route_id in strategy.route_map().items():
            key = connection_key(
                self.cluster,
                gpus[src_rank],
                gpus[dst_rank],
                channel,
                discriminator,
            )
            route_map.assign(key, route_id)
        selector = RouteIdSelector(route_map, fallback_seed=fallback_seed)
        self._selectors[version] = selector
        self._tables[version] = ConnectionTable(self.cluster, discriminator)
        self._inflight[version] = 0

    def table_for(
        self, strategy: CollectiveStrategy, gpus: Sequence[GpuDevice]
    ) -> Tuple[ConnectionTable, RouteIdSelector]:
        if strategy.version not in self._tables:
            self._build(strategy, gpus)
        return self._tables[strategy.version], self._selectors[strategy.version]

    def acquire(self, version: int) -> None:
        self._inflight[version] = self._inflight.get(version, 0) + 1

    def release(self, version: int, current_version: int) -> None:
        self._inflight[version] = self._inflight.get(version, 0) - 1
        if self._inflight[version] <= 0 and version < current_version:
            self.retire(version)

    def retire_stale(self, current_version: int) -> None:
        """Tear down tables of superseded versions with nothing in flight.

        Called when a reconfiguration commits, so connections of the old
        configuration are closed as soon as the last collective using
        them drains (§4.2).
        """
        for version in list(self._tables):
            if version < current_version and self._inflight.get(version, 0) <= 0:
                self.retire(version)

    def retire(self, version: int) -> None:
        table = self._tables.pop(version, None)
        if table is not None:
            table.teardown()
            self.teardowns += 1
        self._selectors.pop(version, None)
        self._inflight.pop(version, None)

    def live_versions(self) -> List[int]:
        return sorted(self._tables)


@dataclass
class CollectiveInstance:
    """One issued collective and its per-rank launch state."""

    comm: "ServiceCommunicator"
    seq: int
    kind: Collective
    out_bytes: int
    reduce_op: ReduceOp = ReduceOp.SUM
    root: int = 0
    issue_time: float = 0.0
    dtype: str = "float32"
    send_views: Optional[List[np.ndarray]] = None
    recv_views: Optional[List[np.ndarray]] = None
    on_complete: Optional[Callable[["CollectiveInstance", float], None]] = None
    # filled during execution
    kernel: Optional[AsyncOp] = None
    done_event: Optional[Event] = None
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    rank_versions: Dict[int, int] = field(default_factory=dict)
    #: Root lifecycle span (attached by the deployment's frontend path).
    span: Optional[Span] = None
    #: Causal-trace identity minted by the frontend; threaded into every
    #: flow tag, retry, journal record, and lifecycle event downstream.
    trace_ctx: Optional[TraceContext] = None
    _phase_queued: Optional[Span] = None
    _phase_launch: Optional[Span] = None
    _phase_network: Optional[Span] = None
    _launched: Set[int] = field(default_factory=set)
    _pending_flows: int = 0
    _injected_ranks: Set[int] = field(default_factory=set)
    # failure state
    #: True once the collective was terminated without completing.
    aborted: bool = False
    #: First failure observed (typed; rooted at ReproError).
    error: Optional[BaseException] = None
    #: Launch attempts so far (failure recovery bumps this on retry).
    attempts: int = 1
    _live_flows: Set[Flow] = field(default_factory=set)
    _failed_ranks: Dict[int, BaseException] = field(default_factory=dict)
    #: True after reset_for_retry until the relaunch arrives; keeps the
    #: instance visible to overlapping recovery cycles (a cycle that ran
    #: between a reset and its delayed relaunch must still retry it).
    _awaiting_relaunch: bool = False

    @property
    def world(self) -> int:
        return self.comm.world

    @property
    def completed(self) -> bool:
        return self.end_time is not None and not self.aborted

    @property
    def launch_started(self) -> bool:
        """True once any rank launched (or failed) this attempt."""
        return (
            bool(self._launched)
            or bool(self._failed_ranks)
            or self._awaiting_relaunch
        )

    @property
    def failed_ranks(self) -> Dict[int, BaseException]:
        return dict(self._failed_ranks)

    @property
    def consistent(self) -> bool:
        """True when every rank launched with the same strategy version."""
        return len(set(self.rank_versions.values())) <= 1

    def duration(self) -> float:
        if self.end_time is None:
            raise ValueError(f"collective seq={self.seq} still in flight")
        return self.end_time - self.issue_time

    # ------------------------------------------------------------------
    # causal tracing
    # ------------------------------------------------------------------
    def _causal_annotate(self, kind: str, **attrs: object) -> None:
        hub = self.comm.telemetry
        if self.trace_ctx is not None and hub is not None and hub.causal is not None:
            hub.causal.annotate(
                self.trace_ctx.trace_id, self.comm.sim.now, kind, **attrs
            )

    def _causal_close(self, status: str) -> None:
        hub = self.comm.telemetry
        if self.trace_ctx is not None and hub is not None and hub.causal is not None:
            hub.causal.close(
                self.trace_ctx.trace_id, self.comm.sim.now, status
            )

    # ------------------------------------------------------------------
    # telemetry spans
    # ------------------------------------------------------------------
    def _span_recorder(self) -> Optional[SpanRecorder]:
        if self.span is not None and self.comm.telemetry is not None:
            return self.comm.telemetry.spans
        return None

    def _phase_attrs(self) -> Dict[str, object]:
        return {"app": self.comm.app_id, "comm": f"comm{self.comm.comm_id}"}

    def attach_span(self, span: Span) -> None:
        """Adopt ``span`` as this collective's root lifecycle span and open
        the ``queued`` phase child (issue to first proxy launch)."""
        self.span = span
        recorder = self._span_recorder()
        if recorder is not None:
            self._phase_queued = recorder.begin(
                "queued", span.start, category="phase", parent=span,
                **self._phase_attrs(),
            )

    def _enter_launch_phase(self, now: float) -> None:
        recorder = self._span_recorder()
        if recorder is None:
            return
        if self._phase_queued is not None and not self._phase_queued.finished:
            self._phase_queued.finish(now)
            self._phase_launch = recorder.begin(
                "launch", now, category="phase", parent=self.span,
                **self._phase_attrs(),
            )

    def _enter_network_phase(self, now: float) -> None:
        recorder = self._span_recorder()
        if recorder is None:
            return
        if self._phase_launch is not None and not self._phase_launch.finished:
            self._phase_launch.finish(now)
        self._phase_network = recorder.begin(
            "network", now, category="phase", parent=self.span,
            **self._phase_attrs(),
        )

    def _close_phases(self, now: float) -> None:
        for phase in (self._phase_queued, self._phase_launch, self._phase_network):
            if phase is not None and not phase.finished:
                phase.finish(now)

    # ------------------------------------------------------------------
    def _context(self, strategy: CollectiveStrategy, rank: int) -> "AlgorithmContext":
        from .algorithms import AlgorithmContext

        return AlgorithmContext(
            kind=self.kind,
            out_bytes=self.out_bytes,
            world=self.world,
            rank=rank,
            root=self.root,
            ring_order=strategy.ring.order,
            channels=strategy.channels,
        )

    def rank_launch(self, rank: int, strategy: CollectiveStrategy) -> None:
        """Called by rank ``rank``'s proxy engine when it launches this
        collective under ``strategy``.  Injects that rank's flows after
        the fixed datapath latency."""
        from .algorithms import get_algorithm

        if self.aborted:
            return
        if rank in self._launched:
            raise ReconfigurationError(
                f"rank {rank} double-launched collective seq={self.seq}"
            )
        self._launched.add(rank)
        self._awaiting_relaunch = False
        self.rank_versions[rank] = strategy.version
        comm = self.comm
        if self.span is not None:
            self.span.mark(
                EVENT_RANK_LAUNCH, comm.sim.now,
                rank=rank, version=strategy.version,
            )
        self._enter_launch_phase(comm.sim.now)
        comm.datapath.acquire(strategy.version)
        algorithm = get_algorithm(strategy.algorithm)
        fixed = comm.latency.collective_latency(
            algorithm.steps(self.kind, self.world)
        )
        attempt = self.attempts

        def deferred() -> None:
            if self.aborted or self.attempts != attempt:
                # Aborted (or reset for retry) while the launch was in
                # flight: drop it, but balance the datapath refcount.
                comm.datapath.release(strategy.version, comm.strategy.version)
                return
            try:
                self._inject_rank(rank, strategy)
            except (FaultError, NoPathError) as exc:
                # Injection hit broken infrastructure (down link, dead
                # NIC, crashed host, or a partition with no surviving
                # path): balance the refcount and surface the failure
                # instead of crashing the event loop.
                comm.datapath.release(strategy.version, comm.strategy.version)
                self.rank_failed(rank, exc)

        comm.sim.call_in(fixed, deferred)

    def _inject_rank(self, rank: int, strategy: CollectiveStrategy) -> None:
        from .algorithms import get_algorithm

        comm = self.comm
        if self.start_time is None:
            self.start_time = comm.sim.now
            self._enter_network_phase(comm.sim.now)
            if comm.trace_record:
                rec = comm.trace.record_for(self.seq)
                if rec is not None:
                    rec.start_time = comm.sim.now
        table, selector = comm.datapath.table_for(strategy, comm.gpus)
        algorithm = get_algorithm(strategy.algorithm)
        program_key = (strategy, self.kind, self.out_bytes, self.root, rank)
        transfers = comm.program_cache.get(
            program_key,
            lambda: tuple(algorithm.rank_transfers(self._context(strategy, rank))),
        )
        injected_any = False
        src = comm.gpus[rank]
        for transfer in transfers:
            if transfer.nbytes <= 0:
                continue
            dst = comm.gpus[transfer.dst_rank]
            conn = table.establish_edge(src, dst, transfer.channel, selector)
            flow = comm.sim.add_flow(
                transfer.nbytes,
                conn.path,
                job_id=comm.app_id,
                tags={
                    "comm": comm.comm_id,
                    "seq": self.seq,
                    "kind": self.kind.value,
                    "channel": transfer.channel,
                    "rank": rank,
                    **(
                        {"trace": self.trace_ctx.trace_id}
                        if self.trace_ctx is not None
                        else {}
                    ),
                },
                on_complete=lambda f, _t: self._flow_done(f),
                on_fail=lambda f, _t, err, rank=rank: self._flow_failed(
                    f, rank, err
                ),
            )
            self._live_flows.add(flow)
            self._pending_flows += 1
            injected_any = True
            if comm.gate is not None:
                comm.gate.register(flow)
        self._injected_ranks.add(rank)
        comm.datapath.release(strategy.version, comm.strategy.version)
        if not injected_any:
            self._maybe_complete()

    def _flow_done(self, flow: Flow) -> None:
        self._live_flows.discard(flow)
        self._pending_flows -= 1
        self._maybe_complete()

    def _flow_failed(self, flow: Flow, rank: int, error: BaseException) -> None:
        self._live_flows.discard(flow)
        self._pending_flows -= 1
        self.rank_failed(rank, error)

    def _maybe_complete(self) -> None:
        if (
            self.end_time is None
            and not self.aborted
            and not self._failed_ranks
            and len(self._injected_ranks) == self.world
            and self._pending_flows == 0
        ):
            self._finish()

    # ------------------------------------------------------------------
    # failure surface
    # ------------------------------------------------------------------
    def rank_failed(self, rank: int, error: BaseException) -> None:
        """Record that ``rank``'s share of this collective failed.

        First failure per rank wins; the communicator's failure handler
        (failure recovery, when enabled) decides what happens next — with
        no handler installed the collective aborts immediately, NCCL
        async-error style.
        """
        if self.aborted or self.completed or rank in self._failed_ranks:
            return
        self._failed_ranks[rank] = error
        if self.error is None:
            self.error = error
        if self.span is not None:
            self.span.mark(
                "rank_failed", self.comm.sim.now, rank=rank, error=str(error)
            )
        self._causal_annotate("rank_failed", rank=rank, error=str(error))
        self.comm.on_instance_failure(self, rank, error)

    def abort(self, error: BaseException) -> None:
        """Terminate this collective without completing it.

        Surviving flows are cancelled, the tenant's kernel/done-event
        chain is released (so waiters unblock instead of hanging), and
        the typed ``error`` is left on the instance.  Buffers are never
        touched — an aborted collective has undefined output, exactly
        like an aborted NCCL communicator.
        """
        if self.aborted or self.completed:
            return
        self.aborted = True
        if self.error is None:
            self.error = error
        comm = self.comm
        self.end_time = comm.sim.now
        for flow in list(self._live_flows):
            comm.sim.cancel_flow(flow)
        self._live_flows.clear()
        self._pending_flows = 0
        self._close_phases(self.end_time)
        if comm.trace_record:
            rec = comm.trace.record_for(self.seq)
            if rec is not None:
                rec.end_time = self.end_time
        if self.span is not None and not self.span.finished:
            self.span.mark("aborted", self.end_time, error=str(self.error))
            self.span.finish(self.end_time)
        if comm.telemetry is not None:
            comm.telemetry.metrics.counter(
                "mccs_collectives_aborted_total",
                "Collectives terminated by failure handling, by app.",
            ).inc(app=comm.app_id, kind=self.kind.value)
            comm.telemetry.slo.record_abort(comm.app_id)
        self._causal_close("aborted")
        comm.on_instance_finished(self)
        if self.kernel is not None:
            self.kernel.complete()
        if self.on_complete is not None:
            self.on_complete(self, self.end_time)

    def reset_for_retry(self) -> None:
        """Return to the never-launched state so proxies can relaunch.

        Cancels whatever traffic the failed attempt still has in flight
        and clears all per-attempt bookkeeping; the bumped
        :attr:`attempts` makes any still-scheduled injection from the
        old attempt a no-op.
        """
        if self.aborted or self.completed:
            raise ReconfigurationError(
                f"cannot retry finished collective seq={self.seq}"
            )
        self.attempts += 1
        hub = self.comm.telemetry
        if self.trace_ctx is not None and hub is not None and hub.causal is not None:
            hub.causal.new_attempt(self.trace_ctx.trace_id, self.comm.sim.now)
        if hub is not None:
            hub.slo.record_retry(self.comm.app_id)
        for flow in list(self._live_flows):
            self.comm.sim.cancel_flow(flow)
        self._live_flows.clear()
        self._pending_flows = 0
        self._launched.clear()
        self._injected_ranks.clear()
        self.rank_versions.clear()
        self._failed_ranks.clear()
        self.error = None
        self.start_time = None
        self._awaiting_relaunch = True

    def _finish(self) -> None:
        comm = self.comm
        self.end_time = comm.sim.now
        if not self.consistent:
            comm.inconsistent_collectives += 1
            if comm.strict_consistency:
                raise ReconfigurationError(
                    f"collective seq={self.seq} launched with mixed strategy "
                    f"versions {sorted(set(self.rank_versions.values()))}"
                )
        if self.send_views is not None and self.consistent:
            from .algorithms import get_algorithm

            version = next(iter(self.rank_versions.values()))
            strategy = comm.strategy_history[version]
            algorithm = get_algorithm(strategy.algorithm)
            outputs = algorithm.run_data(
                self._context(strategy, rank=0), self.send_views, self.reduce_op
            )
            if self.recv_views is not None:
                for dst, src in zip(self.recv_views, outputs):
                    np.copyto(dst, src.reshape(dst.shape))
        self._close_phases(self.end_time)
        if comm.trace_record:
            rec = comm.trace.record_for(self.seq)
            if rec is not None:
                rec.end_time = self.end_time
        if self.span is not None and not self.span.finished:
            # Record already evicted (or tracing off): finish the span here.
            self.span.mark(EVENT_LAST_FLOW_END, self.end_time)
            self.span.finish(self.end_time)
        if comm.telemetry is not None:
            metrics = comm.telemetry.metrics
            metrics.counter(
                "mccs_collectives_completed_total",
                "Collectives fully drained, by app and kind.",
            ).inc(app=comm.app_id, kind=self.kind.value)
            metrics.histogram(
                "mccs_collective_duration_seconds",
                "Issue-to-completion time of collectives, by app.",
            ).observe(self.end_time - self.issue_time, app=comm.app_id)
            comm.telemetry.slo.record_completion(
                comm.app_id,
                self.end_time - self.issue_time,
                self.out_bytes,
                self.end_time,
            )
        self._causal_close("completed")
        # Retire from the active set before waking anyone: completion
        # callbacks may immediately destroy the communicator.
        comm.on_instance_finished(self)
        if self.kernel is not None:
            self.kernel.complete()
        if self.on_complete is not None:
            self.on_complete(self, self.end_time)


class ServiceCommunicator:
    """The MCCS service's state for one tenant communicator."""

    def __init__(
        self,
        cluster: Cluster,
        app_id: str,
        gpus: Sequence[GpuDevice],
        strategy: CollectiveStrategy,
        *,
        latency: LatencyModel = MCCS_LATENCY,
        ecmp_seed: int = 0,
        gate=None,
        trace: Optional[CommTrace] = None,
        strict_consistency: bool = False,
        telemetry: Optional[TelemetryHub] = None,
        datapath_tag: Optional[str] = None,
    ) -> None:
        validate_world(len(gpus))
        if strategy.world != len(gpus):
            raise ValueError("strategy world does not match gpu count")
        self.comm_id = next(_comm_counter)
        self.cluster = cluster
        self.sim = cluster.sim
        self.app_id = app_id
        self.gpus = list(gpus)
        self.world = len(gpus)
        self.latency = latency
        self.gate = gate
        self.strategy = strategy
        self.strategy_history: Dict[int, CollectiveStrategy] = {
            strategy.version: strategy
        }
        # ECMP draws normally hash the (process-unique) comm id and the
        # strategy version, modelling fresh 5-tuples per establishment.  A
        # caller-chosen ``datapath_tag`` pins the namespace instead, giving
        # identical draws for identical edges across communicators,
        # versions, and processes — the autotune experiment uses this so
        # tuned-vs-static compares strategies, not path luck.
        self.datapath = VersionedDataPath(
            cluster,
            datapath_tag
            if datapath_tag is not None
            else f"{app_id}/comm{self.comm_id}",
            ecmp_seed,
            stable=datapath_tag is not None,
        )
        #: One service-managed stream per communicator (§4.1).
        self.stream = Stream(cluster.sim, name=f"comm{self.comm_id}.stream")
        #: Communicator-level completion event created at init time and
        #: shared with the shim (its per-op incarnations are fresh events;
        #: see repro.core.sync for the snapshot-semantics discussion).
        self.comm_event = Event(name=f"comm{self.comm_id}.done")
        self.next_seq = 0
        #: Bumped once per committed membership change (grow or shrink);
        #: the journal's ``membership_change`` records carry this value.
        self.membership_epoch = 0
        self.instances: List[CollectiveInstance] = []
        self.active_instances: Set[int] = set()
        self.inconsistent_collectives = 0
        self.strict_consistency = strict_consistency
        self.trace = trace if trace is not None else CommTrace(self.comm_id, app_id)
        self.trace_record = True
        self.telemetry = telemetry
        self.destroyed = False
        #: Set once the communicator is irrecoverably failed; subsequent
        #: tenant requests are rejected with :class:`CommunicatorError`.
        self.aborted = False
        self.abort_error: Optional[BaseException] = None
        #: Installed by failure recovery: ``handler(comm, instance, rank,
        #: error)``.  ``instance`` may be None (heartbeat-detected death
        #: with nothing in flight); ``rank`` may be None (deadline expiry).
        self.failure_handler: Optional[
            Callable[
                ["ServiceCommunicator", Optional[CollectiveInstance],
                 Optional[int], BaseException],
                None,
            ]
        ] = None
        #: Compiled per-rank transfer lists, keyed by everything they
        #: depend on (strategy incl. ring order/channels/route-ids, kind,
        #: sizes, root, rank); traffic loops reissue identical collectives.
        self.program_cache = FlowProgramCache()
        #: Provider-side observers of finished (completed *or* aborted)
        #: collectives — e.g. the autotuner's measurement feed.  Unlike
        #: :attr:`CollectiveInstance.on_complete` (owned by the tenant
        #: shim), many listeners can coexist.
        self.completion_listeners: List[
            Callable[[CollectiveInstance], None]
        ] = []
        #: Deployment hook journaling each *first* commit of a version
        #: (write-ahead ``install_strategy`` records).
        self.on_commit: Optional[
            Callable[["ServiceCommunicator", CollectiveStrategy], None]
        ] = None

    # ------------------------------------------------------------------
    def commit_strategy(self, strategy: CollectiveStrategy) -> None:
        """Record a new strategy version (called once a reconfiguration's
        barrier has resolved; proxies switch independently)."""
        fresh = strategy.version not in self.strategy_history
        self.strategy = strategy
        self.strategy_history[strategy.version] = strategy
        self.datapath.retire_stale(strategy.version)
        if fresh and self.on_commit is not None:
            self.on_commit(self, strategy)

    def apply_membership(
        self, gpus: Sequence[GpuDevice], strategy: CollectiveStrategy
    ) -> None:
        """Install a new rank set at a membership cutover (grow/shrink).

        Callers (:class:`~repro.core.elastic.ElasticCoordinator`) must
        have drained the communicator first: rank renumbering invalidates
        every in-flight instance's rank→GPU mapping, so cutting over with
        collectives active would corrupt their flows.
        """
        validate_world(len(gpus))
        if strategy.world != len(gpus):
            raise ValueError("strategy world does not match gpu count")
        if self.active_instances:
            raise ReconfigurationError(
                f"communicator {self.comm_id} still has "
                f"{len(self.active_instances)} collective(s) in flight"
            )
        self.gpus = list(gpus)
        self.world = len(gpus)
        self.membership_epoch += 1
        self.commit_strategy(strategy)

    def launch_frontier(self) -> int:
        """Sequence number of the last collective whose kernel started.

        Launch fan-out is synchronous across ranks (the service stream is
        FIFO), so this is exactly the ``launched_seq`` cursor a restarted
        proxy engine must resume from: instances past the frontier are
        still queued on the stream and will arrive through the normal
        :meth:`ProxyEngine.request_launch` ordering check.
        """
        frontier = -1
        for instance in self.instances:
            if (
                instance.completed
                or instance.aborted
                or instance.launch_started
            ):
                frontier = instance.seq
            else:
                break
        return frontier

    def ranks_by_host(self) -> Dict[int, List[int]]:
        by_host: Dict[int, List[int]] = {}
        for rank, gpu in enumerate(self.gpus):
            by_host.setdefault(gpu.host_id, []).append(rank)
        return by_host

    def add_completion_listener(
        self, listener: Callable[[CollectiveInstance], None]
    ) -> None:
        """Subscribe ``listener`` to every finished collective instance."""
        self.completion_listeners.append(listener)

    def on_instance_finished(self, instance: CollectiveInstance) -> None:
        self.active_instances.discard(instance.seq)
        for listener in list(self.completion_listeners):
            listener(instance)

    def on_instance_failure(
        self,
        instance: CollectiveInstance,
        rank: Optional[int],
        error: BaseException,
    ) -> None:
        """Route one rank-level failure to recovery (or fail fast)."""
        if self.failure_handler is not None:
            self.failure_handler(self, instance, rank, error)
        else:
            instance.abort(error)

    def abort(self, error: BaseException) -> None:
        """Irrecoverably fail this communicator.

        Every in-flight collective aborts with ``error`` (waiters
        unblock), and future requests on the communicator raise
        :class:`CommunicatorError` — the graceful-degradation path when
        recovery gives up.  Other communicators are untouched.
        """
        if self.aborted:
            return
        self.aborted = True
        self.abort_error = error
        for seq in sorted(self.active_instances):
            self.instances[seq].abort(error)
        if self.telemetry is not None:
            self.telemetry.events.log(
                self.sim.now,
                "comm_aborted",
                f"comm{self.comm_id} aborted: {error}",
                comm=self.comm_id,
                app=self.app_id,
            )

    def describe(self) -> Dict[str, object]:
        """Management-API snapshot consumed by the centralized controller
        (§4.3: the set of GPUs/hosts per communicator and the current
        collective strategy and network configuration)."""
        return {
            "comm_id": self.comm_id,
            "app_id": self.app_id,
            "gpus": [g.global_id for g in self.gpus],
            "hosts": sorted({g.host_id for g in self.gpus}),
            "ring": list(self.strategy.ring.order),
            "channels": self.strategy.channels,
            "algorithm": self.strategy.algorithm,
            "routes": self.strategy.route_map(),
            "version": self.strategy.version,
        }
