"""Service-side GPU memory management (§4.1).

MCCS "redirect[s] control over GPU memory allocations and deallocations to
the MCCS service": the frontend engine allocates on the tenant's GPU,
exports a cudaIpc handle for the shim to open, and later validates that
every buffer reference a collective passes lies within a live allocation
("The service will check whether the data buffer user passes is within a
valid allocation before performing the operation").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

import numpy as np

from ..cluster.gpu import DeviceBuffer, GpuDevice
from ..cluster.ipc import IpcMemHandle, IpcRegistry
from ..netsim.errors import InvalidBufferError
from .messages import BufferRef


@dataclass
class ManagedAllocation:
    """One service-owned allocation and its export handle."""

    app_id: str
    buffer: DeviceBuffer
    handle: IpcMemHandle

    @property
    def buffer_id(self) -> int:
        return self.buffer.buffer_id


class MemoryManager:
    """Tracks every allocation the service made on behalf of tenants."""

    def __init__(self) -> None:
        self._allocations: Dict[int, ManagedAllocation] = {}
        #: Buffer ids this manager already freed, so a shim retry of a
        #: FreeRequest (delivered after a service restart) is a no-op
        #: instead of an "unknown buffer" error: free is idempotent.
        self._freed: Set[int] = set()
        self.bytes_allocated = 0
        self.bytes_freed = 0

    def allocate(
        self, app_id: str, gpu: GpuDevice, size: int, ipc: IpcRegistry
    ) -> ManagedAllocation:
        """Allocate on ``gpu`` and export an IPC handle for the shim."""
        buffer = gpu.allocate(size)
        handle = ipc.export_memory(buffer)
        alloc = ManagedAllocation(app_id=app_id, buffer=buffer, handle=handle)
        self._allocations[buffer.buffer_id] = alloc
        self.bytes_allocated += size
        return alloc

    def free(self, app_id: str, buffer_id: int, ipc: IpcRegistry) -> bool:
        """Free an allocation; the shim must have closed its handle.

        Idempotent under retry: freeing an id this manager already freed
        returns ``False`` without touching the device (the first free
        won); an id that was *never* allocated raises the typed
        :class:`InvalidBufferError`.  Returns ``True`` when this call
        performed the deallocation.
        """
        alloc = self._allocations.get(buffer_id)
        if alloc is None:
            if buffer_id in self._freed:
                return False
            raise InvalidBufferError(f"unknown buffer id {buffer_id}")
        if alloc.app_id != app_id:
            raise InvalidBufferError(
                f"buffer {buffer_id} belongs to {alloc.app_id!r}, not {app_id!r}"
            )
        if ipc.is_open(alloc.handle):
            raise InvalidBufferError(
                f"buffer {buffer_id} freed while its IPC handle is still open"
            )
        alloc.buffer.device.free(alloc.buffer)
        ipc.revoke_memory(alloc.handle)
        self.bytes_freed += alloc.buffer.size
        del self._allocations[buffer_id]
        self._freed.add(buffer_id)
        return True

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    def adopt(
        self, app_id: str, buffer: DeviceBuffer, handle: IpcMemHandle
    ) -> ManagedAllocation:
        """Re-adopt a surviving allocation after a service restart.

        The device memory and the host's IPC export outlived the crashed
        service process; journal replay re-binds them into a fresh
        manager without allocating or exporting anything new.
        """
        alloc = ManagedAllocation(app_id=app_id, buffer=buffer, handle=handle)
        self._allocations[buffer.buffer_id] = alloc
        self.bytes_allocated += buffer.size
        return alloc

    def mark_freed(self, buffer_id: int) -> None:
        """Record a historical free during journal replay (keeps retried
        frees of pre-crash buffers idempotent after a restart)."""
        self._freed.add(buffer_id)

    # ------------------------------------------------------------------
    def validate(self, app_id: str, ref: BufferRef) -> ManagedAllocation:
        """Check a collective's buffer reference; raise if out of range.

        Enforces ownership (a tenant cannot name another tenant's buffer)
        and bounds (the [offset, offset+nbytes) window must lie inside the
        allocation).
        """
        alloc = self._allocations.get(ref.buffer_id)
        if alloc is None:
            raise InvalidBufferError(f"unknown buffer id {ref.buffer_id}")
        if alloc.app_id != app_id:
            raise InvalidBufferError(
                f"app {app_id!r} referenced buffer {ref.buffer_id} owned by "
                f"{alloc.app_id!r}"
            )
        if ref.offset < 0 or ref.nbytes < 0 or not alloc.buffer.contains(
            ref.offset, ref.nbytes
        ):
            raise InvalidBufferError(
                f"range [{ref.offset}, {ref.offset + ref.nbytes}) outside "
                f"allocation of {alloc.buffer.size} bytes"
            )
        return alloc

    def view(self, app_id: str, ref: BufferRef, dtype=np.uint8) -> np.ndarray:
        """Validated numpy view over a buffer reference."""
        alloc = self.validate(app_id, ref)
        itemsize = np.dtype(dtype).itemsize
        return alloc.buffer.view(dtype, ref.offset, ref.nbytes // itemsize)

    def allocations(self) -> Dict[int, ManagedAllocation]:
        return dict(self._allocations)

    def allocations_of(self, app_id: str) -> Dict[int, ManagedAllocation]:
        return {
            bid: alloc
            for bid, alloc in self._allocations.items()
            if alloc.app_id == app_id
        }

    def live_bytes(self) -> int:
        return self.bytes_allocated - self.bytes_freed
