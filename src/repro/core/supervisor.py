"""Crash supervision for the per-host MCCS services.

A production MCCS service runs under a process supervisor (systemd, a
k8s liveness probe) that restarts it when it dies.  This module is that
supervisor: it subscribes to every service's crash notification and, a
configurable delay later, restarts the service by journal replay
(:meth:`~repro.core.service.MccsService.restart`).

The supervisor also answers the question failure recovery needs during
the outage window: *is this service coming back?*
:meth:`ServiceSupervisor.restart_pending` lets
:class:`~repro.core.recovery.RecoveryManager` distinguish a dead rank
(host crash — reform around it) from a temporarily dark one (service
crash with a restart scheduled — wait it out).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Set

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .deployment import MccsDeployment
    from .service import MccsService


class ServiceSupervisor:
    """Restarts crashed services after a fixed delay (journal replay)."""

    def __init__(
        self, deployment: "MccsDeployment", restart_delay: float = 0.02
    ) -> None:
        self.deployment = deployment
        self.restart_delay = restart_delay
        self.sim = deployment.sim
        self.telemetry = deployment.telemetry()
        self._pending: Set[int] = set()
        #: host_id -> restarts performed by this supervisor
        self.restarts: Dict[int, int] = {}

    def restart_pending(self, host_id: int) -> bool:
        """True while a restart of this host's service is scheduled."""
        return host_id in self._pending

    def notify_crash(self, service: "MccsService") -> None:
        """Crash callback from :meth:`MccsService.crash`."""
        host_id = service.host.host_id
        if host_id in self._pending:
            return
        self._pending.add(host_id)
        self.sim.call_in(self.restart_delay, lambda: self._restart(host_id))

    def _restart(self, host_id: int) -> None:
        self._pending.discard(host_id)
        service = self.deployment.service_of(host_id)
        if service.alive:
            return
        if not service.host.alive:
            # The whole host died out from under the service; a process
            # supervisor cannot help — recovery reforms around the host.
            return
        service.restart()
        self.restarts[host_id] = self.restarts.get(host_id, 0) + 1
        self.telemetry.metrics.counter(
            "mccs_supervised_restarts_total",
            "Service restarts performed by the crash supervisor.",
        ).inc(host=f"h{host_id}")
