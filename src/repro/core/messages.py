"""Shim <-> service command-queue messages.

The MCCS shim "communicates with MCCS service using shared host and GPU
memory" (§3).  We model the shared-memory command queue explicitly: typed
request/response records travel between the shim and the per-application
frontend engine.  The queue itself is host-local and delivers in order;
its latency contribution is folded into the datapath term of the MCCS
latency model (the paper measures the whole shim->service->engine chain
at 50-80 us).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..cluster.ipc import IpcEventHandle, IpcMemHandle
from ..collectives.types import Collective, ReduceOp

_msg_counter = itertools.count()


@dataclass(frozen=True)
class Request:
    """Base class for shim->service messages."""

    def __post_init__(self) -> None:
        object.__setattr__(self, "msg_id", next(_msg_counter))


@dataclass(frozen=True)
class AllocateRequest(Request):
    """Allocate ``size`` bytes on GPU ``gpu_global_id``."""

    gpu_global_id: int
    size: int


@dataclass(frozen=True)
class AllocateResponse:
    """Handle the shim opens to get the device pointer."""

    buffer_id: int
    handle: IpcMemHandle
    size: int


@dataclass(frozen=True)
class FreeRequest(Request):
    """Release a service-managed allocation (shim closed its handle)."""

    buffer_id: int


@dataclass(frozen=True)
class BufferRef:
    """A (buffer id, offset, nbytes) range inside a managed allocation.

    This is what the shim passes "for collective operations ... an
    identifier for the memory allocation and an offset" (§4.1); the
    service validates the range before touching the data.
    """

    buffer_id: int
    offset: int
    nbytes: int


@dataclass(frozen=True)
class CreateCommunicatorRequest(Request):
    """Create a communicator over the app's GPUs (by global id, rank order)."""

    gpu_global_ids: Tuple[int, ...]


@dataclass(frozen=True)
class CreateCommunicatorResponse:
    """Communicator id plus the per-communicator completion event handle."""

    comm_id: int
    done_event: IpcEventHandle


@dataclass(frozen=True)
class CollectiveRequest(Request):
    """Issue one collective on a communicator.

    ``stream_event`` is the handle of the event the shim recorded on the
    application stream that produced the input data; the service's
    communicator stream waits on it before running the communication
    kernel.  ``send_refs``/``recv_refs`` carry one validated buffer range
    per rank when the application wants real data moved; they may be empty
    for timing-only replay (the traffic-generator mode of §6.1).
    """

    comm_id: int
    kind: Collective
    out_bytes: int
    send_refs: Tuple[BufferRef, ...] = ()
    recv_refs: Tuple[BufferRef, ...] = ()
    dtype: str = "float32"
    reduce_op: ReduceOp = ReduceOp.SUM
    root: int = 0
    stream_id: int = -1
    stream_event: Optional[IpcEventHandle] = None


@dataclass(frozen=True)
class CollectiveResponse:
    """Acknowledgement: the sequence number plus the completion event the
    shim makes the application stream wait on."""

    comm_id: int
    seq: int
    done_event: Optional[IpcEventHandle] = None


@dataclass(frozen=True)
class P2pRequest(Request):
    """Point-to-point transfer between two ranks of a communicator.

    The paper notes P2P support is a straightforward extension of the
    prototype (§5); like NCCL's ncclSend/ncclRecv it rides the
    communicator's established connections and stream ordering.
    """

    comm_id: int
    src_rank: int
    dst_rank: int
    nbytes: int
    send_ref: Optional[BufferRef] = None
    recv_ref: Optional[BufferRef] = None
    dtype: str = "float32"
    stream_id: int = -1
    stream_event: Optional[IpcEventHandle] = None


@dataclass(frozen=True)
class P2pResponse:
    comm_id: int
    done_event: Optional[IpcEventHandle] = None


@dataclass(frozen=True)
class DestroyCommunicatorRequest(Request):
    comm_id: int


class CommandQueue:
    """In-order shared-memory command queue between shim and frontend.

    Delivery is immediate in simulated time (the end-to-end datapath
    latency is accounted at flow-injection time); what the queue *does*
    preserve is ordering and the request/response discipline, which the
    protocol tests rely on.
    """

    def __init__(self) -> None:
        self._handler: Optional[Callable[[Request], object]] = None
        self.sent: int = 0

    def bind(self, handler: Callable[[Request], object]) -> None:
        """The frontend engine registers itself as the consumer."""
        if self._handler is not None:
            raise RuntimeError("command queue already bound")
        self._handler = handler

    def call(self, request: Request) -> object:
        """Send a request and wait for the (synchronous) response."""
        if self._handler is None:
            raise RuntimeError("command queue is not bound to a service")
        self.sent += 1
        return self._handler(request)
