"""Deployment-wide coordination of the MCCS services.

One :class:`MccsDeployment` spans the cluster: it owns the per-host
services, the traffic gate manager, the trace store, and the
reconfiguration manager, and it exposes the provider-facing management API
that the centralized controller consumes (§4.3):

* :meth:`describe` — active communicators, their GPU/host sets and current
  strategy/network configuration;
* :meth:`trace` — fine-grained collective traces;
* :meth:`reconfigure` — push a new strategy through the Figure 4 barrier;
* :meth:`set_traffic_schedule` — install TS transmission windows.

Applications never touch this object directly; they connect through
:meth:`connect`, which returns the shim (:class:`~repro.core.shim.MccsClient`).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle broken for type hints
    from ..autotune import AutotuneConfig, AutoTuner, StrategyPlanner, TuningTable
    from .elastic import ElasticCoordinator, ElasticPolicy
    from .recovery import HeartbeatMonitor, RecoveryManager, RecoveryPolicy
    from .supervisor import ServiceSupervisor

from ..baselines.nccl import default_channels
from ..cluster.gpu import AsyncOp, Event, GpuDevice
from ..cluster.specs import Cluster
from ..collectives.cost_model import LatencyModel, MCCS_LATENCY
from ..collectives.types import input_bytes
from ..netsim.errors import (
    CollectiveTimeoutError,
    CommunicatorError,
    InvalidBufferError,
    MccsError,
)
from ..telemetry.hub import TelemetryHub
from .admission import AdmissionController, AdmissionPolicy
from .communicator import CollectiveInstance, ServiceCommunicator
from .journal import (
    ControlPlaneState,
    StateJournal,
    snapshot_deployment,
    strategy_descriptor,
)
from .messages import (
    BufferRef,
    CollectiveRequest,
    CollectiveResponse,
    CreateCommunicatorRequest,
    CreateCommunicatorResponse,
    DestroyCommunicatorRequest,
)
from .proxy import ProxyEngine
from .reconfig import DEFAULT_CONTROL_RING_LATENCY, ReconfigManager, ReconfigSession
from .service import MccsService
from .strategy import CollectiveStrategy, default_strategy
from .tracing import DEFAULT_TRACE_CAPACITY, CommTrace, TraceStore
from .transport import TrafficGateManager, WindowSchedule


class MccsDeployment:
    """All MCCS services of a cluster plus the provider control surface."""

    def __init__(
        self,
        cluster: Cluster,
        *,
        latency: LatencyModel = MCCS_LATENCY,
        datapath_latency: Optional[float] = None,
        ecmp_seed: int = 0,
        control_latency: float = DEFAULT_CONTROL_RING_LATENCY,
        strict_consistency: bool = False,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
        telemetry: Optional[TelemetryHub] = None,
    ) -> None:
        if datapath_latency is not None:
            # §6.2 knob: override the shim->service hop without callers
            # having to rebuild the whole latency model.
            if datapath_latency < 0:
                raise ValueError("datapath_latency must be non-negative")
            latency = replace(latency, datapath=datapath_latency)
        self.cluster = cluster
        self.sim = cluster.sim
        self.latency = latency
        self.ecmp_seed = ecmp_seed
        self.control_latency = control_latency
        self.strict_consistency = strict_consistency
        self._telemetry = telemetry if telemetry is not None else TelemetryHub()
        network = self._telemetry.attach_network(cluster.sim)
        network.set_program_cache_provider(self.program_cache_stats)
        #: Write-ahead journal of control-plane mutations.  Owned here —
        #: not by any per-host service — so it survives service crashes;
        #: MccsService.restart() replays it.
        self.journal = StateJournal(telemetry=self._telemetry)
        self.services: Dict[int, MccsService] = {
            host.host_id: MccsService(cluster, host, telemetry=self._telemetry)
            for host in cluster.hosts
        }
        for service in self.services.values():
            service.deployment = self
        self.gates = TrafficGateManager(cluster.sim, telemetry=self._telemetry)
        self.traces = TraceStore(max_records_per_comm=trace_capacity)
        self.reconfig = ReconfigManager(
            cluster.sim, self.proxies_of, telemetry=self._telemetry
        )
        self._comms: Dict[int, ServiceCommunicator] = {}
        self._comm_owner: Dict[int, str] = {}
        #: Optional provider hook deciding the initial strategy of every
        #: tenant-created communicator (installed by the controller via
        #: CentralManager.manage_admissions()).
        self.strategy_factory: Optional[
            Callable[[str, Sequence[GpuDevice], int], CollectiveStrategy]
        ] = None
        #: Failure recovery, armed via :meth:`enable_recovery`.
        self.recovery: Optional["RecoveryManager"] = None
        self.heartbeat_monitor: Optional["HeartbeatMonitor"] = None
        #: Online strategy autotuner, armed via :meth:`enable_autotuning`.
        self.autotuner: Optional["AutoTuner"] = None
        #: Admission control, armed via :meth:`configure_admission`.
        self.admission: Optional[AdmissionController] = None
        #: Crash supervisor, armed via :meth:`enable_service_supervision`.
        self.supervisor: Optional["ServiceSupervisor"] = None
        #: Elastic membership coordinator, armed via
        #: :meth:`enable_elasticity`.
        self.elastic: Optional["ElasticCoordinator"] = None
        #: Tenant-facing service gateway; installed by
        #: ``repro.service.gateway.ServiceGateway(deployment, ...)``.
        self.gateway = None
        #: Live tenant registry (installed by ``TenantRegistry``; the
        #: journal's live-state snapshot reads tenant tables through it).
        self.tenant_registry = None
        self._telemetry.set_resilience_provider(self.resilience_stats)

    # ------------------------------------------------------------------
    # failure recovery
    # ------------------------------------------------------------------
    def enable_recovery(
        self,
        policy: Optional["RecoveryPolicy"] = None,
        *,
        heartbeat_until: Optional[float] = None,
    ) -> "RecoveryManager":
        """Arm failure recovery for every (current and future) communicator.

        Args:
            policy: Recovery knobs; defaults to :class:`RecoveryPolicy`.
            heartbeat_until: Also run the proxy :class:`HeartbeatMonitor`
                up to this simulation time (the monitor must be bounded —
                the simulator runs to quiescence).  ``None`` relies on
                data-path signals alone.
        """
        from .recovery import HeartbeatMonitor, RecoveryManager

        if self.recovery is None:
            self.recovery = RecoveryManager(self, policy)
        elif policy is not None:
            self.recovery.policy = policy
        for comm in self._comms.values():
            self.recovery.attach(comm)
        if heartbeat_until is not None:
            self.heartbeat_monitor = HeartbeatMonitor(
                self,
                self.recovery,
                interval=self.recovery.policy.heartbeat_interval,
                until=heartbeat_until,
            ).start()
        return self.recovery

    # ------------------------------------------------------------------
    # resilience: admission control, crash supervision, journal state
    # ------------------------------------------------------------------
    def configure_admission(
        self, policy: Optional[AdmissionPolicy] = None
    ) -> AdmissionController:
        """Arm (or re-policy) admission control over data-path requests.

        Every collective/p2p request entering any frontend engine is then
        checked against per-tenant QoS quotas and the deployment-wide
        overload cap; sheds raise :class:`~repro.errors.
        AdmissionRejectedError` back through the shim.
        """
        if self.admission is None:
            self.admission = AdmissionController(
                self, policy, telemetry=self._telemetry
            )
        elif policy is not None:
            self.admission.policy = policy
        # SLO accounting resolves tenants to QoS classes through admission
        # control once it is armed.
        self._telemetry.slo.class_resolver = self.admission.class_of
        return self.admission

    def configure_slo(self, policy) -> None:
        """Install declarative per-QoS-class SLO targets
        (:class:`~repro.telemetry.slo.SloPolicy`); violations emit
        ``slo_violation`` events and flight-recorder dumps."""
        self._telemetry.set_slo_policy(policy)

    def enable_service_supervision(
        self, restart_delay: float = 0.02
    ) -> "ServiceSupervisor":
        """Arm the supervisor that restarts crashed services from the
        journal after ``restart_delay`` simulated seconds."""
        from .supervisor import ServiceSupervisor

        if self.supervisor is None:
            self.supervisor = ServiceSupervisor(
                self, restart_delay=restart_delay
            )
        else:
            self.supervisor.restart_delay = restart_delay
        return self.supervisor

    def enable_elasticity(
        self, policy: Optional["ElasticPolicy"] = None
    ) -> "ElasticCoordinator":
        """Arm live membership changes (elastic grow/shrink) for every
        communicator; see :class:`~repro.core.elastic.ElasticCoordinator`."""
        from .elastic import ElasticCoordinator

        if self.elastic is None:
            self.elastic = ElasticCoordinator(self, policy)
        elif policy is not None:
            self.elastic.policy = policy
        return self.elastic

    def crash_service(self, host_id: int) -> None:
        """Kill one host's service process (the host itself survives)."""
        self.service_of(host_id).crash()

    def restart_service(self, host_id: int) -> int:
        """Restart one host's service by journal replay; returns the
        number of records replayed (0 when already alive)."""
        return self.service_of(host_id).restart()

    def _journal_commit(self, comm: ServiceCommunicator, strategy) -> None:
        """on_commit hook: journal every freshly committed strategy."""
        self.journal.append(
            self.sim.now,
            "install_strategy",
            comm_id=comm.comm_id,
            strategy=strategy_descriptor(strategy),
        )

    def control_state(self) -> ControlPlaneState:
        """Snapshot of the live control plane in journal-comparable form."""
        return snapshot_deployment(self)

    def verify_journal(self) -> List[str]:
        """Replay the journal and diff it against the live control plane.

        Returns the (empty when consistent) list of mismatch descriptions;
        the crash/restart tests assert it stays empty across kill cycles.
        """
        from .journal import replay_journal

        return replay_journal(self.journal.records()).diff(self.control_state())

    def resilience_stats(self) -> Dict[str, int]:
        """Provider for the telemetry summary's resilience lines."""
        stats = {
            "journal_records": len(self.journal),
            "journal_appends": self.journal.appends_total,
            "service_crashes": sum(
                service.crashes for service in self.services.values()
            ),
            "service_restarts": sum(
                service.restarts for service in self.services.values()
            ),
            "upgrades": sum(
                len(service.upgrades) for service in self.services.values()
            ),
        }
        if self.admission is not None:
            stats["admitted"] = self.admission.admitted_total
            stats["shed"] = self.admission.shed_total
        return stats

    # ------------------------------------------------------------------
    # strategy autotuning
    # ------------------------------------------------------------------
    def enable_autotuning(
        self,
        config: Optional["AutotuneConfig"] = None,
        *,
        planner: Optional["StrategyPlanner"] = None,
        table: Optional["TuningTable"] = None,
    ) -> "AutoTuner":
        """Arm the online autotuner for every (current and future)
        communicator.

        The tuner feeds measured collective durations into a
        bounded-exploration bandit per (kind, world, size-bucket) and
        applies strategy changes exclusively through the §4.2
        reconfiguration barrier.

        Args:
            config: Bandit/exploration knobs; defaults to
                :class:`~repro.autotune.AutotuneConfig`.
            planner: Offline planner to seed arms from; defaults to one
                built on this deployment's cluster and latency model.
            table: A (possibly pre-planned, possibly loaded-from-JSON)
                tuning table; defaults to an empty one that grows online.
        """
        from ..autotune import AutoTuner

        if self.autotuner is None:
            self.autotuner = AutoTuner(
                self, config=config, planner=planner, table=table
            )
        elif config is not None:
            self.autotuner.config = config
        for comm in self._comms.values():
            self.autotuner.attach(comm)
        return self.autotuner

    # ------------------------------------------------------------------
    # application-facing entry point
    # ------------------------------------------------------------------
    def connect(self, app_id: str) -> "MccsClient":
        """Attach an application; returns its shim library instance."""
        from .shim import MccsClient

        return MccsClient(self, app_id)

    def service_of(self, host_id: int) -> MccsService:
        return self.services[host_id]

    def service_of_gpu(self, gpu: GpuDevice) -> MccsService:
        return self.services[gpu.host_id]

    # ------------------------------------------------------------------
    # request handlers invoked by the frontend engines
    # ------------------------------------------------------------------
    def handle_create_communicator(
        self, app_id: str, request: CreateCommunicatorRequest
    ) -> CreateCommunicatorResponse:
        gpus = [self.cluster.gpu(i) for i in request.gpu_global_ids]
        comm = self.create_communicator(app_id, gpus)
        root_host = self.cluster.hosts[gpus[0].host_id]
        handle = root_host.ipc.export_event(comm.comm_event)
        return CreateCommunicatorResponse(comm_id=comm.comm_id, done_event=handle)

    def create_communicator(
        self,
        app_id: str,
        gpus: Sequence[GpuDevice],
        *,
        channels: Optional[int] = None,
        strategy: Optional[CollectiveStrategy] = None,
        datapath_tag: Optional[str] = None,
    ) -> ServiceCommunicator:
        """Create a communicator; the tenant's rank order is preserved but
        the *strategy* belongs to the provider from here on."""
        if channels is None:
            channels = default_channels(gpus)
        if strategy is None:
            if self.strategy_factory is not None:
                strategy = self.strategy_factory(app_id, gpus, channels)
            else:
                strategy = default_strategy(len(gpus), channels)
        trace = None
        comm = ServiceCommunicator(
            self.cluster,
            app_id,
            gpus,
            strategy,
            latency=self.latency,
            ecmp_seed=self.ecmp_seed,
            gate=self.gates.gate_for(app_id),
            strict_consistency=self.strict_consistency,
            telemetry=self._telemetry,
            datapath_tag=datapath_tag,
        )
        comm.trace = self.traces.trace_for(comm.comm_id, app_id)
        self.journal.append(
            self.sim.now,
            "create_communicator",
            app=app_id,
            comm_id=comm.comm_id,
            gpus=[gpu.global_id for gpu in gpus],
            strategy=strategy_descriptor(comm.strategy),
        )
        comm.on_commit = self._journal_commit
        self._comms[comm.comm_id] = comm
        self._comm_owner[comm.comm_id] = app_id
        for rank, gpu in enumerate(comm.gpus):
            self.service_of_gpu(gpu).proxy_for(gpu.global_id).register(comm, rank)
        if self.recovery is not None:
            self.recovery.attach(comm)
        if self.autotuner is not None:
            self.autotuner.attach(comm)
        return comm

    def handle_destroy_communicator(
        self, app_id: str, request: DestroyCommunicatorRequest
    ) -> None:
        comm = self._owned_comm(app_id, request.comm_id)
        if comm.active_instances:
            raise CommunicatorError(
                f"communicator {comm.comm_id} still has "
                f"{len(comm.active_instances)} collective(s) in flight"
            )
        self.journal.append(
            self.sim.now, "destroy_communicator", app=app_id, comm_id=comm.comm_id
        )
        for rank, gpu in enumerate(comm.gpus):
            self.service_of_gpu(gpu).proxy_for(gpu.global_id).unregister(comm, rank)
        for version in comm.datapath.live_versions():
            comm.datapath.retire(version)
        comm.destroyed = True
        del self._comms[comm.comm_id]
        del self._comm_owner[comm.comm_id]

    def handle_collective(
        self, app_id: str, request: CollectiveRequest
    ) -> CollectiveResponse:
        """Validate, sequence, and enqueue one collective (§4.1).

        The request is turned into a :class:`CollectiveInstance` whose
        kernel is enqueued on the communicator's service stream; when the
        kernel starts, the launch fans out to each rank's proxy engine.
        """
        comm = self._owned_comm(app_id, request.comm_id)
        self._check_not_aborted(comm)
        if request.out_bytes <= 0:
            raise CommunicatorError("collective size must be positive")
        send_views, recv_views = self._validated_views(app_id, comm, request)
        seq = comm.next_seq
        comm.next_seq += 1
        tracer = self._telemetry.causal
        trace_ctx = None
        if tracer is not None:
            trace_ctx = tracer.mint_context(
                tenant=app_id,
                comm_id=f"comm{comm.comm_id}",
                seq=seq,
                kind=request.kind.value,
                nbytes=request.out_bytes,
                strategy_version=comm.strategy.version,
            )
            tracer.begin(trace_ctx, self.sim.now)
        self.journal.append(
            self.sim.now,
            "collective_issued",
            app=app_id,
            comm_id=comm.comm_id,
            seq=seq,
            kind=request.kind.value,
            bytes=request.out_bytes,
            **(
                {"trace": trace_ctx.trace_id} if trace_ctx is not None else {}
            ),
        )
        span = self._telemetry.spans.begin(
            f"{request.kind.value} comm{comm.comm_id}.s{seq}",
            self.sim.now,
            category="collective",
            app=app_id,
            comm=f"comm{comm.comm_id}",
            seq=seq,
            kind=request.kind.value,
            bytes=request.out_bytes,
            **(
                {"trace": trace_ctx.trace_id} if trace_ctx is not None else {}
            ),
        )
        comm.trace.record_issue(
            seq, request.kind, request.out_bytes, self.sim.now, span=span
        )
        self._telemetry.metrics.counter(
            "mccs_collectives_issued_total",
            "Collectives accepted by the frontend, by app and kind.",
        ).inc(app=app_id, kind=request.kind.value)
        instance = CollectiveInstance(
            comm=comm,
            seq=seq,
            kind=request.kind,
            out_bytes=request.out_bytes,
            reduce_op=request.reduce_op,
            root=request.root,
            issue_time=self.sim.now,
            dtype=request.dtype,
            send_views=send_views,
            recv_views=recv_views,
        )
        instance.trace_ctx = trace_ctx
        if trace_ctx is not None and tracer is not None:
            trace = tracer.get(trace_ctx.trace_id)
            if trace is not None:
                trace.root_span_id = span.span_id
        comm.instances.append(instance)
        comm.active_instances.add(seq)
        instance.attach_span(span)

        root_host = self.cluster.hosts[comm.gpus[0].host_id]
        if request.stream_event is not None:
            app_event = root_host.ipc.open_event(request.stream_event)
            comm.stream.wait_event(app_event)

        def fan_out() -> None:
            if comm.aborted and not instance.aborted:
                # The communicator died while this kernel sat queued on
                # the stream: terminate the instance (completing the
                # kernel) so the stream keeps draining for waiters.
                instance.abort(
                    comm.abort_error
                    if comm.abort_error is not None
                    else CommunicatorError(f"communicator {comm.comm_id} aborted")
                )
                return
            for rank, gpu in enumerate(comm.gpus):
                proxy = self.service_of_gpu(gpu).proxy_for(gpu.global_id)
                proxy.request_launch(rank, instance)

        kernel = AsyncOp(name=f"comm{comm.comm_id}.seq{seq}", on_start=fan_out)
        instance.kernel = kernel
        comm.stream.enqueue(kernel)
        done_event = Event(name=f"comm{comm.comm_id}.seq{seq}.done")
        instance.done_event = done_event
        comm.stream.record_event(done_event)
        self._arm_deadline(comm, instance)
        handle = root_host.ipc.export_event(done_event)
        return CollectiveResponse(comm_id=comm.comm_id, seq=seq, done_event=handle)

    def _arm_deadline(
        self, comm: ServiceCommunicator, instance: CollectiveInstance
    ) -> None:
        """Watchdog: a collective that neither completes nor aborts within
        the recovery policy's deadline surfaces a typed timeout.

        The watchdog re-arms after firing so a stalled retry keeps being
        reported; recovery's attempt cap (or instance completion) stops it.
        """
        if self.recovery is None:
            return
        deadline = self.recovery.policy.collective_deadline
        if deadline is None:
            return

        def expired() -> None:
            if instance.completed or instance.aborted or comm.destroyed:
                return
            error = CollectiveTimeoutError(
                f"collective seq={instance.seq} on comm {comm.comm_id} "
                f"exceeded its {deadline:g}s deadline "
                f"(attempt {instance.attempts})"
            )
            if instance.error is None:
                instance.error = error
            self._telemetry.metrics.counter(
                "mccs_collective_deadlines_total",
                "Collective deadline expiries detected by the watchdog.",
            ).inc(app=comm.app_id)
            self._telemetry.slo.record_deadline_miss(comm.app_id)
            if self._telemetry.flight is not None:
                self._telemetry.flight.trigger(
                    "deadline",
                    self.sim.now,
                    trace_id=(
                        instance.trace_ctx.trace_id
                        if instance.trace_ctx is not None
                        else None
                    ),
                    comm=comm.comm_id,
                    seq=instance.seq,
                    attempt=instance.attempts,
                )
            comm.on_instance_failure(instance, None, error)
            self.sim.call_in(deadline, expired)

        self.sim.call_in(deadline, expired)

    def handle_p2p(self, app_id: str, request) -> "P2pResponse":
        """Point-to-point transfer between two ranks (§5 extension).

        P2P ops serialize on the communicator's service stream like
        collectives, but do not participate in the reconfiguration
        sequence numbering — they involve only two ranks, so the Figure 4
        barrier (which relies on every collective involving every rank)
        does not apply; they simply use whatever connections the current
        strategy version provides.
        """
        from .messages import P2pRequest, P2pResponse

        assert isinstance(request, P2pRequest)
        comm = self._owned_comm(app_id, request.comm_id)
        self._check_not_aborted(comm)
        if request.nbytes <= 0:
            raise CommunicatorError("transfer size must be positive")
        if not (
            0 <= request.src_rank < comm.world
            and 0 <= request.dst_rank < comm.world
        ) or request.src_rank == request.dst_rank:
            raise CommunicatorError(
                f"bad p2p ranks ({request.src_rank} -> {request.dst_rank})"
            )
        dtype = np.dtype(request.dtype)
        send_view = recv_view = None
        if request.send_ref is not None:
            if request.send_ref.nbytes != request.nbytes:
                raise InvalidBufferError("send buffer size mismatch")
            manager = self.service_of_gpu(comm.gpus[request.src_rank]).memory
            send_view = manager.view(app_id, request.send_ref, dtype)
        if request.recv_ref is not None:
            if request.recv_ref.nbytes != request.nbytes:
                raise InvalidBufferError("recv buffer size mismatch")
            manager = self.service_of_gpu(comm.gpus[request.dst_rank]).memory
            recv_view = manager.view(app_id, request.recv_ref, dtype)

        root_host = self.cluster.hosts[comm.gpus[0].host_id]
        if request.stream_event is not None:
            app_event = root_host.ipc.open_event(request.stream_event)
            comm.stream.wait_event(app_event)
        done_event = Event(name=f"comm{comm.comm_id}.p2p.done")

        def start() -> None:
            strategy = comm.strategy
            comm.datapath.acquire(strategy.version)
            fixed = comm.latency.collective_latency(1)

            def inject() -> None:
                table, selector = comm.datapath.table_for(strategy, comm.gpus)
                conn = table.establish_edge(
                    comm.gpus[request.src_rank],
                    comm.gpus[request.dst_rank],
                    0,
                    selector,
                )
                flow = self.sim.add_flow(
                    request.nbytes,
                    conn.path,
                    job_id=comm.app_id,
                    tags={"comm": comm.comm_id, "p2p": True},
                    on_complete=lambda _f, _t: finish(),
                )
                if comm.gate is not None:
                    comm.gate.register(flow)

            def finish() -> None:
                if send_view is not None and recv_view is not None:
                    np.copyto(recv_view, send_view)
                comm.datapath.release(strategy.version, comm.strategy.version)
                kernel.complete()

            self.sim.call_in(fixed, inject)

        kernel = AsyncOp(name=f"comm{comm.comm_id}.p2p", on_start=start)
        comm.stream.enqueue(kernel)
        comm.stream.record_event(done_event)
        handle = root_host.ipc.export_event(done_event)
        return P2pResponse(comm_id=comm.comm_id, done_event=handle)

    def program_cache_stats(self) -> Dict[str, int]:
        """Aggregate flow-program cache stats over all live communicators
        (the provider for the ``mccs_program_cache_*`` gauges)."""
        totals = {"size": 0, "hits": 0, "misses": 0, "evictions": 0}
        for comm in self._comms.values():
            for name, value in comm.program_cache.stats().items():
                totals[name] += value
        return totals

    def network_utilization(self, min_utilization: float = 0.0) -> Dict[str, float]:
        """Provider-side view of current link utilization (never exposed
        to tenants — the confidentiality point of §2.2)."""
        return self.sim.link_utilization(min_utilization)

    def _validated_views(
        self, app_id: str, comm: ServiceCommunicator, request: CollectiveRequest
    ) -> Tuple[Optional[List], Optional[List]]:
        """Bounds-check buffer references and materialize numpy views."""
        if not request.send_refs:
            return None, None
        if len(request.send_refs) != comm.world:
            raise InvalidBufferError("need one send buffer per rank")
        dtype = np.dtype(request.dtype)
        expected = input_bytes(request.kind, request.out_bytes, comm.world)
        send_views = []
        for rank, ref in enumerate(request.send_refs):
            if ref.nbytes != expected:
                raise InvalidBufferError(
                    f"rank {rank} send buffer is {ref.nbytes} bytes; "
                    f"{request.kind} of {request.out_bytes} needs {expected}"
                )
            manager = self.service_of_gpu(comm.gpus[rank]).memory
            send_views.append(manager.view(app_id, ref, dtype))
        recv_views = None
        if request.recv_refs:
            if len(request.recv_refs) != comm.world:
                raise InvalidBufferError("need one recv buffer per rank")
            recv_views = []
            for rank, ref in enumerate(request.recv_refs):
                if ref.nbytes != request.out_bytes:
                    raise InvalidBufferError(
                        f"rank {rank} recv buffer is {ref.nbytes} bytes; the "
                        f"output-buffer convention requires {request.out_bytes}"
                    )
                manager = self.service_of_gpu(comm.gpus[rank]).memory
                recv_views.append(manager.view(app_id, ref, dtype))
        return send_views, recv_views

    def _check_not_aborted(self, comm: ServiceCommunicator) -> None:
        if comm.aborted:
            raise CommunicatorError(
                f"communicator {comm.comm_id} was aborted by failure "
                f"recovery: {comm.abort_error}"
            )

    def _owned_comm(self, app_id: str, comm_id: int) -> ServiceCommunicator:
        comm = self._comms.get(comm_id)
        if comm is None:
            raise CommunicatorError(f"unknown communicator {comm_id}")
        if self._comm_owner[comm_id] != app_id:
            raise CommunicatorError(
                f"communicator {comm_id} belongs to "
                f"{self._comm_owner[comm_id]!r}, not {app_id!r}"
            )
        return comm

    # ------------------------------------------------------------------
    # provider-facing management API (§4.3)
    # ------------------------------------------------------------------
    def communicators(self) -> List[ServiceCommunicator]:
        return list(self._comms.values())

    def communicator(self, comm_id: int) -> ServiceCommunicator:
        try:
            return self._comms[comm_id]
        except KeyError:
            raise CommunicatorError(f"unknown communicator {comm_id}") from None

    def describe(self) -> List[Dict[str, object]]:
        """Cluster-wide snapshot for the centralized controller."""
        return [comm.describe() for comm in self._comms.values()]

    def trace(self, comm_id: int) -> CommTrace:
        trace = self.traces.get(comm_id)
        if trace is None:
            raise CommunicatorError(f"no trace for communicator {comm_id}")
        return trace

    def telemetry(self) -> TelemetryHub:
        """Provider-side observability surface: metrics, spans, decision
        events, and link-utilization series, with exporters attached
        (:meth:`TelemetryHub.to_prometheus`, :meth:`~TelemetryHub.to_json`,
        :meth:`~TelemetryHub.to_chrome_trace`)."""
        return self._telemetry

    def proxies_of(self, comm: ServiceCommunicator) -> List[ProxyEngine]:
        return [
            self.service_of_gpu(gpu).proxy_for(gpu.global_id) for gpu in comm.gpus
        ]

    def reconfigure(
        self,
        comm_id: int,
        *,
        ring: Optional[Sequence[int]] = None,
        routes: Optional[Dict[Tuple[int, int, int], int]] = None,
        channels: Optional[int] = None,
        algorithm: Optional[str] = None,
        delays: Optional[Sequence[float]] = None,
        barrier_enabled: bool = True,
        barrier_timeout: Optional[float] = None,
        on_done: Optional[Callable[[ReconfigSession], None]] = None,
        on_failed: Optional[Callable[[ReconfigSession], None]] = None,
    ) -> ReconfigSession:
        """Provider command: move a communicator to a new strategy."""
        from ..collectives.ring import RingSchedule

        comm = self.communicator(comm_id)
        self._check_not_aborted(comm)
        new_strategy = comm.strategy.evolve(
            ring=RingSchedule(tuple(ring)) if ring is not None else None,
            channels=channels,
            algorithm=algorithm,
            routes=routes,
        )
        return self.reconfig.reconfigure(
            comm,
            new_strategy,
            delays=delays,
            barrier_enabled=barrier_enabled,
            control_latency=self.control_latency,
            barrier_timeout=barrier_timeout,
            on_done=on_done,
            on_failed=on_failed,
        )

    def set_traffic_schedule(
        self, app_id: str, schedule: Optional[WindowSchedule]
    ) -> None:
        """Install (or clear) TS transmission windows for a tenant."""
        self.gates.set_schedule(app_id, schedule)

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Advance the shared simulation clock (driver convenience)."""
        return self.sim.run(until=until)
