"""Failure detection and recovery for MCCS communicators.

The MCCS premise is that collective communication is a *managed service*:
when infrastructure fails, the provider — not the tenant — reacts.  This
module is the provider's reaction.  It consumes the typed failure signals
the rest of the stack produces (failed flows, launches hitting a dead
proxy, reconfiguration-barrier timeouts, blown collective deadlines,
missed heartbeats) and drives the existing reconfiguration machinery to
repair the communicator:

1. **Quiesce** — the failed attempt's in-flight window is reset
   (surviving flows cancelled) so nothing races the repair.
2. **Reroute** — a new strategy version with an empty route map is pushed
   through the §4.2 barrier; connection tables rebuild and ECMP
   re-selects paths, which now exclude down links.
3. **Relaunch** — after a capped exponential backoff, every reset
   collective is relaunched in sequence order through the proxies.
4. **Degrade** — ranks on crashed hosts cannot be repaired: the
   communicator aborts with a typed :class:`CommunicatorError` (waiters
   unblock; co-located tenants are untouched) and, optionally, a
   successor communicator is formed on the surviving ranks.

Detection that does not ride on the data path lives here too: the
:class:`HeartbeatMonitor` probes every proxy engine on the simulation
clock so a crashed host is noticed even while its communicators are idle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from ..netsim.errors import (
    CollectiveTimeoutError,
    CommunicatorError,
    HeartbeatTimeoutError,
    HostCrashedError,
    LinkDownError,
    NicFailedError,
    NoPathError,
    ReconfigurationError,
    ServiceCrashedError,
    ServiceUnavailableError,
)
from .communicator import CollectiveInstance, ServiceCommunicator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .deployment import MccsDeployment
    from .proxy import ProxyEngine
    from .reconfig import ReconfigSession


@dataclass
class RecoveryPolicy:
    """Knobs of the failure-recovery state machine."""

    #: Repair attempts per failure episode before the communicator aborts.
    max_attempts: int = 3
    #: First-retry backoff; doubles (``backoff_factor``) up to the cap.
    backoff_base: float = 0.005
    backoff_factor: float = 2.0
    backoff_cap: float = 0.1
    #: Reconfiguration barriers abandon after this long (a dead rank never
    #: contributes; without a timeout the repair itself would hang).
    barrier_timeout: float = 0.05
    #: Proxy liveness probe period for the :class:`HeartbeatMonitor`.
    heartbeat_interval: float = 0.01
    #: Per-collective issue-to-completion deadline armed by the
    #: deployment; ``None`` disables the watchdog.
    collective_deadline: Optional[float] = 1.0
    #: After a host crash aborts a communicator, form a successor
    #: communicator on the surviving ranks.
    reform_on_crash: bool = True
    #: How long a repair episode waits for a crashed *service* to be
    #: restarted by the supervisor before giving the communicator up.
    restart_wait: float = 1.0
    #: Poll period while waiting on a pending service restart (the wait
    #: consumes no repair attempts — the outage, not the repair, is slow).
    restart_poll: float = 0.01


def fault_kind(error: BaseException) -> str:
    """Telemetry label for a failure's root cause."""
    if isinstance(error, (ServiceCrashedError, ServiceUnavailableError)):
        # Must precede the host-crash arm: ServiceCrashedError subclasses
        # the same FaultError family but the host (and its GPUs) survive.
        return "service_crash"
    if isinstance(error, (HostCrashedError, HeartbeatTimeoutError)):
        return "host_crash"
    if isinstance(error, NicFailedError):
        return "nic_fail"
    if isinstance(error, (LinkDownError, NoPathError)):
        # A partition with no surviving path is the terminal form of
        # link loss; recovery treats both as reroutable network faults.
        return "link_down"
    if isinstance(error, CollectiveTimeoutError):
        return "timeout"
    if isinstance(error, ReconfigurationError):
        return "reconfig"
    return "other"


@dataclass
class _CommRecovery:
    """One failure episode on one communicator (first failure to verdict)."""

    comm: ServiceCommunicator
    started_at: float
    attempt: int = 0
    errors: List[BaseException] = field(default_factory=list)
    cycle_scheduled: bool = False
    retrying: List[CollectiveInstance] = field(default_factory=list)
    hooked: Set[int] = field(default_factory=set)
    kind: str = "other"


class RecoveryManager:
    """Drives repair cycles for every communicator of a deployment.

    Installed as each communicator's ``failure_handler`` (see
    :meth:`MccsDeployment.enable_recovery`).  Failures arriving in the
    same instant coalesce into one cycle via a zero-delay event, which
    also escapes reentrancy — a repair never runs inside the simulator
    callback that reported the failure.
    """

    def __init__(
        self,
        deployment: "MccsDeployment",
        policy: Optional[RecoveryPolicy] = None,
    ) -> None:
        self.deployment = deployment
        self.sim = deployment.sim
        self.policy = policy if policy is not None else RecoveryPolicy()
        self.telemetry = deployment.telemetry()
        self._cycles: Dict[int, _CommRecovery] = {}
        #: Aborted-comm id -> successor communicator formed on survivors.
        self.reformed: Dict[int, ServiceCommunicator] = {}
        #: Chronological audit of detection/repair decisions.
        self.audit: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    def attach(self, comm: ServiceCommunicator) -> None:
        comm.failure_handler = self.handle_failure

    def recovering(self, comm_id: int) -> bool:
        return comm_id in self._cycles

    def membership_changed(self, comm: ServiceCommunicator, kind: str) -> None:
        """Elastic-coordinator notification: ``comm`` grew or shrank.

        Any in-flight repair episode is obsolete — its quiesced window and
        rank bookkeeping referred to the old rank numbering — so the
        episode is dropped; fresh failures on the new membership open a
        fresh one.  ``kind`` is ``"rank_join"`` or ``"rank_leave"``.
        """
        self._cycles.pop(comm.comm_id, None)
        self._log(
            comm,
            "membership_changed",
            f"kind={kind} epoch={comm.membership_epoch} world={comm.world}",
        )

    def _log(self, comm: ServiceCommunicator, event: str, detail: str) -> None:
        entry = {
            "time": self.sim.now,
            "comm": comm.comm_id,
            "app": comm.app_id,
            "event": event,
            "detail": detail,
        }
        self.audit.append(entry)
        self.telemetry.events.log(
            self.sim.now, event, detail, comm=comm.comm_id, app=comm.app_id
        )

    # ------------------------------------------------------------------
    # failure intake
    # ------------------------------------------------------------------
    def handle_failure(
        self,
        comm: ServiceCommunicator,
        instance: Optional[CollectiveInstance],
        rank: Optional[int],
        error: BaseException,
    ) -> None:
        """Entry point wired into ``ServiceCommunicator.failure_handler``."""
        if comm.aborted or comm.destroyed:
            return
        rec = self._cycles.get(comm.comm_id)
        if rec is None:
            rec = _CommRecovery(comm=comm, started_at=self.sim.now)
            self._cycles[comm.comm_id] = rec
            where = f"seq={instance.seq} " if instance is not None else ""
            self._log(comm, "failure_detected", f"{where}rank={rank}: {error}")
        if instance is not None:
            instance._causal_annotate(
                "failure_detected", rank=rank, error=str(error)
            )
        rec.errors.append(error)
        self._schedule_cycle(rec)

    def proxy_dead(self, proxy: "ProxyEngine") -> None:
        """Heartbeat-monitor callback: a proxy stopped answering."""
        error = HeartbeatTimeoutError(
            f"proxy of GPU {proxy.gpu_global_id} on host {proxy.host_id} "
            "missed its heartbeat"
        )
        for comm_id, rank in list(proxy._ranks.keys()):
            try:
                comm = self.deployment.communicator(comm_id)
            except CommunicatorError:
                continue
            self.handle_failure(comm, None, rank, error)

    # ------------------------------------------------------------------
    # the repair cycle
    # ------------------------------------------------------------------
    def _schedule_cycle(self, rec: _CommRecovery, delay: float = 0.0) -> None:
        if rec.cycle_scheduled:
            return
        rec.cycle_scheduled = True
        self.sim.call_in(delay, lambda: self._run_cycle(rec))

    def _run_cycle(self, rec: _CommRecovery) -> None:
        rec.cycle_scheduled = False
        comm = rec.comm
        if (
            comm.aborted
            or comm.destroyed
            or self._cycles.get(comm.comm_id) is not rec
        ):
            return
        if rec.errors:
            rec.kind = fault_kind(rec.errors[0])
        waiting = self._restarting_hosts(comm)
        if waiting:
            # A crashed service with a pending supervised restart is dark,
            # not dead: hold the episode (consuming no repair attempts)
            # until the service is back or the wait budget runs out.
            if self.sim.now - rec.started_at > self.policy.restart_wait:
                self._give_up(
                    rec,
                    CommunicatorError(
                        f"communicator {comm.comm_id} waited "
                        f"{self.policy.restart_wait:g}s but the service on "
                        f"host(s) {waiting} never restarted: "
                        f"{rec.errors[0] if rec.errors else 'service down'}"
                    ),
                )
                return
            rec.kind = "service_crash"
            self._schedule_cycle(rec, delay=self.policy.restart_poll)
            return
        rec.attempt += 1
        dead = self._dead_ranks(comm)
        if dead:
            # Crashed ranks cannot be repaired by rerouting; classify the
            # episode by its true cause even if a link error arrived first.
            if rec.kind != "service_crash":
                rec.kind = "host_crash"
            self._give_up(
                rec,
                CommunicatorError(
                    f"communicator {comm.comm_id} lost rank(s) {dead}: "
                    f"{rec.errors[0] if rec.errors else 'heartbeat missed'}"
                ),
            )
            return
        if rec.attempt > self.policy.max_attempts:
            self._give_up(
                rec,
                CommunicatorError(
                    f"communicator {comm.comm_id} recovery exhausted after "
                    f"{self.policy.max_attempts} attempt(s): {rec.errors[-1]}"
                ),
            )
            return

        # 1. Quiesce: reset every started-but-unfinished collective of the
        #    in-flight window (queued ones relaunch through the normal
        #    path once their turn comes).
        window = [comm.instances[seq] for seq in sorted(comm.active_instances)]
        rec.retrying = [
            inst
            for inst in window
            if inst.launch_started and not inst.completed and not inst.aborted
        ]
        for inst in rec.retrying:
            inst.reset_for_retry()
            if inst.seq not in rec.hooked:
                rec.hooked.add(inst.seq)
                previous = inst.on_complete

                def hook(
                    instance: CollectiveInstance,
                    now: float,
                    previous=previous,
                ) -> None:
                    if previous is not None:
                        previous(instance, now)
                    self._retried_completed(rec, instance)

                inst.on_complete = hook

        backoff = min(
            self.policy.backoff_base
            * self.policy.backoff_factor ** (rec.attempt - 1),
            self.policy.backoff_cap,
        )
        self._log(
            comm,
            "recovery_attempt",
            f"attempt {rec.attempt} kind={rec.kind} "
            f"retrying={[inst.seq for inst in rec.retrying]} "
            f"backoff={backoff:g}s",
        )
        for inst in rec.retrying:
            inst._causal_annotate(
                "recovery_attempt",
                attempt=rec.attempt,
                fault=rec.kind,
                backoff_s=backoff,
            )

        attempt = rec.attempt

        def reconfigured(_session: "ReconfigSession") -> None:
            self.sim.call_in(backoff, relaunch)

        def relaunch() -> None:
            if (
                comm.aborted
                or self._cycles.get(comm.comm_id) is not rec
                or rec.attempt != attempt
            ):
                # A newer cycle took over this episode (e.g. a deadline
                # fired between our reset and this delayed relaunch);
                # its relaunch supersedes ours.
                return
            proxies = self.deployment.proxies_of(comm)
            retried = self.telemetry.metrics.counter(
                "mccs_collectives_retried_total",
                "Collective relaunches driven by failure recovery.",
            )
            for inst in rec.retrying:
                if inst.aborted:
                    continue
                retried.inc(app=comm.app_id, kind=inst.kind.value)
                for rank, proxy in enumerate(proxies):
                    proxy.relaunch(rank, inst)
            if not rec.retrying:
                # Nothing was in flight: rerouting alone was the repair.
                self._succeed(rec)

        # 2. Reroute: bump the strategy version with an empty route map.
        #    Connection tables rebuild for the new version and ECMP
        #    re-selects paths, which exclude links that are down.
        try:
            self.deployment.reconfigure(
                comm.comm_id,
                routes={},
                barrier_timeout=self.policy.barrier_timeout,
                on_done=reconfigured,
                on_failed=lambda session: self._reconfig_failed(rec, session),
            )
        except ReconfigurationError as exc:
            # A session is already in flight (provider-driven or a
            # previous cycle's): let it settle and try again.
            rec.errors.append(exc)
            self._schedule_cycle(rec, delay=backoff)

    def _reconfig_failed(
        self, rec: _CommRecovery, session: "ReconfigSession"
    ) -> None:
        if session.error is not None:
            rec.errors.append(session.error)
        self._schedule_cycle(rec)

    def _retried_completed(
        self, rec: _CommRecovery, _instance: CollectiveInstance
    ) -> None:
        comm = rec.comm
        if comm.aborted or self._cycles.get(comm.comm_id) is not rec:
            return
        if all(inst.completed or inst.aborted for inst in rec.retrying):
            self._succeed(rec)

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------
    def _succeed(self, rec: _CommRecovery) -> None:
        comm = rec.comm
        if self._cycles.get(comm.comm_id) is not rec or rec.cycle_scheduled:
            return  # a newer failure already restarted the episode
        del self._cycles[comm.comm_id]
        duration = self.sim.now - rec.started_at
        self.telemetry.metrics.histogram(
            "mccs_recovery_seconds",
            "First-failure-to-recovered time of repair episodes, by fault kind.",
        ).observe(duration, kind=rec.kind)
        self._log(
            comm,
            "recovery_succeeded",
            f"kind={rec.kind} attempts={rec.attempt} duration={duration:g}s",
        )

    def _give_up(self, rec: _CommRecovery, error: CommunicatorError) -> None:
        comm = rec.comm
        self._cycles.pop(comm.comm_id, None)
        self.telemetry.metrics.counter(
            "mccs_comms_aborted_total",
            "Communicators degraded to aborted after unrecoverable faults.",
        ).inc(kind=rec.kind)
        comm.abort(error)
        self._log(comm, "recovery_gave_up", f"kind={rec.kind}: {error}")
        if self.policy.reform_on_crash and rec.kind == "host_crash":
            self._reform(comm)

    def _reform(self, comm: ServiceCommunicator) -> None:
        """Form a successor communicator on the surviving ranks."""
        cluster = self.deployment.cluster
        survivors = [g for g in comm.gpus if cluster.hosts[g.host_id].alive]
        if len(survivors) < 2:
            # Terminal, not silent: a communicator that cannot be re-formed
            # is an operator-visible verdict (the tenant has nothing left
            # to fail over to), so emit a typed event and a counter to
            # alert on instead of burying it in the audit trail.
            self._log(
                comm,
                "reform_skipped_unrecoverable",
                f"comm{comm.comm_id} not re-formed: only {len(survivors)} "
                f"surviving rank(s), need 2",
            )
            self.telemetry.metrics.counter(
                "mccs_reform_skipped_total",
                "Survivor re-formations skipped because fewer than two "
                "ranks survived (the communicator is unrecoverable).",
            ).inc(app=comm.app_id)
            return
        successor = self.deployment.create_communicator(comm.app_id, survivors)
        self.reformed[comm.comm_id] = successor
        self._log(
            comm,
            "comm_reformed",
            f"comm{comm.comm_id} -> comm{successor.comm_id} on "
            f"{len(survivors)} surviving rank(s)",
        )

    # ------------------------------------------------------------------
    def _dead_ranks(self, comm: ServiceCommunicator) -> List[int]:
        dead = []
        for rank, proxy in enumerate(self.deployment.proxies_of(comm)):
            host = self.deployment.cluster.hosts[comm.gpus[rank].host_id]
            if not host.alive:
                dead.append(rank)
                continue
            if proxy.alive:
                continue
            # Dead proxy on a live host: a service crash.  The rank is
            # only lost if nothing will bring the service back.
            supervisor = self.deployment.supervisor
            if supervisor is not None and supervisor.restart_pending(
                host.host_id
            ):
                continue
            if not self.deployment.service_of(host.host_id).alive:
                dead.append(rank)
        return dead

    def _restarting_hosts(self, comm: ServiceCommunicator) -> List[int]:
        """Hosts of this communicator whose service is down but has a
        supervised restart pending."""
        supervisor = self.deployment.supervisor
        if supervisor is None:
            return []
        hosts = sorted({gpu.host_id for gpu in comm.gpus})
        return [
            host_id
            for host_id in hosts
            if not self.deployment.service_of(host_id).alive
            and supervisor.restart_pending(host_id)
        ]


class HeartbeatMonitor:
    """Periodic liveness probe of every proxy engine.

    The proxies of a crashed host stop answering; the first missed probe
    reports each dead proxy to the :class:`RecoveryManager` exactly once.
    The monitor is self-stopping at ``until`` — the simulator runs to
    quiescence, so an unbounded ticker would never let it terminate.
    """

    def __init__(
        self,
        deployment: "MccsDeployment",
        manager: RecoveryManager,
        *,
        interval: float,
        until: float,
    ) -> None:
        if interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        self.deployment = deployment
        self.manager = manager
        self.interval = interval
        self.until = until
        self.sim = deployment.sim
        self.missed = 0
        self._reported: Set[int] = set()
        self._started = False

    def start(self) -> "HeartbeatMonitor":
        if not self._started:
            self._started = True
            self.sim.call_in(self.interval, self._tick)
        return self

    def _tick(self) -> None:
        now = self.sim.now
        supervisor = self.deployment.supervisor
        for service in self.deployment.services.values():
            if (
                supervisor is not None
                and supervisor.restart_pending(service.host.host_id)
            ):
                # Known-dark, not silently dead: the supervisor already
                # has a restart in flight for this service.
                continue
            for proxy in service.proxies.values():
                if proxy.heartbeat(now):
                    continue
                if proxy.gpu_global_id in self._reported:
                    continue
                self._reported.add(proxy.gpu_global_id)
                self.missed += 1
                self.manager.telemetry.metrics.counter(
                    "mccs_heartbeats_missed_total",
                    "Proxy liveness probes that went unanswered.",
                ).inc()
                if self.manager.telemetry.flight is not None:
                    self.manager.telemetry.flight.trigger(
                        "heartbeat_miss",
                        now,
                        gpu=proxy.gpu_global_id,
                        host=proxy.host_id,
                    )
                self.manager.proxy_dead(proxy)
        if now + self.interval <= self.until + 1e-12:
            self.sim.call_in(self.interval, self._tick)
