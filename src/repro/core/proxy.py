"""Proxy engines: per-GPU managers of collective launches (§4.2).

"For each GPU on a given host, MCCS initializes a single proxy engine that
handles all communicators which include that GPU in their ranks."  The
proxy is where the reconfiguration protocol lives: it tracks the sequence
number of the last collective it launched for each communicator, holds
subsequent launches while a reconfiguration barrier is pending, and
switches strategy versions only once the barrier resolves.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, Optional, Tuple

from ..netsim.errors import HostCrashedError, ReconfigurationError
from ..telemetry.spans import EVENT_HELD
from .communicator import CollectiveInstance, ServiceCommunicator
from .strategy import CollectiveStrategy

if TYPE_CHECKING:  # pragma: no cover - import cycle broken for type hints
    from ..telemetry.hub import TelemetryHub
    from .reconfig import ReconfigSession

CommRankKey = Tuple[int, int]
"""(comm_id, rank)"""


@dataclass
class _RankState:
    """Per-(communicator, rank) launch bookkeeping."""

    strategy: CollectiveStrategy
    launched_seq: int = -1
    holding: bool = False
    pending: Deque[CollectiveInstance] = field(default_factory=deque)
    session: Optional["ReconfigSession"] = None
    catch_up_max: Optional[int] = None
    hold_since: Optional[float] = None


class ProxyEngine:
    """The proxy engine of one GPU.

    The engine handles every communicator whose ranks include its GPU;
    multiple applications sharing the GPU share this engine (§5).
    """

    def __init__(
        self,
        host_id: int,
        gpu_global_id: int,
        telemetry: Optional["TelemetryHub"] = None,
    ) -> None:
        self.host_id = host_id
        self.gpu_global_id = gpu_global_id
        self.telemetry = telemetry
        self._ranks: Dict[CommRankKey, _RankState] = {}
        self.launches = 0
        self.reconfigurations = 0
        #: Cleared when the host crashes; dead proxies reject launches,
        #: stop answering heartbeats and never contribute to barriers.
        self.alive = True
        self.error: Optional[BaseException] = None
        self.heartbeats = 0

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    def fail(self, error: BaseException) -> None:
        """Kill this proxy (host crash).

        Queued launches fail immediately with ``error`` so their
        collectives surface a typed failure instead of waiting for a
        deadline; any reconfiguration this proxy was holding for is
        dropped (the session's barrier timeout reports it as missing).
        """
        if not self.alive:
            return
        self.alive = False
        self.error = error
        for (comm_id, rank), state in list(self._ranks.items()):
            pending = list(state.pending)
            state.pending.clear()
            state.holding = False
            state.catch_up_max = None
            state.session = None
            state.hold_since = None
            for instance in pending:
                instance.rank_failed(rank, error)

    def heartbeat(self, now: float) -> bool:
        """Answer a liveness probe; dead proxies do not answer."""
        if not self.alive:
            return False
        self.heartbeats += 1
        return True

    def _death_error(self) -> BaseException:
        if self.error is not None:
            return self.error
        return HostCrashedError(
            f"proxy of GPU {self.gpu_global_id} on host {self.host_id} is dead"
        )

    # ------------------------------------------------------------------
    def register(self, comm: ServiceCommunicator, rank: int) -> None:
        """Adopt rank ``rank`` of ``comm`` (called at communicator init)."""
        gpu = comm.gpus[rank]
        if gpu.global_id != self.gpu_global_id:
            raise ValueError(
                f"rank {rank} of comm {comm.comm_id} is on GPU "
                f"{gpu.global_id}, not {self.gpu_global_id}"
            )
        self._ranks[(comm.comm_id, rank)] = _RankState(strategy=comm.strategy)

    def unregister(self, comm: ServiceCommunicator, rank: int) -> None:
        self._ranks.pop((comm.comm_id, rank), None)

    def handles(self, comm_id: int, rank: int) -> bool:
        return (comm_id, rank) in self._ranks

    def state(self, comm_id: int, rank: int) -> _RankState:
        try:
            return self._ranks[(comm_id, rank)]
        except KeyError:
            raise KeyError(
                f"proxy of GPU {self.gpu_global_id} does not handle "
                f"rank {rank} of comm {comm_id}"
            ) from None

    def launched_seq(self, comm_id: int, rank: int) -> int:
        return self.state(comm_id, rank).launched_seq

    def current_strategy(self, comm_id: int, rank: int) -> CollectiveStrategy:
        return self.state(comm_id, rank).strategy

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def request_launch(self, rank: int, instance: CollectiveInstance) -> None:
        """Deliver a collective to this proxy for ``rank``.

        Launched immediately under the proxy's current strategy unless a
        reconfiguration barrier is pending, in which case the instance is
        queued ("after receiving a reconfiguration request, each proxy
        enqueues all subsequent collectives").  A proxy whose barrier has
        already resolved but that is still behind ``max_seq`` launches
        pre-barrier sequence numbers under the old strategy (catch-up).
        """
        if not self.alive:
            instance.rank_failed(rank, self._death_error())
            return
        state = self.state(instance.comm.comm_id, rank)
        if not state.holding:
            self._launch(state, rank, instance)
            return
        if (
            state.catch_up_max is not None
            and instance.seq <= state.catch_up_max
        ):
            self._launch(state, rank, instance, allow_holding=True)
            if state.launched_seq >= state.catch_up_max:
                self._apply(state, rank)
            return
        if instance.span is not None:
            instance.span.mark(
                EVENT_HELD, instance.comm.sim.now, rank=rank,
                gpu=self.gpu_global_id,
            )
        instance._causal_annotate(
            "launch_held", rank=rank, gpu=self.gpu_global_id
        )
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "mccs_launches_held_total",
                "Collective launches queued behind a reconfiguration barrier.",
            ).inc(comm=f"comm{instance.comm.comm_id}")
        state.pending.append(instance)

    def _launch(
        self,
        state: _RankState,
        rank: int,
        instance: CollectiveInstance,
        allow_holding: bool = False,
    ) -> None:
        if state.holding and not allow_holding:
            raise ReconfigurationError("launch attempted while holding")
        if instance.seq != state.launched_seq + 1:
            raise ReconfigurationError(
                f"proxy launch out of order: seq {instance.seq} after "
                f"{state.launched_seq} (comm {instance.comm.comm_id}, rank {rank})"
            )
        state.launched_seq = instance.seq
        if instance.aborted:
            # The sequence number is consumed (keeping the ordering
            # invariant for later collectives) but no traffic is injected.
            return
        self.launches += 1
        instance.rank_launch(rank, state.strategy)

    def relaunch(self, rank: int, instance: CollectiveInstance) -> None:
        """Re-launch a collective this proxy already launched once.

        Used by failure recovery after :meth:`CollectiveInstance.reset_for_retry`:
        the sequence number was consumed on the first attempt, so the
        ordering check of :meth:`_launch` does not apply — but only for
        sequence numbers at or below the launch cursor, which is what makes
        this safe.
        """
        if not self.alive:
            instance.rank_failed(rank, self._death_error())
            return
        state = self.state(instance.comm.comm_id, rank)
        if instance.seq > state.launched_seq:
            raise ReconfigurationError(
                f"relaunch of seq {instance.seq} that was never launched "
                f"(cursor {state.launched_seq})"
            )
        if instance.aborted:
            return
        self.launches += 1
        instance.rank_launch(rank, state.strategy)

    # ------------------------------------------------------------------
    # reconfiguration protocol (Figure 4)
    # ------------------------------------------------------------------
    def receive_reconfig(self, rank: int, session: "ReconfigSession") -> None:
        """Handle a reconfiguration request arriving at this proxy.

        With the barrier enabled, the proxy stalls subsequent launches and
        contributes its last-launched sequence number to the control-ring
        AllGather.  With the barrier disabled (the broken protocol on the
        left of Figure 4), it applies the update immediately — which the
        consistency checker catches when ranks end up disagreeing.
        """
        if not self.alive:
            # A dead proxy never contributes; the session's barrier
            # timeout names this rank as missing.
            return
        state = self.state(session.comm.comm_id, rank)
        if state.session is not None:
            raise ReconfigurationError(
                f"rank {rank} of comm {session.comm.comm_id} already has a "
                "reconfiguration in progress"
            )
        state.session = session
        if session.barrier_enabled:
            state.holding = True
            state.hold_since = session.comm.sim.now
            session.contribute(rank, state.launched_seq)
        else:
            state.strategy = session.new_strategy
            state.session = None
            self.reconfigurations += 1
            session.mark_applied(rank)

    def barrier_resolved(
        self, rank: int, session: "ReconfigSession", max_seq: int
    ) -> None:
        """Apply the update once the AllGather resolved to ``max_seq``.

        Queued collectives with sequence numbers up to ``max_seq`` are
        launched under the *old* strategy first (another rank already
        launched them), then the strategy switches, then the rest of the
        queue drains under the new one.
        """
        if not self.alive:
            return
        state = self.state(session.comm.comm_id, rank)
        if state.session is not session or not state.holding:
            raise ReconfigurationError(
                f"barrier resolved for rank {rank} that was not holding"
            )
        while state.pending and state.pending[0].seq <= max_seq:
            self._launch(state, rank, state.pending.popleft(), allow_holding=True)
        if state.launched_seq < max_seq:
            # The pre-barrier collectives have not reached this proxy yet
            # (they are upstream on the communicator stream): stay holding
            # and catch up as they arrive.
            state.catch_up_max = max_seq
            return
        self._apply(state, rank)

    def _apply(self, state: _RankState, rank: int) -> None:
        session = state.session
        if session is None:
            raise ReconfigurationError("apply without an active session")
        if self.telemetry is not None and state.hold_since is not None:
            self.telemetry.metrics.histogram(
                "mccs_proxy_hold_seconds",
                "Per-rank time spent holding launches during reconfiguration.",
            ).observe(session.comm.sim.now - state.hold_since)
        state.strategy = session.new_strategy
        state.holding = False
        state.catch_up_max = None
        state.session = None
        state.hold_since = None
        self.reconfigurations += 1
        session.mark_applied(rank)
        while state.pending:
            self._launch(state, rank, state.pending.popleft())

    def abort_reconfig(self, rank: int, session: "ReconfigSession") -> None:
        """Tear down a timed-out reconfiguration session for ``rank``.

        The proxy keeps its *old* strategy, stops holding, and drains the
        launches it queued behind the barrier — if their paths are broken
        they fail with a typed error during injection and failure recovery
        takes over from there.
        """
        if not self.alive:
            return
        state = self._ranks.get((session.comm.comm_id, rank))
        if state is None or state.session is not session:
            return
        state.session = None
        state.holding = False
        state.catch_up_max = None
        state.hold_since = None
        while state.pending:
            self._launch(state, rank, state.pending.popleft())
