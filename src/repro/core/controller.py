"""The external centralized controller (§4.3).

"To enable an external controller (e.g., centralized manager) to schedule
the collective communication across all applications on the cluster, the
MCCS service needs to provide an interface for exposing necessary
information ... The controller consumes this data to make a policy
decision."

:class:`CentralManager` is that controller: it reads the deployment's
management API (communicator descriptions, traces, background-flow
reports), runs the §4.3 policies, and pushes decisions back down as
reconfigurations, route maps and traffic schedules.  Rescheduling happens
"only when a job joins or exits" (or when a switch agent reports a
persistent background flow), matching §6.5.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..cluster.gpu import GpuDevice
from ..netsim.background import BackgroundTrafficManager
from ..netsim.errors import PolicyError
from .communicator import ServiceCommunicator
from .deployment import MccsDeployment
from .policies.ffa import fair_flow_assignment
from .policies.pfa import priority_flow_assignment
from .policies.ring_order import locality_ring_order
from .policies.ts import compute_traffic_schedule
from .strategy import CollectiveStrategy


@dataclass
class PolicyReport:
    """What a controller pass decided, plus how long deciding took."""

    policy: str
    reconfigured_comms: List[int] = field(default_factory=list)
    compute_seconds: float = 0.0


class CentralManager:
    """Cluster-wide policy brain for one MCCS deployment."""

    def __init__(
        self,
        deployment: MccsDeployment,
        *,
        background: Optional[BackgroundTrafficManager] = None,
    ) -> None:
        self.deployment = deployment
        self.cluster = deployment.cluster
        self.background = background
        self.reports: List[PolicyReport] = []

    def _record_report(self, report: PolicyReport) -> PolicyReport:
        """File a policy pass in the reports list and the telemetry
        decision log (the §4.3 "policy decision" trail)."""
        self.reports.append(report)
        hub = self.deployment.telemetry()
        hub.metrics.counter(
            "mccs_policy_runs_total", "Controller policy passes, by policy."
        ).inc(policy=report.policy)
        hub.events.log(
            self.deployment.sim.now,
            "policy_run",
            f"{report.policy} reconfigured "
            f"{len(report.reconfigured_comms)} communicator(s)",
            policy=report.policy,
            reconfigured=list(report.reconfigured_comms),
            compute_seconds=report.compute_seconds,
        )
        return report

    # ------------------------------------------------------------------
    # admission: provider-optimized initial strategy
    # ------------------------------------------------------------------
    def initial_strategy(
        self, gpus: Sequence[GpuDevice], channels: int
    ) -> CollectiveStrategy:
        """Locality-aware ring from day one (the provider knows the
        topology at communicator-creation time)."""
        from ..collectives.ring import RingSchedule

        order = locality_ring_order(self.cluster, gpus)
        return CollectiveStrategy(
            ring=RingSchedule(tuple(order)), channels=channels
        )

    def admit(
        self,
        app_id: str,
        gpus: Sequence[GpuDevice],
        *,
        channels: Optional[int] = None,
        datapath_tag: Optional[str] = None,
    ) -> ServiceCommunicator:
        """Create a communicator already carrying the optimized ring.

        ``datapath_tag`` pins the communicator's ECMP namespace so its
        path draws are independent of process history (how many
        communicators existed before) — experiments that assert on
        routing-sensitive outcomes should pass one.
        """
        from ..baselines.nccl import default_channels

        if channels is None:
            channels = default_channels(gpus)
        return self.deployment.create_communicator(
            app_id, gpus, channels=channels,
            strategy=self.initial_strategy(gpus, channels),
            datapath_tag=datapath_tag,
        )

    def manage_admissions(self) -> None:
        """Give every future tenant-created communicator a locality ring.

        Installs this controller as the deployment's strategy factory, so
        ``MccsClient.create_communicator`` transparently benefits from the
        provider's topology knowledge — the tenant never learns the ring.
        """
        self.deployment.strategy_factory = (
            lambda app_id, gpus, channels: self.initial_strategy(gpus, channels)
        )

    def enable_autotuning(self, config=None, **kwargs):
        """Arm measurement-driven strategy autotuning cluster-wide.

        Delegates to :meth:`MccsDeployment.enable_autotuning` and files
        the decision in the §4.3 policy trail; returns the
        :class:`~repro.autotune.AutoTuner`.
        """
        tuner = self.deployment.enable_autotuning(config, **kwargs)
        self._record_report(PolicyReport(policy="autotune"))
        return tuner

    # ------------------------------------------------------------------
    # Example #1: locality-aware rings
    # ------------------------------------------------------------------
    def apply_ring_policy(self, **reconfig_kw) -> PolicyReport:
        """Reconfigure any communicator whose ring is not locality-optimal."""
        started = time.perf_counter()
        report = PolicyReport(policy="locality-ring")
        for comm in self.deployment.communicators():
            order = tuple(locality_ring_order(self.cluster, comm.gpus))
            if comm.strategy.ring.order != order:
                self.deployment.reconfigure(
                    comm.comm_id, ring=order, **reconfig_kw
                )
                report.reconfigured_comms.append(comm.comm_id)
        report.compute_seconds = time.perf_counter() - started
        return self._record_report(report)

    # ------------------------------------------------------------------
    # Examples #2 and #3: flow assignment
    # ------------------------------------------------------------------
    def apply_flow_policy(
        self,
        policy: str = "ffa",
        *,
        high_priority_apps: Sequence[str] = (),
        reserved_routes: Optional[Set[int]] = None,
        **reconfig_kw,
    ) -> PolicyReport:
        """Recompute and install route assignments for every communicator.

        ``policy`` is one of ``"ecmp"`` (clear all assignments — the
        ablation baseline), ``"ffa"`` or ``"pfa"``.
        """
        started = time.perf_counter()
        comms = self.deployment.communicators()
        if policy == "ecmp":
            assignments = {c.comm_id: {} for c in comms}
        elif policy == "ffa":
            assignments = fair_flow_assignment(self.cluster, comms)
        elif policy == "pfa":
            assignments = priority_flow_assignment(
                self.cluster,
                comms,
                high_priority_apps=list(high_priority_apps),
                reserved_routes=reserved_routes,
            )
        else:
            raise PolicyError(f"unknown flow policy {policy!r}")
        report = PolicyReport(policy=policy)
        for comm in comms:
            routes = assignments.get(comm.comm_id, {})
            if comm.strategy.route_map() != routes:
                self.deployment.reconfigure(
                    comm.comm_id, routes=routes, **reconfig_kw
                )
                report.reconfigured_comms.append(comm.comm_id)
        report.compute_seconds = time.perf_counter() - started
        return self._record_report(report)

    # ------------------------------------------------------------------
    # Example #4: traffic scheduling
    # ------------------------------------------------------------------
    def prioritize_with_ts(
        self,
        app_id: str,
        *,
        guard: float = 0.0,
        affected_apps: Optional[Sequence[str]] = None,
    ) -> PolicyReport:
        """Gate other tenants' traffic into the prioritized tenant's idle
        cycles, using the tracing API.

        ``affected_apps`` restricts which tenants are gated (the §6.4
        scenario prioritizes B over C "without affecting A", so only C is
        gated); by default every other tenant is.
        """
        started = time.perf_counter()
        traces = self.deployment.traces.traces_of_app(app_id)
        if not traces:
            raise PolicyError(f"no traces for app {app_id!r}")
        trace = max(traces, key=lambda t: len(t.records))
        _, schedule = compute_traffic_schedule(trace, guard=guard)
        report = PolicyReport(policy="ts")
        if affected_apps is None:
            others = {
                comm.app_id
                for comm in self.deployment.communicators()
                if comm.app_id != app_id
            }
        else:
            others = set(affected_apps) - {app_id}
        for other in sorted(others):
            self.deployment.set_traffic_schedule(other, schedule)
        report.compute_seconds = time.perf_counter() - started
        return self._record_report(report)

    def clear_traffic_schedules(self) -> None:
        for comm in self.deployment.communicators():
            self.deployment.set_traffic_schedule(comm.app_id, None)

    # ------------------------------------------------------------------
    # background-flow adaptation (the Figure 7 showcase)
    # ------------------------------------------------------------------
    def watch_background(
        self,
        *,
        interval: float = 1.0,
        threshold_gbps: float = 10.0,
        until: float,
    ) -> None:
        """Automate the Figure 7 loop: poll the switch agent's persistent-
        flow report every ``interval`` seconds and re-ring any managed
        communicator that would benefit, until time ``until``.

        The paper leaves monitoring "to external components": "a switch
        agent can be configured to report to a centralized manager when
        there are persistent large flows that are not managed by MCCS".
        This is that manager-side loop.
        """
        if self.background is None:
            raise PolicyError("no background traffic manager attached")
        sim = self.deployment.sim

        def tick() -> None:
            if sim.now > until:
                return
            if self.background.report_persistent_flows(threshold_gbps):
                for comm in self.deployment.communicators():
                    try:
                        self.adapt_to_background(comm.comm_id)
                    except Exception:
                        # a communicator mid-reconfiguration keeps running
                        # under its old strategy until the next poll
                        pass
            sim.call_in(interval, tick)

        sim.call_in(interval, tick)

    def adapt_to_background(self, comm_id: int, **reconfig_kw) -> Optional[object]:
        """React to a switch agent's persistent-flow report by re-ringing.

        Candidate rings (the locality order and its reverse) are scored by
        the background load their inter-host paths would share; if a
        better ring than the current one exists, a reconfiguration is
        issued and the session returned.
        """
        if self.background is None:
            raise PolicyError("no background traffic manager attached")
        loads = self.background.loaded_links()
        comm = self.deployment.communicator(comm_id)
        candidates = []
        base = locality_ring_order(self.cluster, comm.gpus)
        for order in (tuple(base), tuple(reversed(base))):
            candidates.append((self._background_overlap(comm, order, loads), order))
        candidates.sort(key=lambda item: item[0])
        best_score, best_order = candidates[0]
        current_score = self._background_overlap(
            comm, comm.strategy.ring.order, loads
        )
        if best_score < current_score - 1e-9:
            return self.deployment.reconfigure(
                comm.comm_id, ring=best_order, **reconfig_kw
            )
        return None

    def _background_overlap(
        self,
        comm: ServiceCommunicator,
        order: Sequence[int],
        loads: Dict[str, float],
    ) -> float:
        """Total background Gbps sharing links with the ring's flows."""
        total = 0.0
        world = len(order)
        for i in range(world):
            src = comm.gpus[order[i]]
            dst = comm.gpus[order[(i + 1) % world]]
            if src.host_id == dst.host_id:
                continue
            for channel in range(comm.strategy.channels):
                src_nic = self.cluster.nic_of_channel(src, channel)
                dst_nic = self.cluster.nic_of_channel(dst, channel)
                paths = self.cluster.topology.shortest_paths(src_nic, dst_nic)
                # Score the least-loaded route; with route control MCCS
                # would pin the connection there.
                total += min(
                    sum(loads.get(link, 0.0) for link in path) for path in paths
                )
        return total
