"""Example #2: Best-fit fair flow assignment, FFA (§4.3).

"Once the ring configuration for all applications are optimized, the
communication patterns between hosts and hence the set of flows can be
determined. ... We use a slightly modified version of the greedy
heuristics proposed in Hedera, where for each flow we assign it the path
that has minimal excess bandwidth demand.  We round-robin between flows
from different jobs for fairness."

The policy consumes the collective strategy configuration of all
communicators (communication patterns depend only on the strategy, so FFA
knows every flow — every RDMA connection — in the network), and emits a
route id per connection, which MCCS's transport engines realize via
policy-based routing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ...cluster.specs import Cluster
from ...netsim.errors import PolicyError
from ..communicator import ServiceCommunicator

RouteAssignment = Dict[Tuple[int, int, int], int]
"""(src rank, dst rank, channel) -> route id, per communicator."""


@dataclass
class FlowDemand:
    """One inter-host connection that needs a route."""

    comm_id: int
    app_id: str
    src_rank: int
    dst_rank: int
    channel: int
    src_nic: str
    dst_nic: str
    paths: List[List[str]]
    demand: float

    @property
    def key(self) -> Tuple[int, int, int]:
        return (self.src_rank, self.dst_rank, self.channel)


def collect_demands(
    cluster: Cluster, comm: ServiceCommunicator
) -> List[FlowDemand]:
    """Enumerate the inter-host connections implied by a communicator's
    current strategy (ring order x channels)."""
    strategy = comm.strategy
    demands: List[FlowDemand] = []
    for src_rank, dst_rank in strategy.ring.edges():
        src, dst = comm.gpus[src_rank], comm.gpus[dst_rank]
        if src.host_id == dst.host_id:
            continue
        for channel in range(strategy.channels):
            src_nic = cluster.nic_of_channel(src, channel)
            dst_nic = cluster.nic_of_channel(dst, channel)
            paths = cluster.topology.shortest_paths(src_nic, dst_nic)
            nic_cap = min(
                cluster.topology.capacity_of(paths[0][0]),
                cluster.topology.capacity_of(paths[0][-1]),
            )
            demands.append(
                FlowDemand(
                    comm_id=comm.comm_id,
                    app_id=comm.app_id,
                    src_rank=src_rank,
                    dst_rank=dst_rank,
                    channel=channel,
                    src_nic=src_nic,
                    dst_nic=dst_nic,
                    paths=paths,
                    demand=nic_cap,
                )
            )
    return demands


class _LinkLoadTracker:
    """Tracks per-link offered demand for best-fit placement."""

    def __init__(self, cluster: Cluster) -> None:
        self._cap = {
            link_id: link.capacity
            for link_id, link in cluster.topology.links.items()
        }
        self._load: Dict[str, float] = {}

    def utilization_after(self, path: Sequence[str], demand: float) -> float:
        """Highest link utilization on ``path`` if ``demand`` is added."""
        load = self._load
        cap = self._cap
        worst = 0.0
        for link in path:
            u = (load.get(link, 0.0) + demand) / cap[link]
            if u > worst:
                worst = u
        return worst

    def place(self, path: Sequence[str], demand: float) -> None:
        load = self._load
        for link in path:
            load[link] = load.get(link, 0.0) + demand


def _best_fit(
    flow: FlowDemand,
    tracker: _LinkLoadTracker,
    allowed_routes: Optional[Set[int]] = None,
) -> int:
    """Hedera-style best fit: the route with minimal excess demand.

    With utilization as the (capacity-normalized) excess measure, the
    chosen path is the one whose most-loaded link stays lowest after
    placing this flow.  Ties break toward the lowest route id for
    determinism.
    """
    candidates = range(len(flow.paths))
    if allowed_routes is not None:
        candidates = [r for r in candidates if r in allowed_routes]
        if not candidates:
            raise PolicyError(
                f"no permitted route for flow {flow.key} of {flow.app_id}"
            )
    best_route = None
    best_score = None
    for route_id in candidates:
        score = tracker.utilization_after(flow.paths[route_id], flow.demand)
        if best_score is None or score < best_score - 1e-12:
            best_score = score
            best_route = route_id
    assert best_route is not None
    return best_route


def _round_robin(groups: Sequence[List[FlowDemand]]) -> Iterable[FlowDemand]:
    """Interleave flows of different jobs one at a time (fairness)."""
    cursors = [0] * len(groups)
    remaining = sum(len(g) for g in groups)
    while remaining:
        for gi, group in enumerate(groups):
            if cursors[gi] < len(group):
                yield group[cursors[gi]]
                cursors[gi] += 1
                remaining -= 1


def fair_flow_assignment(
    cluster: Cluster,
    comms: Sequence[ServiceCommunicator],
    *,
    allowed_routes_of: Optional[Mapping[str, Set[int]]] = None,
    tracker: Optional[_LinkLoadTracker] = None,
) -> Dict[int, RouteAssignment]:
    """Assign a route id to every inter-host connection of every
    communicator.

    Args:
        cluster: The fabric.
        comms: All managed communicators (the controller's global view).
        allowed_routes_of: Optional per-app route restrictions (used by
            PFA to keep low-priority tenants off reserved routes).
        tracker: Optionally continue filling an existing load tracker
            (PFA places priority tenants first, then everyone else).

    Returns:
        ``{comm_id: {(src_rank, dst_rank, channel): route_id}}``.
    """
    tracker = tracker if tracker is not None else _LinkLoadTracker(cluster)
    by_job: Dict[str, List[FlowDemand]] = {}
    for comm in sorted(comms, key=lambda c: c.comm_id):
        for demand in collect_demands(cluster, comm):
            by_job.setdefault(demand.app_id, []).append(demand)
    assignments: Dict[int, RouteAssignment] = {c.comm_id: {} for c in comms}
    groups = [by_job[j] for j in sorted(by_job)]
    for flow in _round_robin(groups):
        allowed = None
        if allowed_routes_of is not None and flow.app_id in allowed_routes_of:
            allowed = allowed_routes_of[flow.app_id]
        route_id = _best_fit(flow, tracker, allowed)
        tracker.place(flow.paths[route_id], flow.demand)
        assignments[flow.comm_id][flow.key] = route_id
    return assignments
