"""Example #3: Priority flow assignment, PFA (§4.3).

"We modify FFA to allow some routes to be reserved for high priority
applications.  We first fit flows of low priority applications using only
non-reserved routes, and flows of high priority applications are assigned
best routes from all available ones."  In the paper's running example, one
of the two routes between rack A and rack B is dedicated to the
prioritized application.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

from ...cluster.specs import Cluster
from ...netsim.errors import PolicyError
from ..communicator import ServiceCommunicator
from .ffa import RouteAssignment, _LinkLoadTracker, fair_flow_assignment


def priority_flow_assignment(
    cluster: Cluster,
    comms: Sequence[ServiceCommunicator],
    *,
    high_priority_apps: Sequence[str],
    reserved_routes: Optional[Set[int]] = None,
) -> Dict[int, RouteAssignment]:
    """FFA with routes reserved for prioritized tenants.

    Args:
        cluster: The fabric.
        comms: All managed communicators.
        high_priority_apps: Apps allowed on the reserved routes.  Their
            flows are placed first (best fit over *all* routes).
        reserved_routes: Route ids low-priority tenants must avoid;
            defaults to ``{0}`` (one dedicated route, as in the paper's
            rack A/B example).

    Returns:
        ``{comm_id: {(src_rank, dst_rank, channel): route_id}}``.
    """
    if reserved_routes is None:
        reserved_routes = {0}
    high = set(high_priority_apps)
    if not high:
        raise PolicyError("PFA needs at least one prioritized application")
    num_routes = cluster.fabric.num_fabric_paths
    open_routes = {r for r in range(num_routes) if r not in reserved_routes}
    if not open_routes:
        raise PolicyError("PFA cannot reserve every route")

    high_comms = [c for c in comms if c.app_id in high]
    low_comms = [c for c in comms if c.app_id not in high]
    tracker = _LinkLoadTracker(cluster)
    assignments: Dict[int, RouteAssignment] = {}
    # Low-priority flows are restricted to the open routes; prioritized
    # flows see the whole route space (and an emptier network, since the
    # reserved routes carry nothing else).
    assignments.update(
        fair_flow_assignment(
            cluster,
            low_comms,
            allowed_routes_of={c.app_id: open_routes for c in low_comms},
            tracker=tracker,
        )
    )
    assignments.update(
        fair_flow_assignment(cluster, high_comms, tracker=tracker)
    )
    return assignments
