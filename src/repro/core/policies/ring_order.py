"""Example #1: Locality-aware ring configuration (§4.3).

"We group the participant hosts by their locality (e.g., under the same
rack, under the same pod) and then connect them in a sequential order."
The goal is to minimize the number of cross-rack / cross-pod flows, since
links above the leaf tier are oversubscribed.

This module also carries the cross-rack accounting used by Figure 3: the
*cross-rack ratio* of a ring is its number of cross-rack ring edges
normalized by the optimal ring's.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from ...cluster.gpu import GpuDevice
from ...cluster.specs import Cluster


def locality_ring_order(cluster: Cluster, gpus: Sequence[GpuDevice]) -> List[int]:
    """Rank permutation chaining GPUs host-by-host, hosts rack-by-rack.

    Returns the ring order as a list of ranks: ``order[i]`` is the rank at
    ring position ``i``.  Ranks on the same host are adjacent (they ride
    the intra-host channel), hosts in the same rack are adjacent (one
    cross-rack entry/exit per rack), and racks follow in index order.
    """
    by_host: Dict[int, List[int]] = {}
    for rank, gpu in enumerate(gpus):
        by_host.setdefault(gpu.host_id, []).append(rank)
    hosts = sorted(by_host, key=lambda h: (cluster.hosts[h].rack, h))
    order: List[int] = []
    for host in hosts:
        order.extend(sorted(by_host[host]))
    return order


def ring_edges_between_hosts(
    gpus: Sequence[GpuDevice], order: Sequence[int]
) -> List[Tuple[int, int]]:
    """(src host, dst host) for every inter-host ring edge."""
    n = len(order)
    edges = []
    for i in range(n):
        src = gpus[order[i]].host_id
        dst = gpus[order[(i + 1) % n]].host_id
        if src != dst:
            edges.append((src, dst))
    return edges


def cross_rack_flows(
    cluster: Cluster, gpus: Sequence[GpuDevice], order: Sequence[int]
) -> int:
    """Number of ring edges whose endpoints sit in different racks."""
    n = len(order)
    count = 0
    for i in range(n):
        a = cluster.rack_of(gpus[order[i]])
        b = cluster.rack_of(gpus[order[(i + 1) % n]])
        if a != b:
            count += 1
    return count


def optimal_cross_rack_flows(cluster: Cluster, gpus: Sequence[GpuDevice]) -> int:
    """Cross-rack edges of a locality-optimal ring: one per rack spanned
    (zero when the job fits in a single rack)."""
    racks = {cluster.rack_of(g) for g in gpus}
    return len(racks) if len(racks) > 1 else 0


def cross_rack_ratio(
    cluster: Cluster, gpus: Sequence[GpuDevice], order: Sequence[int]
) -> float:
    """Figure 3's metric: cross-rack flows normalized to the optimal ring.

    Single-rack jobs have ratio 1.0 by convention (no cross traffic under
    either ring).
    """
    optimal = optimal_cross_rack_flows(cluster, gpus)
    if optimal == 0:
        return 1.0
    return cross_rack_flows(cluster, gpus, order) / optimal


def random_host_major_order(
    gpus: Sequence[GpuDevice], rng: random.Random
) -> List[int]:
    """A random *host-major* rank order.

    Users launch one process per node, so rank blocks land host by host;
    what is effectively random in practice is the host ordering.  This is
    the "random ring" of Figures 3 and 11.
    """
    by_host: Dict[int, List[int]] = {}
    for rank, gpu in enumerate(gpus):
        by_host.setdefault(gpu.host_id, []).append(rank)
    hosts = list(by_host)
    rng.shuffle(hosts)
    order: List[int] = []
    for host in hosts:
        order.extend(sorted(by_host[host]))
    return order


def expected_random_cross_rack_ratio(
    hosts_per_rack: int, num_hosts: int
) -> float:
    """Closed-form expectation of Figure 3's ratio for a random host ring.

    For a uniformly random circular order of ``num_hosts`` hosts packed
    ``hosts_per_rack`` per rack, the probability that two adjacent hosts
    share a rack is ``(hosts_per_rack - 1) / (num_hosts - 1)``, so the
    expected number of cross-rack edges is
    ``num_hosts * (1 - (hosts_per_rack - 1)/(num_hosts - 1))``, normalized
    by the optimal ring's ``num_racks`` edges.  The ratio approaches
    ``hosts_per_rack`` for large jobs — the 2x and 4x worst cases the
    paper reports for 2 and 4 hosts per rack.
    """
    if num_hosts <= hosts_per_rack:
        return 1.0
    if num_hosts % hosts_per_rack:
        raise ValueError("hosts must pack racks exactly")
    num_racks = num_hosts // hosts_per_rack
    p_same = (hosts_per_rack - 1) / (num_hosts - 1)
    expected_cross = num_hosts * (1.0 - p_same)
    return expected_cross / num_racks
