"""Provider policies built on the MCCS mechanisms (§4.3).

Four concrete policies from the paper:

* Example #1 — :func:`locality_ring_order` (topology-aware rings);
* Example #2 — :func:`fair_flow_assignment` (Hedera-style best fit, FFA);
* Example #3 — :func:`priority_flow_assignment` (reserved routes, PFA);
* Example #4 — :func:`compute_traffic_schedule` (time windows, TS).
"""

from .ffa import FlowDemand, RouteAssignment, collect_demands, fair_flow_assignment
from .pfa import priority_flow_assignment
from .ring_order import (
    cross_rack_flows,
    cross_rack_ratio,
    expected_random_cross_rack_ratio,
    locality_ring_order,
    optimal_cross_rack_flows,
    random_host_major_order,
    ring_edges_between_hosts,
)
from .ts import (
    TrafficAnalysis,
    analyze_trace,
    compute_traffic_schedule,
    schedule_for_others,
)

__all__ = [
    "FlowDemand",
    "RouteAssignment",
    "TrafficAnalysis",
    "analyze_trace",
    "collect_demands",
    "compute_traffic_schedule",
    "cross_rack_flows",
    "cross_rack_ratio",
    "expected_random_cross_rack_ratio",
    "fair_flow_assignment",
    "locality_ring_order",
    "optimal_cross_rack_flows",
    "priority_flow_assignment",
    "random_host_major_order",
    "ring_edges_between_hosts",
    "schedule_for_others",
]
