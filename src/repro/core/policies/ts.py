"""Example #4: Time-window traffic scheduling, TS (§4.3).

"MCCS could enforce a traffic schedule to control when each application
can send out traffic.  In our implementation, we apply a simple time
window based approach inspired by CASSINI to interleave traffic.  TS
invokes MCCS tracing API and requests a trace of a prioritized
application.  TS then analyzes the idle cycles of the application when it
is not issuing collectives.  TS sends a time interval schedule to MCCS
service.  Transport engines in MCCS service then allow other applications
to send traffic only when the prioritized application is idle."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ...netsim.errors import PolicyError
from ..tracing import CommTrace
from ..transport import WindowSchedule


@dataclass(frozen=True)
class TrafficAnalysis:
    """The periodic structure extracted from a prioritized app's trace."""

    period: float
    busy: float
    idle: float
    phase: float  # projected start of the next busy window (absolute time)


def analyze_trace(trace: CommTrace, *, guard: float = 0.0) -> TrafficAnalysis:
    """Extract the iteration period and busy/idle split from a trace.

    The analysis uses medians of the observed communication bursts and
    gaps, which tolerates warmup jitter.  ``guard`` widens the busy window
    on both sides to absorb phase drift.
    """
    period_info = trace.communication_period()
    if period_info is None:
        raise PolicyError(
            f"trace of comm {trace.comm_id} has too few completed "
            "collectives to analyze"
        )
    busy, idle = period_info
    busy = busy + 2 * guard
    period = busy + idle
    if idle <= 0:
        raise PolicyError("prioritized application has no idle cycles")
    # Project the phase from the most recent busy interval start.
    busy_intervals = trace.busy_intervals()
    last_start = busy_intervals[-1][0] - guard
    return TrafficAnalysis(period=period, busy=busy, idle=idle, phase=last_start)


def schedule_for_others(analysis: TrafficAnalysis) -> WindowSchedule:
    """Transmission windows for the *other* tenants.

    They may send only while the prioritized tenant is idle: within each
    period, the open interval starts when the prioritized burst ends.
    """
    return WindowSchedule(
        period=analysis.period,
        open_intervals=((analysis.busy, analysis.period),),
        t0=analysis.phase,
    )


def compute_traffic_schedule(
    trace: CommTrace, *, guard: float = 0.0
) -> Tuple[TrafficAnalysis, WindowSchedule]:
    """End-to-end TS policy: analyze a prioritized trace and emit the
    window schedule to install for every non-prioritized tenant."""
    analysis = analyze_trace(trace, guard=guard)
    return analysis, schedule_for_others(analysis)
