"""Per-host MCCS service: frontend engines, memory, proxy engines.

"MCCS service runs as a trusted, user-space process with access to all
GPUs and NICs on the host" (§3).  One :class:`MccsService` exists per
host.  Each connected application gets a dedicated
:class:`FrontendEngine` bound to its shared-memory command queue; host-
local concerns (memory allocation/validation, per-GPU proxy engines) live
here, while cross-host concerns (communicator creation, collective
fan-out, reconfiguration) are coordinated by
:class:`~repro.core.deployment.MccsDeployment`.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, Optional

from ..cluster.host import Host
from ..cluster.specs import Cluster
from ..netsim.errors import MccsError
from ..telemetry.metrics import WALL_CLOCK_BUCKETS
from .memory import MemoryManager
from .messages import (
    AllocateRequest,
    AllocateResponse,
    CollectiveRequest,
    CommandQueue,
    CreateCommunicatorRequest,
    DestroyCommunicatorRequest,
    FreeRequest,
    P2pRequest,
    Request,
)
from .proxy import ProxyEngine

if TYPE_CHECKING:  # pragma: no cover
    from ..telemetry.hub import TelemetryHub
    from .deployment import MccsDeployment


class FrontendEngine:
    """The dedicated front-end engine of one application on one host.

    It owns the application's command queue and dispatches requests:
    memory management is handled host-locally, communicator and collective
    requests are forwarded to the deployment coordinator.
    """

    def __init__(
        self, service: "MccsService", app_id: str, deployment: "MccsDeployment"
    ) -> None:
        self.service = service
        self.app_id = app_id
        self.deployment = deployment
        self.queue = CommandQueue()
        self.queue.bind(self.handle)
        self.requests_handled = 0
        self.telemetry = service.telemetry

    def handle(self, request: Request) -> object:
        """Dispatch one shim request, timing the shim->service hop.

        Delivery over the shared-memory command queue is modelled as
        instantaneous on the *simulated* clock, so the IPC hop histogram
        is wall-clock: it measures the reproduction's own dispatch cost,
        the closest analogue of the paper's ~2.2us proxy overhead (§6.2).
        """
        self.requests_handled += 1
        if self.telemetry is None:
            return self._dispatch(request)
        started = time.perf_counter()
        kind = type(request).__name__
        try:
            return self._dispatch(request)
        finally:
            self.telemetry.metrics.histogram(
                "mccs_ipc_hop_seconds",
                "Wall-clock shim->frontend dispatch latency, by request type.",
                buckets=WALL_CLOCK_BUCKETS,
            ).observe(time.perf_counter() - started, request=kind)
            self.telemetry.metrics.counter(
                "mccs_requests_total",
                "Shim requests dispatched by frontend engines.",
            ).inc(app=self.app_id, request=kind)

    def _dispatch(self, request: Request) -> object:
        if isinstance(request, AllocateRequest):
            return self.service.allocate(
                self.app_id, request.gpu_global_id, request.size
            )
        if isinstance(request, FreeRequest):
            self.service.free(self.app_id, request.buffer_id)
            return None
        if isinstance(request, CreateCommunicatorRequest):
            return self.deployment.handle_create_communicator(self.app_id, request)
        if isinstance(request, CollectiveRequest):
            return self.deployment.handle_collective(self.app_id, request)
        if isinstance(request, P2pRequest):
            return self.deployment.handle_p2p(self.app_id, request)
        if isinstance(request, DestroyCommunicatorRequest):
            self.deployment.handle_destroy_communicator(self.app_id, request)
            return None
        raise MccsError(f"unknown request type {type(request).__name__}")


class MccsService:
    """The trusted per-host service process."""

    def __init__(
        self,
        cluster: Cluster,
        host: Host,
        telemetry: Optional["TelemetryHub"] = None,
    ) -> None:
        self.cluster = cluster
        self.host = host
        self.telemetry = telemetry
        self.memory = MemoryManager()
        #: one proxy engine per GPU on this host (§4.2)
        self.proxies: Dict[int, ProxyEngine] = {
            gpu.global_id: ProxyEngine(
                host.host_id, gpu.global_id, telemetry=telemetry
            )
            for gpu in host.gpus
        }
        self._frontends: Dict[str, FrontendEngine] = {}

    # ------------------------------------------------------------------
    def frontend_for(self, app_id: str, deployment: "MccsDeployment") -> FrontendEngine:
        """The app's dedicated frontend engine (created on first use)."""
        if app_id not in self._frontends:
            self._frontends[app_id] = FrontendEngine(self, app_id, deployment)
        return self._frontends[app_id]

    def proxy_for(self, gpu_global_id: int) -> ProxyEngine:
        try:
            return self.proxies[gpu_global_id]
        except KeyError:
            raise MccsError(
                f"GPU {gpu_global_id} is not on host {self.host.host_id}"
            ) from None

    # ------------------------------------------------------------------
    # host-local request handling
    # ------------------------------------------------------------------
    def allocate(self, app_id: str, gpu_global_id: int, size: int) -> AllocateResponse:
        gpu = self.cluster.gpu(gpu_global_id)
        if gpu.host_id != self.host.host_id:
            raise MccsError(
                f"allocation for GPU {gpu_global_id} sent to host "
                f"{self.host.host_id}"
            )
        alloc = self.memory.allocate(app_id, gpu, size, self.host.ipc)
        return AllocateResponse(
            buffer_id=alloc.buffer_id, handle=alloc.handle, size=size
        )

    def free(self, app_id: str, buffer_id: int) -> None:
        self.memory.free(app_id, buffer_id, self.host.ipc)
