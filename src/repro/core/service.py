"""Per-host MCCS service: frontend engines, memory, proxy engines.

"MCCS service runs as a trusted, user-space process with access to all
GPUs and NICs on the host" (§3).  One :class:`MccsService` exists per
host.  Each connected application gets a dedicated
:class:`FrontendEngine` bound to its shared-memory command queue; host-
local concerns (memory allocation/validation, per-GPU proxy engines) live
here, while cross-host concerns (communicator creation, collective
fan-out, reconfiguration) are coordinated by
:class:`~repro.core.deployment.MccsDeployment`.

Being a process, the service can *die* without its host dying.
:meth:`MccsService.crash` models exactly that: proxies stop driving
collectives, frontends stop answering, but GPU memory and the host's IPC
exports survive.  :meth:`MccsService.restart` rebuilds the lost state by
replaying the deployment's write-ahead journal
(:mod:`repro.core.journal`), and :meth:`MccsService.upgrade` swaps the
engines live by draining through the §4.2 reconfiguration barrier first.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..cluster.host import Host
from ..cluster.ipc import IpcMemHandle
from ..cluster.specs import Cluster
from ..netsim.errors import (
    JournalError,
    MccsError,
    ServiceCrashedError,
    ServiceUnavailableError,
    UpgradeError,
)
from ..telemetry.metrics import WALL_CLOCK_BUCKETS
from .memory import MemoryManager
from .messages import (
    AllocateRequest,
    AllocateResponse,
    CollectiveRequest,
    CommandQueue,
    CreateCommunicatorRequest,
    DestroyCommunicatorRequest,
    FreeRequest,
    P2pRequest,
    Request,
)
from .proxy import ProxyEngine

if TYPE_CHECKING:  # pragma: no cover
    from ..telemetry.hub import TelemetryHub
    from .deployment import MccsDeployment
    from .reconfig import ReconfigSession

#: Engine names :meth:`MccsService.upgrade` accepts; ``"service"`` swaps
#: both the frontend and the proxy engines.
UPGRADE_COMPONENTS = ("service", "frontend", "proxy")


class FrontendEngine:
    """The dedicated front-end engine of one application on one host.

    It owns the application's command queue and dispatches requests:
    memory management is handled host-locally, communicator and collective
    requests are forwarded to the deployment coordinator.  Data-path
    requests pass through the deployment's admission controller (when
    configured), which bounds each tenant's in-flight work.
    """

    def __init__(
        self,
        service: "MccsService",
        app_id: str,
        deployment: "MccsDeployment",
        generation: int = 0,
    ) -> None:
        self.service = service
        self.app_id = app_id
        self.deployment = deployment
        #: Bumped by live upgrades; lets tests assert the engine object
        #: actually changed while the tenant never noticed.
        self.generation = generation
        self.queue = CommandQueue()
        self.queue.bind(self.handle)
        self.requests_handled = 0
        self.telemetry = service.telemetry

    def handle(self, request: Request) -> object:
        """Dispatch one shim request, timing the shim->service hop.

        Delivery over the shared-memory command queue is modelled as
        instantaneous on the *simulated* clock, so the IPC hop histogram
        is wall-clock: it measures the reproduction's own dispatch cost,
        the closest analogue of the paper's ~2.2us proxy overhead (§6.2).
        """
        self.requests_handled += 1
        if self.telemetry is None:
            return self._dispatch(request)
        started = time.perf_counter()
        kind = type(request).__name__
        try:
            return self._dispatch(request)
        finally:
            self.telemetry.metrics.histogram(
                "mccs_ipc_hop_seconds",
                "Wall-clock shim->frontend dispatch latency, by request type.",
                buckets=WALL_CLOCK_BUCKETS,
            ).observe(time.perf_counter() - started, request=kind)
            self.telemetry.metrics.counter(
                "mccs_requests_total",
                "Shim requests dispatched by frontend engines.",
            ).inc(app=self.app_id, request=kind)

    def _dispatch(self, request: Request) -> object:
        self.service.check_alive()
        if isinstance(request, AllocateRequest):
            return self.service.allocate(
                self.app_id, request.gpu_global_id, request.size
            )
        if isinstance(request, FreeRequest):
            self.service.free(self.app_id, request.buffer_id)
            return None
        if isinstance(request, CreateCommunicatorRequest):
            return self.deployment.handle_create_communicator(self.app_id, request)
        if isinstance(request, CollectiveRequest):
            self._admit()
            return self.deployment.handle_collective(self.app_id, request)
        if isinstance(request, P2pRequest):
            self._admit()
            return self.deployment.handle_p2p(self.app_id, request)
        if isinstance(request, DestroyCommunicatorRequest):
            self.deployment.handle_destroy_communicator(self.app_id, request)
            return None
        raise MccsError(f"unknown request type {type(request).__name__}")

    def _admit(self) -> None:
        if self.deployment.admission is not None:
            self.deployment.admission.admit(self.app_id)


@dataclass
class UpgradeSession:
    """One live upgrade of a host's service engines (Figure 4 drain)."""

    host_id: int
    component: str
    started_at: float
    generation_before: int
    #: Communicators drained through the reconfiguration barrier.
    drained_comms: List[int] = field(default_factory=list)
    done_time: Optional[float] = None
    error: Optional[BaseException] = None
    generation_after: Optional[int] = None

    @property
    def done(self) -> bool:
        return self.done_time is not None

    @property
    def failed(self) -> bool:
        return self.error is not None

    def drain_seconds(self) -> float:
        if self.done_time is None:
            raise UpgradeError(f"upgrade of host {self.host_id} still draining")
        return self.done_time - self.started_at


class MccsService:
    """The trusted per-host service process."""

    def __init__(
        self,
        cluster: Cluster,
        host: Host,
        telemetry: Optional["TelemetryHub"] = None,
    ) -> None:
        self.cluster = cluster
        self.host = host
        self.telemetry = telemetry
        self.memory = MemoryManager()
        #: one proxy engine per GPU on this host (§4.2)
        self.proxies: Dict[int, ProxyEngine] = {
            gpu.global_id: ProxyEngine(
                host.host_id, gpu.global_id, telemetry=telemetry
            )
            for gpu in host.gpus
        }
        self._frontends: Dict[str, FrontendEngine] = {}
        #: Back-reference installed by the deployment; needed for crash,
        #: restart (journal replay) and upgrade (barrier drain).
        self.deployment: Optional["MccsDeployment"] = None
        #: Cleared while the service process is down.
        self.alive = True
        #: Bumped on every restart/upgrade; fresh engines carry it.
        self.generation = 0
        self.crashes = 0
        self.restarts = 0
        self.upgrades: List[UpgradeSession] = []
        self._crash_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    def check_alive(self) -> None:
        if not self.alive:
            raise ServiceUnavailableError(
                f"MCCS service on host {self.host.host_id} is down"
                + (f" ({self._crash_error})" if self._crash_error else "")
            )

    def frontend_for(self, app_id: str, deployment: "MccsDeployment") -> FrontendEngine:
        """The app's dedicated frontend engine (created on first use).

        This is also the shim's reconnect point: the shim re-fetches the
        queue on every call, so after a restart it transparently binds to
        the fresh engine of the new service generation.
        """
        self.check_alive()
        if app_id not in self._frontends:
            self._frontends[app_id] = FrontendEngine(
                self, app_id, deployment, generation=self.generation
            )
        return self._frontends[app_id]

    def proxy_for(self, gpu_global_id: int) -> ProxyEngine:
        try:
            return self.proxies[gpu_global_id]
        except KeyError:
            raise MccsError(
                f"GPU {gpu_global_id} is not on host {self.host.host_id}"
            ) from None

    # ------------------------------------------------------------------
    # host-local request handling
    # ------------------------------------------------------------------
    def allocate(self, app_id: str, gpu_global_id: int, size: int) -> AllocateResponse:
        self.check_alive()
        gpu = self.cluster.gpu(gpu_global_id)
        if gpu.host_id != self.host.host_id:
            raise MccsError(
                f"allocation for GPU {gpu_global_id} sent to host "
                f"{self.host.host_id}"
            )
        alloc = self.memory.allocate(app_id, gpu, size, self.host.ipc)
        self._journal(
            "alloc",
            app=app_id,
            host=self.host.host_id,
            gpu=gpu_global_id,
            buffer_id=alloc.buffer_id,
            size=size,
            handle_id=alloc.handle.handle_id,
        )
        return AllocateResponse(
            buffer_id=alloc.buffer_id, handle=alloc.handle, size=size
        )

    def free(self, app_id: str, buffer_id: int) -> None:
        """Release a buffer.  Typed errors, idempotent under retry:
        unknown ids raise :class:`~repro.errors.InvalidBufferError`, a
        retried free of an already-freed id is a no-op."""
        self.check_alive()
        applied = self.memory.free(app_id, buffer_id, self.host.ipc)
        if applied:
            self._journal(
                "free", app=app_id, host=self.host.host_id, buffer_id=buffer_id
            )

    def _journal(self, op: str, **payload: object) -> None:
        if self.deployment is not None:
            self.deployment.journal.append(
                self.cluster.sim.now, op, **payload
            )

    # ------------------------------------------------------------------
    # crash / restart (journal replay)
    # ------------------------------------------------------------------
    def crash(self, error: Optional[BaseException] = None) -> None:
        """Kill the service process; the host and its GPUs survive.

        Every proxy engine dies (pending launches fail typed, in-flight
        rank shares of active collectives stall-fail so recovery notices),
        frontend engines vanish, and subsequent shim calls raise
        :class:`ServiceUnavailableError` until :meth:`restart`.
        """
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1
        err = error if error is not None else ServiceCrashedError(
            f"MCCS service on host {self.host.host_id} crashed"
        )
        self._crash_error = err
        # Stall-fail the rank shares this host's proxies were driving: a
        # dead proxy engine stops moving chunks, which peers observe as a
        # stalled collective.  rank_failed routes into failure recovery.
        if self.deployment is not None:
            for proxy in self.proxies.values():
                for (comm_id, rank) in list(proxy._ranks.keys()):
                    comm = self.deployment._comms.get(comm_id)
                    if comm is None:
                        continue
                    for seq in sorted(comm.active_instances):
                        instance = comm.instances[seq]
                        if instance.launch_started and not instance.completed:
                            instance.rank_failed(rank, err)
        for proxy in self.proxies.values():
            proxy.fail(err)
        self._frontends.clear()
        self._journal(
            "service_crash", host=self.host.host_id, generation=self.generation
        )
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "mccs_service_crashes_total",
                "MCCS service process crashes, by host.",
            ).inc(host=f"h{self.host.host_id}")
            self.telemetry.events.log(
                self.cluster.sim.now,
                "service_crashed",
                f"MCCS service on host {self.host.host_id} crashed",
                host=self.host.host_id,
            )
            if self.telemetry.flight is not None:
                self.telemetry.flight.trigger(
                    "crash", self.cluster.sim.now, host=self.host.host_id
                )
        if self.deployment is not None and self.deployment.supervisor is not None:
            self.deployment.supervisor.notify_crash(self)

    def restart(self) -> int:
        """Restart the service, reconstructing state by journal replay.

        The memory manager is rebuilt by re-adopting the device buffers
        and IPC exports that survived the crash (both are host state, not
        service state); proxy engines are re-registered from the
        deployment's live communicators with their launch cursors set to
        each communicator's :meth:`~repro.core.communicator.
        ServiceCommunicator.launch_frontier`.  Returns the number of
        journal records replayed.
        """
        if self.alive:
            return 0
        if self.deployment is None:
            raise MccsError(
                f"service on host {self.host.host_id} has no deployment to "
                "replay the journal from"
            )
        from .journal import replay_journal

        journal = self.deployment.journal
        records = journal.records()
        state = replay_journal(records)
        memory = MemoryManager()
        restored = 0
        for buffer_id, info in state.buffers.items():
            if info["host"] != self.host.host_id:
                continue
            gpu = self.cluster.gpu(info["gpu"])
            buffer = gpu.allocation(buffer_id)
            if buffer is None or buffer.size != info["size"]:
                raise JournalError(
                    f"journal names buffer {buffer_id} on GPU {info['gpu']} "
                    "but the device does not hold it"
                )
            handle = IpcMemHandle(
                handle_id=info["handle"], host_id=self.host.host_id
            )
            memory.adopt(info["app"], buffer, handle)
            restored += 1
        for record in records:
            if (
                record.op == "free"
                and record.payload["host"] == self.host.host_id
            ):
                memory.mark_freed(record.payload["buffer_id"])
        self.memory = memory

        proxies = {
            gpu.global_id: ProxyEngine(
                self.host.host_id, gpu.global_id, telemetry=self.telemetry
            )
            for gpu in self.host.gpus
        }
        self.proxies = proxies
        self.alive = True
        self._crash_error = None
        self.generation += 1
        self.restarts += 1
        for comm in self.deployment.communicators():
            if comm.aborted:
                continue
            frontier = comm.launch_frontier()
            for rank, gpu in enumerate(comm.gpus):
                if gpu.host_id != self.host.host_id:
                    continue
                proxy = proxies[gpu.global_id]
                proxy.register(comm, rank)
                proxy.state(comm.comm_id, rank).launched_seq = frontier
        self._journal(
            "service_restart",
            host=self.host.host_id,
            generation=self.generation,
            replayed=len(records),
        )
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "mccs_service_restarts_total",
                "MCCS service restarts reconstructed from the journal.",
            ).inc(host=f"h{self.host.host_id}")
            self.telemetry.events.log(
                self.cluster.sim.now,
                "service_restarted",
                f"host {self.host.host_id} gen {self.generation}: replayed "
                f"{len(records)} journal record(s), {restored} buffer(s)",
                host=self.host.host_id,
                generation=self.generation,
            )
        return len(records)

    # ------------------------------------------------------------------
    # live upgrade (Figure 4 drain, then engine swap)
    # ------------------------------------------------------------------
    def upgrade(
        self,
        component: str = "service",
        *,
        algorithm: Optional[str] = None,
        barrier_timeout: Optional[float] = None,
        max_retries: int = 20,
        retry_delay: float = 0.002,
        on_done: Optional[Callable[[UpgradeSession], None]] = None,
    ) -> UpgradeSession:
        """Swap this host's engines live; tenants see only a latency blip.

        Every communicator with a rank on this host is drained through
        the §4.2 reconfiguration barrier (``algorithm`` optionally moves
        them to a different algorithm registry entry at the same cut);
        once all barriers resolve, the named engines are replaced by
        fresh objects of the next generation carrying over the quiesced
        per-rank state.  Asynchronous — returns the session immediately;
        drive the simulator to complete it.
        """
        if component not in UPGRADE_COMPONENTS:
            raise UpgradeError(
                f"unknown component {component!r}; expected one of "
                f"{UPGRADE_COMPONENTS}"
            )
        self.check_alive()
        if self.deployment is None:
            raise UpgradeError(
                f"service on host {self.host.host_id} is not deployment-managed"
            )
        deployment = self.deployment
        sim = self.cluster.sim
        session = UpgradeSession(
            host_id=self.host.host_id,
            component=component,
            started_at=sim.now,
            generation_before=self.generation,
        )
        self.upgrades.append(session)
        if self.telemetry is not None:
            self.telemetry.events.log(
                sim.now,
                "upgrade_started",
                f"host {self.host.host_id} upgrading {component}",
                host=self.host.host_id,
                component=component,
            )

        swap_proxies = component in ("service", "proxy")
        swap_frontends = component in ("service", "frontend")
        to_drain = (
            [
                comm
                for comm in deployment.communicators()
                if not comm.aborted
                and any(g.host_id == self.host.host_id for g in comm.gpus)
            ]
            if swap_proxies
            else []
        )
        remaining = {comm.comm_id for comm in to_drain}

        def finish() -> None:
            if session.failed:
                return
            self.generation += 1
            if swap_proxies:
                self._swap_proxy_engines()
            if swap_frontends:
                self._frontends.clear()
            session.done_time = sim.now
            session.generation_after = self.generation
            self._journal(
                "service_upgrade",
                host=self.host.host_id,
                component=component,
                generation=self.generation,
            )
            if self.telemetry is not None:
                self.telemetry.metrics.counter(
                    "mccs_upgrades_total",
                    "Live service upgrades completed, by component.",
                ).inc(host=f"h{self.host.host_id}", component=component)
                self.telemetry.metrics.histogram(
                    "mccs_upgrade_drain_seconds",
                    "Barrier-drain time of live upgrades.",
                ).observe(session.drain_seconds(), component=component)
                self.telemetry.events.log(
                    sim.now,
                    "upgrade_done",
                    f"host {self.host.host_id} {component} now gen "
                    f"{self.generation} (drained {len(session.drained_comms)} "
                    "communicator(s))",
                    host=self.host.host_id,
                    component=component,
                )
            if on_done is not None:
                on_done(session)

        def drain(comm, attempt: int = 0) -> None:
            if session.failed:
                return
            if comm.aborted or comm.destroyed:
                remaining.discard(comm.comm_id)
                if not remaining:
                    finish()
                return

            def drained(_session: "ReconfigSession") -> None:
                session.drained_comms.append(comm.comm_id)
                remaining.discard(comm.comm_id)
                if not remaining:
                    finish()

            def drain_failed(reconfig_session: "ReconfigSession") -> None:
                retry(reconfig_session.error)

            def retry(error: Optional[BaseException]) -> None:
                if attempt + 1 > max_retries:
                    session.error = UpgradeError(
                        f"upgrade of host {self.host.host_id} could not drain "
                        f"comm {comm.comm_id} after {max_retries} attempt(s): "
                        f"{error}"
                    )
                    if on_done is not None:
                        on_done(session)
                    return
                sim.call_in(retry_delay, lambda: drain(comm, attempt + 1))

            try:
                deployment.reconfigure(
                    comm.comm_id,
                    routes=comm.strategy.route_map(),
                    algorithm=algorithm,
                    barrier_timeout=barrier_timeout,
                    on_done=drained,
                    on_failed=drain_failed,
                )
            except MccsError as exc:
                # Another session (recovery, autotuner, the provider) is
                # mid-flight on this communicator: wait and retry.
                retry(exc)

        if not to_drain:
            # Nothing to drain (frontend-only upgrade, or an idle host):
            # swap at the next scheduler tick so the API stays async.
            sim.call_in(0.0, finish)
        else:
            for comm in to_drain:
                drain(comm)
        return session

    def _swap_proxy_engines(self) -> None:
        """Replace every proxy engine, handing over the quiesced state.

        The per-rank state dicts transfer by reference: any barrier
        session still holding the old engine object mutates the same
        :class:`~repro.core.proxy._RankState` entries the new engine
        serves, so the cut is seamless.
        """
        fresh: Dict[int, ProxyEngine] = {}
        for gpu_global_id, old in self.proxies.items():
            engine = ProxyEngine(
                self.host.host_id, gpu_global_id, telemetry=self.telemetry
            )
            engine._ranks = old._ranks
            fresh[gpu_global_id] = engine
        self.proxies = fresh
