"""Fine-grained collective tracing (§4.3).

"The MCCS service can perform fine-grained tracing of collectives issued
by applications to determine properties of their computation and
communication patterns.  The controller consumes this data to make a
policy decision."  The time-window traffic scheduling policy (TS) is the
consumer in the paper: it "invokes MCCS tracing API and requests a trace
of a prioritized application [and] analyzes the idle cycles of the
application when it is not issuing collectives."

Since the telemetry subsystem landed, the source of truth for a
collective's lifecycle is its :class:`~repro.telemetry.spans.Span`: the
:class:`TraceRecord` timestamps are *views* over the span when one is
attached (the normal service path), and plain attributes otherwise (the
lightweight path used by directly-constructed communicators and unit
tests).  Trace buffers are bounded ring buffers — a long-lived service
deployment cannot keep every collective it ever carried.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..collectives.types import Collective
from ..telemetry.ringbuffer import RingBuffer
from ..telemetry.spans import (
    EVENT_FIRST_FLOW_START,
    EVENT_LAST_FLOW_END,
    Span,
)

#: Default per-communicator trace capacity (collectives kept).
DEFAULT_TRACE_CAPACITY = 4096


class TraceRecord:
    """One collective's lifecycle timestamps.

    With a span attached, ``issue_time`` is the span start, ``start_time``
    is the span's first-flow-start event, and ``end_time`` is the span
    end; assignment marks/finishes the span.  Without a span, the fields
    behave as plain attributes.
    """

    __slots__ = ("seq", "kind", "out_bytes", "span",
                 "_issue_time", "_start_time", "_end_time")

    def __init__(
        self,
        seq: int,
        kind: Collective,
        out_bytes: int,
        issue_time: float,
        start_time: Optional[float] = None,
        end_time: Optional[float] = None,
        span: Optional[Span] = None,
    ) -> None:
        self.seq = seq
        self.kind = kind
        self.out_bytes = out_bytes
        self.span = span
        self._issue_time = issue_time
        self._start_time = start_time
        self._end_time = end_time

    # -- span-backed timestamp views -----------------------------------
    @property
    def issue_time(self) -> float:
        if self.span is not None:
            return self.span.start
        return self._issue_time

    @issue_time.setter
    def issue_time(self, value: float) -> None:
        self._issue_time = value
        if self.span is not None:
            self.span.start = value

    @property
    def start_time(self) -> Optional[float]:
        """When the collective's traffic first entered the network."""
        if self.span is not None:
            t = self.span.event_time(EVENT_FIRST_FLOW_START)
            if t is not None:
                return t
        return self._start_time

    @start_time.setter
    def start_time(self, value: Optional[float]) -> None:
        self._start_time = value
        if self.span is not None and value is not None:
            self.span.mark(EVENT_FIRST_FLOW_START, value)

    @property
    def end_time(self) -> Optional[float]:
        if self.span is not None and self.span.end is not None:
            return self.span.end
        return self._end_time

    @end_time.setter
    def end_time(self, value: Optional[float]) -> None:
        self._end_time = value
        if self.span is not None and value is not None and not self.span.finished:
            self.span.mark(EVENT_LAST_FLOW_END, value)
            self.span.finish(value)

    # -- derived quantities --------------------------------------------
    @property
    def completed(self) -> bool:
        return self.end_time is not None

    def _require_end(self) -> float:
        end = self.end_time
        if end is None:
            raise ValueError(f"collective seq={self.seq} still in flight")
        return end

    def duration(self) -> float:
        """Issue-to-completion time, including queueing in the service.

        Alias of :meth:`total_duration`; kept under the historical name.
        """
        return self._require_end() - self.issue_time

    def total_duration(self) -> float:
        """Issue-to-completion time (shim call to last flow drained)."""
        return self.duration()

    def network_duration(self) -> float:
        """Time the collective's traffic actually occupied the network
        (first flow start to last flow end).  Falls back to the issue
        time when no flow-start was recorded (zero-byte collectives)."""
        end = self._require_end()
        start = self.start_time
        return end - (start if start is not None else self.issue_time)

    def queue_delay(self) -> float:
        """Time between issue and the first traffic entering the network
        (stream queueing, proxy holds, datapath latency)."""
        self._require_end()
        start = self.start_time
        if start is None:
            return 0.0
        return start - self.issue_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.completed else "inflight"
        return (
            f"TraceRecord(seq={self.seq}, kind={self.kind.value}, "
            f"issue={self.issue_time:.6f}, {state})"
        )


class CommTrace:
    """Per-communicator trace buffer with idle-cycle analysis.

    The buffer keeps the most recent ``max_records`` collectives;
    ``evicted`` counts what was dropped.
    """

    def __init__(
        self,
        comm_id: int,
        app_id: str,
        max_records: int = DEFAULT_TRACE_CAPACITY,
    ) -> None:
        self.comm_id = comm_id
        self.app_id = app_id
        self._records: RingBuffer[TraceRecord] = RingBuffer(max_records)
        self._by_seq: Dict[int, TraceRecord] = {}

    @property
    def records(self) -> List[TraceRecord]:
        """Retained records, oldest first."""
        return self._records.to_list()

    @property
    def evicted(self) -> int:
        return self._records.evicted

    @property
    def max_records(self) -> int:
        return self._records.capacity

    def record_issue(
        self,
        seq: int,
        kind: Collective,
        out_bytes: int,
        now: float,
        span: Optional[Span] = None,
    ) -> TraceRecord:
        rec = TraceRecord(
            seq=seq, kind=kind, out_bytes=out_bytes, issue_time=now, span=span
        )
        if len(self._records) >= self._records.capacity:
            oldest = self._records[0]
            self._by_seq.pop(oldest.seq, None)
        self._records.append(rec)
        self._by_seq[rec.seq] = rec
        return rec

    def record_for(self, seq: int) -> Optional[TraceRecord]:
        """The record for one collective, or None once evicted."""
        return self._by_seq.get(seq)

    def completed_records(self) -> List[TraceRecord]:
        return [r for r in self._records if r.completed]

    def busy_intervals(self) -> List[Tuple[float, float]]:
        """Merged [start, end) intervals during which collectives ran.

        Intervals run from the moment traffic could enter the network
        (start_time when known, otherwise issue time) to completion.
        """
        spans = sorted(
            (r.start_time if r.start_time is not None else r.issue_time, r.end_time)
            for r in self._records
            if r.end_time is not None
        )
        merged: List[Tuple[float, float]] = []
        for start, end in spans:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged

    def idle_intervals(self) -> List[Tuple[float, float]]:
        """Gaps between consecutive busy intervals (the compute phases)."""
        busy = self.busy_intervals()
        return [
            (busy[i][1], busy[i + 1][0])
            for i in range(len(busy) - 1)
            if busy[i + 1][0] > busy[i][1]
        ]

    def communication_period(self) -> Optional[Tuple[float, float]]:
        """Estimated (busy, idle) durations of the steady-state iteration.

        Training loops are periodic: each iteration has a communication
        burst followed by a compute (idle-for-the-network) phase.  We take
        medians over the observed intervals, which is robust to warmup
        outliers.  Returns None when there is not enough signal.
        """
        busy = self.busy_intervals()
        idle = self.idle_intervals()
        if len(busy) < 2 or not idle:
            return None
        busy_durations = sorted(e - s for s, e in busy)
        idle_durations = sorted(e - s for s, e in idle)
        return (
            busy_durations[len(busy_durations) // 2],
            idle_durations[len(idle_durations) // 2],
        )


class TraceStore:
    """All communicator traces of one deployment, queryable by the
    management API."""

    def __init__(self, max_records_per_comm: int = DEFAULT_TRACE_CAPACITY) -> None:
        self.max_records_per_comm = max_records_per_comm
        self._traces: Dict[int, CommTrace] = {}

    def trace_for(self, comm_id: int, app_id: str) -> CommTrace:
        if comm_id not in self._traces:
            self._traces[comm_id] = CommTrace(
                comm_id=comm_id,
                app_id=app_id,
                max_records=self.max_records_per_comm,
            )
        return self._traces[comm_id]

    def get(self, comm_id: int) -> Optional[CommTrace]:
        return self._traces.get(comm_id)

    def traces_of_app(self, app_id: str) -> List[CommTrace]:
        return [t for t in self._traces.values() if t.app_id == app_id]

    def all(self) -> List[CommTrace]:
        return list(self._traces.values())
