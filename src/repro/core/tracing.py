"""Fine-grained collective tracing (§4.3).

"The MCCS service can perform fine-grained tracing of collectives issued
by applications to determine properties of their computation and
communication patterns.  The controller consumes this data to make a
policy decision."  The time-window traffic scheduling policy (TS) is the
consumer in the paper: it "invokes MCCS tracing API and requests a trace
of a prioritized application [and] analyzes the idle cycles of the
application when it is not issuing collectives."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..collectives.types import Collective


@dataclass
class TraceRecord:
    """One collective's lifecycle timestamps."""

    seq: int
    kind: Collective
    out_bytes: int
    issue_time: float
    start_time: Optional[float] = None
    end_time: Optional[float] = None

    @property
    def completed(self) -> bool:
        return self.end_time is not None

    def duration(self) -> float:
        if self.end_time is None:
            raise ValueError(f"collective seq={self.seq} still in flight")
        return self.end_time - self.issue_time


@dataclass
class CommTrace:
    """Per-communicator trace buffer with idle-cycle analysis."""

    comm_id: int
    app_id: str
    records: List[TraceRecord] = field(default_factory=list)

    def record_issue(self, seq: int, kind: Collective, out_bytes: int, now: float) -> TraceRecord:
        rec = TraceRecord(seq=seq, kind=kind, out_bytes=out_bytes, issue_time=now)
        self.records.append(rec)
        return rec

    def completed_records(self) -> List[TraceRecord]:
        return [r for r in self.records if r.completed]

    def busy_intervals(self) -> List[Tuple[float, float]]:
        """Merged [start, end) intervals during which collectives ran.

        Intervals run from the moment traffic could enter the network
        (start_time when known, otherwise issue time) to completion.
        """
        spans = sorted(
            (r.start_time if r.start_time is not None else r.issue_time, r.end_time)
            for r in self.records
            if r.end_time is not None
        )
        merged: List[Tuple[float, float]] = []
        for start, end in spans:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged

    def idle_intervals(self) -> List[Tuple[float, float]]:
        """Gaps between consecutive busy intervals (the compute phases)."""
        busy = self.busy_intervals()
        return [
            (busy[i][1], busy[i + 1][0])
            for i in range(len(busy) - 1)
            if busy[i + 1][0] > busy[i][1]
        ]

    def communication_period(self) -> Optional[Tuple[float, float]]:
        """Estimated (busy, idle) durations of the steady-state iteration.

        Training loops are periodic: each iteration has a communication
        burst followed by a compute (idle-for-the-network) phase.  We take
        medians over the observed intervals, which is robust to warmup
        outliers.  Returns None when there is not enough signal.
        """
        busy = self.busy_intervals()
        idle = self.idle_intervals()
        if len(busy) < 2 or not idle:
            return None
        busy_durations = sorted(e - s for s, e in busy)
        idle_durations = sorted(e - s for s, e in idle)
        return (
            busy_durations[len(busy_durations) // 2],
            idle_durations[len(idle_durations) // 2],
        )


class TraceStore:
    """All communicator traces of one deployment, queryable by the
    management API."""

    def __init__(self) -> None:
        self._traces: Dict[int, CommTrace] = {}

    def trace_for(self, comm_id: int, app_id: str) -> CommTrace:
        if comm_id not in self._traces:
            self._traces[comm_id] = CommTrace(comm_id=comm_id, app_id=app_id)
        return self._traces[comm_id]

    def get(self, comm_id: int) -> Optional[CommTrace]:
        return self._traces.get(comm_id)

    def traces_of_app(self, app_id: str) -> List[CommTrace]:
        return [t for t in self._traces.values() if t.app_id == app_id]

    def all(self) -> List[CommTrace]:
        return list(self._traces.values())
