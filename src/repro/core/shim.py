"""The MCCS shim library — what applications link against (§3, §4.1).

The shim keeps NCCL's programming model: allocate GPU buffers, create a
communicator over your GPUs, enqueue collectives against a CUDA stream.
Underneath, every call becomes a command-queue request to the host's MCCS
service:

* ``alloc`` asks the service to allocate and opens the returned IPC memory
  handle to obtain the device pointer;
* ``free`` closes the IPC handle *before* forwarding the deallocation;
* collectives pass ``(buffer id, offset)`` references — never raw
  pointers — which the service validates against live allocations;
* stream ordering is preserved by the event bridge of
  :mod:`repro.core.sync`.

Like the rest of the reproduction, one :class:`MccsClient` drives all of
an application's ranks (collapsed-driver style).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Union

import numpy as np

from ..cluster.gpu import DeviceBuffer, Event, GpuDevice, Stream
from ..cluster.ipc import IpcMemHandle
from ..collectives.types import Collective, ReduceOp
from ..netsim.errors import (
    AdmissionRejectedError,
    InvalidBufferError,
    MccsError,
    ServiceUnavailableError,
)
from .communicator import CollectiveInstance
from .deployment import MccsDeployment
from .messages import (
    AllocateRequest,
    AllocateResponse,
    BufferRef,
    CollectiveRequest,
    CollectiveResponse,
    CreateCommunicatorRequest,
    CreateCommunicatorResponse,
    DestroyCommunicatorRequest,
    FreeRequest,
)
from .sync import export_snapshot


@dataclass
class MccsBuffer:
    """A device allocation obtained through the shim.

    The application received the device pointer by opening the service's
    IPC handle; compute kernels may use it freely, while collectives refer
    to it by ``(buffer_id, offset)``.
    """

    client: "MccsClient"
    gpu: GpuDevice
    buffer_id: int
    size: int
    handle: IpcMemHandle
    device_buffer: DeviceBuffer
    freed: bool = False

    def view(self, dtype=np.float32, offset: int = 0, count: Optional[int] = None) -> np.ndarray:
        """Typed numpy view of the device memory (the 'device pointer')."""
        return self.device_buffer.view(dtype, offset, count)

    def ref(self, offset: int = 0, nbytes: Optional[int] = None) -> BufferRef:
        """Reference a byte range for use in a collective."""
        if nbytes is None:
            nbytes = self.size - offset
        return BufferRef(buffer_id=self.buffer_id, offset=offset, nbytes=nbytes)


@dataclass
class MccsCommunicator:
    """Client-side communicator handle (mirrors ncclComm_t)."""

    client: "MccsClient"
    comm_id: int
    gpus: List[GpuDevice]
    done_event: Event

    @property
    def world(self) -> int:
        return len(self.gpus)


@dataclass
class ShimRetryPolicy:
    """Client-side resilience knobs (capped exponential backoff + jitter).

    A shim call that hits a down service (:class:`ServiceUnavailableError`)
    is re-queued on the *simulated* clock — collectives are often issued
    from completion callbacks in the middle of a run, so blocking retries
    are impossible — and reissued against whatever frontend engine the
    restarted service provides.  Admission sheds are provider *decisions*
    and are never retried.
    """

    max_retries: int = 8
    backoff_base: float = 0.002
    backoff_factor: float = 2.0
    backoff_cap: float = 0.05
    #: Each delay is multiplied by ``1 + uniform(0, jitter)`` so a fleet
    #: of retrying tenants does not stampede the restarted service.
    jitter: float = 0.5

    def delay(self, attempt: int, rng: random.Random) -> float:
        base = min(
            self.backoff_base * self.backoff_factor**attempt,
            self.backoff_cap,
        )
        return base * (1.0 + self.jitter * rng.random())


@dataclass
class ClientCollective:
    """Client-side view of one issued collective.

    While the service is down the collective may sit in the shim's retry
    queue: ``instance`` is ``None`` and :attr:`pending` is true.  It
    resolves to either a live instance (reissued after the restart) or a
    typed ``error`` — a shim collective never silently hangs.
    """

    comm: MccsCommunicator
    seq: int
    kind: Collective
    out_bytes: int
    instance: Optional[CollectiveInstance] = None
    error: Optional[BaseException] = None
    #: Reissue attempts this collective consumed (0 = first try worked).
    retries: int = 0

    @property
    def pending(self) -> bool:
        """Still waiting in the shim's retry queue."""
        return self.instance is None and self.error is None

    @property
    def failed(self) -> bool:
        if self.error is not None:
            return True
        return self.instance is not None and self.instance.aborted

    @property
    def completed(self) -> bool:
        return self.instance is not None and self.instance.completed

    def duration(self) -> float:
        if self.instance is None:
            raise MccsError(
                f"collective never reached the service: {self.error}"
                if self.error is not None
                else "collective still queued for reissue"
            )
        return self.instance.duration()

    @property
    def end_time(self) -> Optional[float]:
        return self.instance.end_time if self.instance is not None else None


@dataclass
class _PendingIssue:
    """One collective waiting in the per-communicator reissue queue."""

    collective: ClientCollective
    request: CollectiveRequest
    stream: Optional[Stream]
    on_complete: Optional[Callable[[CollectiveInstance, float], None]]
    attempt: int = 0


BufferArg = Union[MccsBuffer, BufferRef]


class MccsClient:
    """The shim library instance of one application."""

    def __init__(
        self,
        deployment: MccsDeployment,
        app_id: str,
        retry: Optional[ShimRetryPolicy] = None,
    ) -> None:
        self.deployment = deployment
        self.app_id = app_id
        self.cluster = deployment.cluster
        self.buffers: Dict[int, MccsBuffer] = {}
        self.communicators: Dict[int, MccsCommunicator] = {}
        self.retry = retry if retry is not None else ShimRetryPolicy()
        # Deterministic jitter: seeded from the app id (crc32, not hash()
        # — Python string hashes vary between runs).
        self._rng = random.Random(zlib.crc32(app_id.encode()))
        #: comm_id -> FIFO of collectives awaiting reissue.  Program order
        #: is preserved: while the queue is non-empty, new collectives on
        #: that communicator join the back instead of being issued.
        self._reissue: Dict[int, List[_PendingIssue]] = {}
        self._pump_scheduled: Set[int] = set()
        self.retries_total = 0
        self.giveups_total = 0

    # ------------------------------------------------------------------
    def _queue_for(self, gpu: GpuDevice):
        service = self.deployment.service_of_gpu(gpu)
        return service.frontend_for(self.app_id, self.deployment).queue

    def _count_call(self, call: str) -> None:
        self.deployment.telemetry().metrics.counter(
            "mccs_shim_calls_total",
            "Shim API calls, by app and call.",
        ).inc(app=self.app_id, call=call)

    # ------------------------------------------------------------------
    # memory management
    # ------------------------------------------------------------------
    def alloc(self, gpu: GpuDevice, size: int) -> MccsBuffer:
        """Allocate ``size`` bytes on ``gpu`` through the MCCS service."""
        self._count_call("alloc")
        response = self._queue_for(gpu).call(
            AllocateRequest(gpu_global_id=gpu.global_id, size=size)
        )
        assert isinstance(response, AllocateResponse)
        host = self.cluster.hosts[gpu.host_id]
        device_buffer = host.ipc.open_memory(response.handle)
        buf = MccsBuffer(
            client=self,
            gpu=gpu,
            buffer_id=response.buffer_id,
            size=response.size,
            handle=response.handle,
            device_buffer=device_buffer,
        )
        self.buffers[buf.buffer_id] = buf
        return buf

    def free(self, buf: MccsBuffer) -> None:
        """Release a buffer: close the IPC handle, then tell the service.

        The order matters — §4.1: "the shim is responsible for closing the
        inter-process memory handle before forwarding the request".
        A free that hits a down service is retried in the background once
        the service restarts (the service-side free is idempotent, so a
        retry can never double-release).
        """
        if buf.freed:
            raise InvalidBufferError(
                f"double free of buffer {buf.buffer_id} by {self.app_id!r}"
            )
        self._count_call("free")
        host = self.cluster.hosts[buf.gpu.host_id]
        host.ipc.close_memory(buf.handle)
        try:
            self._queue_for(buf.gpu).call(FreeRequest(buffer_id=buf.buffer_id))
        except ServiceUnavailableError:
            self._count_retry()
            self._retry_free(buf, attempt=0)
        buf.freed = True
        del self.buffers[buf.buffer_id]

    def _retry_free(self, buf: MccsBuffer, attempt: int) -> None:
        """Fire-and-forget reissue of a FreeRequest after an outage."""
        if attempt >= self.retry.max_retries:
            self._count_giveup("free")
            return

        def fire() -> None:
            try:
                self._queue_for(buf.gpu).call(
                    FreeRequest(buffer_id=buf.buffer_id)
                )
            except ServiceUnavailableError:
                self._count_retry()
                self._retry_free(buf, attempt + 1)
            except InvalidBufferError:
                # The original free did land (or replay marked it freed):
                # idempotence means there is nothing left to do.
                pass

        self.cluster.sim.call_in(
            self.retry.delay(attempt, self._rng), fire
        )

    # ------------------------------------------------------------------
    # communicator management
    # ------------------------------------------------------------------
    def create_communicator(self, gpus: Sequence[GpuDevice]) -> MccsCommunicator:
        """Create a communicator; rank i is ``gpus[i]``."""
        self._count_call("create_communicator")
        response = self._queue_for(gpus[0]).call(
            CreateCommunicatorRequest(
                gpu_global_ids=tuple(g.global_id for g in gpus)
            )
        )
        assert isinstance(response, CreateCommunicatorResponse)
        root_host = self.cluster.hosts[gpus[0].host_id]
        done_event = root_host.ipc.open_event(response.done_event)
        comm = MccsCommunicator(
            client=self,
            comm_id=response.comm_id,
            gpus=list(gpus),
            done_event=done_event,
        )
        self.communicators[comm.comm_id] = comm
        return comm

    def adopt_communicator(self, comm_id: int) -> MccsCommunicator:
        """Client-side handle for a communicator the provider pre-created
        for this application (e.g. via ``CentralManager.admit``)."""
        service_comm = self.deployment.communicator(comm_id)
        if service_comm.app_id != self.app_id:
            raise MccsError(
                f"communicator {comm_id} belongs to {service_comm.app_id!r}"
            )
        comm = MccsCommunicator(
            client=self,
            comm_id=comm_id,
            gpus=list(service_comm.gpus),
            done_event=service_comm.comm_event,
        )
        self.communicators[comm_id] = comm
        return comm

    def adopt_buffer(self, buffer_id: int) -> MccsBuffer:
        """Client-side handle for a buffer this application already owns
        service-side (e.g. re-attached after a front-end restart).  The
        allocation is validated against the owning service and the IPC
        handle is re-opened, so views see the live device memory."""
        for service in self.deployment.services.values():
            alloc = service.memory.allocations().get(buffer_id)
            if alloc is None:
                continue
            if alloc.app_id != self.app_id:
                raise MccsError(
                    f"buffer {buffer_id} belongs to {alloc.app_id!r}"
                )
            gpu = alloc.buffer.device
            host = self.cluster.hosts[gpu.host_id]
            device_buffer = host.ipc.open_memory(alloc.handle)
            buf = MccsBuffer(
                client=self,
                gpu=gpu,
                buffer_id=buffer_id,
                size=alloc.buffer.size,
                handle=alloc.handle,
                device_buffer=device_buffer,
            )
            self.buffers[buffer_id] = buf
            return buf
        raise MccsError(f"no live allocation for buffer {buffer_id}")

    def destroy_communicator(self, comm: MccsCommunicator) -> None:
        self._count_call("destroy_communicator")
        self._queue_for(comm.gpus[0]).call(
            DestroyCommunicatorRequest(comm_id=comm.comm_id)
        )
        del self.communicators[comm.comm_id]

    def create_stream(self, gpu: GpuDevice, name: Optional[str] = None) -> Stream:
        """An application compute stream on ``gpu``."""
        return gpu.create_stream(name)

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def all_reduce(self, comm: MccsCommunicator, out_bytes: int, **kw) -> ClientCollective:
        return self._collective(comm, Collective.ALL_REDUCE, out_bytes, **kw)

    def all_gather(self, comm: MccsCommunicator, out_bytes: int, **kw) -> ClientCollective:
        return self._collective(comm, Collective.ALL_GATHER, out_bytes, **kw)

    def reduce_scatter(self, comm: MccsCommunicator, out_bytes: int, **kw) -> ClientCollective:
        return self._collective(comm, Collective.REDUCE_SCATTER, out_bytes, **kw)

    def broadcast(self, comm: MccsCommunicator, out_bytes: int, root: int = 0, **kw) -> ClientCollective:
        return self._collective(comm, Collective.BROADCAST, out_bytes, root=root, **kw)

    def reduce(self, comm: MccsCommunicator, out_bytes: int, root: int = 0, **kw) -> ClientCollective:
        return self._collective(comm, Collective.REDUCE, out_bytes, root=root, **kw)

    def send_recv(
        self,
        comm: MccsCommunicator,
        src_rank: int,
        dst_rank: int,
        nbytes: int,
        *,
        send: Optional[BufferArg] = None,
        recv: Optional[BufferArg] = None,
        dtype: str = "float32",
        stream: Optional[Stream] = None,
    ) -> Event:
        """Point-to-point transfer (ncclSend/ncclRecv pair analogue).

        Returns the completion event; with ``stream`` given, the stream
        also waits on it, matching the collective synchronization dance.
        """
        from .messages import P2pRequest, P2pResponse

        self._count_call("send_recv")
        root_host = self.cluster.hosts[comm.gpus[0].host_id]
        stream_event_handle = None
        if stream is not None:
            _, stream_event_handle = export_snapshot(
                stream, root_host.ipc, label=f"{self.app_id}.p2p.pre"
            )
        response = self._queue_for(comm.gpus[0]).call(
            P2pRequest(
                comm_id=comm.comm_id,
                src_rank=src_rank,
                dst_rank=dst_rank,
                nbytes=nbytes,
                send_ref=self._as_ref(send) if send is not None else None,
                recv_ref=self._as_ref(recv) if recv is not None else None,
                dtype=dtype,
                stream_id=stream.stream_id if stream is not None else -1,
                stream_event=stream_event_handle,
            )
        )
        assert isinstance(response, P2pResponse)
        done = root_host.ipc.open_event(response.done_event)
        if stream is not None:
            stream.wait_event(done)
        return done

    def _collective(
        self,
        comm: MccsCommunicator,
        kind: Collective,
        out_bytes: int,
        *,
        send: Optional[Sequence[BufferArg]] = None,
        recv: Optional[Sequence[BufferArg]] = None,
        dtype: str = "float32",
        op: ReduceOp = ReduceOp.SUM,
        root: int = 0,
        stream: Optional[Stream] = None,
        on_complete: Optional[Callable[[CollectiveInstance, float], None]] = None,
    ) -> ClientCollective:
        """Issue one collective through the command queue.

        When ``stream`` is given, the shim records a snapshot event on it
        (so the service waits for the producing computation) and makes it
        wait on the returned completion event (so consumers wait for the
        collective) — the full §4.1 synchronization dance.
        """
        self._count_call(kind.value)
        root_host = self.cluster.hosts[comm.gpus[0].host_id]
        stream_event_handle = None
        if stream is not None:
            _, stream_event_handle = export_snapshot(
                stream, root_host.ipc, label=f"{self.app_id}.pre"
            )
        request = CollectiveRequest(
            comm_id=comm.comm_id,
            kind=kind,
            out_bytes=out_bytes,
            send_refs=tuple(self._as_ref(b) for b in send) if send else (),
            recv_refs=tuple(self._as_ref(b) for b in recv) if recv else (),
            dtype=dtype,
            reduce_op=op,
            root=root,
            stream_id=stream.stream_id if stream is not None else -1,
            stream_event=stream_event_handle,
        )
        collective = ClientCollective(
            comm=comm, seq=-1, kind=kind, out_bytes=out_bytes
        )
        item = _PendingIssue(
            collective=collective,
            request=request,
            stream=stream,
            on_complete=on_complete,
        )
        queue = self._reissue.get(comm.comm_id)
        if queue:
            # Earlier collectives on this communicator are still waiting
            # out an outage; join the back to preserve program order.
            queue.append(item)
            return collective
        try:
            self._issue(item)
        except ServiceUnavailableError:
            self._count_retry()
            self._reissue.setdefault(comm.comm_id, []).append(item)
            self._schedule_pump(comm.comm_id, item.attempt)
        return collective

    def _issue(self, item: _PendingIssue) -> None:
        """One issue attempt; raises ServiceUnavailableError while down."""
        comm = item.collective.comm
        root_host = self.cluster.hosts[comm.gpus[0].host_id]
        response = self._queue_for(comm.gpus[0]).call(item.request)
        assert isinstance(response, CollectiveResponse)
        service_comm = self.deployment.communicator(comm.comm_id)
        instance = service_comm.instances[response.seq]
        item.collective.seq = response.seq
        item.collective.instance = instance
        item.collective.retries = item.attempt
        if item.on_complete is not None:
            self._chain_callback(instance, item.on_complete)
        if item.stream is not None and response.done_event is not None:
            done = root_host.ipc.open_event(response.done_event)
            item.stream.wait_event(done)

    # ------------------------------------------------------------------
    # outage handling: deferred reissue on the simulated clock
    # ------------------------------------------------------------------
    def _schedule_pump(self, comm_id: int, attempt: int) -> None:
        if comm_id in self._pump_scheduled:
            return
        self._pump_scheduled.add(comm_id)
        self.cluster.sim.call_in(
            self.retry.delay(attempt, self._rng),
            lambda: self._pump(comm_id),
        )

    def _pump(self, comm_id: int) -> None:
        """Drain the reissue queue head-first (FIFO preserves seq order)."""
        self._pump_scheduled.discard(comm_id)
        queue = self._reissue.get(comm_id)
        while queue:
            item = queue[0]
            try:
                self._issue(item)
            except ServiceUnavailableError as exc:
                item.attempt += 1
                if item.attempt > self.retry.max_retries:
                    self._fail_issue(item, exc)
                    queue.pop(0)
                    continue
                self._count_retry()
                self._schedule_pump(comm_id, item.attempt)
                return
            except (AdmissionRejectedError, MccsError) as exc:
                # Typed decision or hard error: surface it, never retry.
                self._fail_issue(item, exc)
                queue.pop(0)
                continue
            queue.pop(0)
        self._reissue.pop(comm_id, None)

    def _fail_issue(self, item: _PendingIssue, error: BaseException) -> None:
        item.collective.error = error
        self._count_giveup(item.collective.kind.value)

    def _count_retry(self) -> None:
        self.retries_total += 1
        self.deployment.telemetry().metrics.counter(
            "mccs_shim_retries_total",
            "Shim requests re-queued because the service was unavailable.",
        ).inc(app=self.app_id)

    def _count_giveup(self, call: str) -> None:
        self.giveups_total += 1
        self.deployment.telemetry().metrics.counter(
            "mccs_shim_giveups_total",
            "Shim requests abandoned with a typed error, by call.",
        ).inc(app=self.app_id, call=call)

    @staticmethod
    def _chain_callback(
        instance: CollectiveInstance,
        callback: Callable[[CollectiveInstance, float], None],
    ) -> None:
        previous = instance.on_complete

        def chained(inst: CollectiveInstance, now: float) -> None:
            if previous is not None:
                previous(inst, now)
            callback(inst, now)

        instance.on_complete = chained

    @staticmethod
    def _as_ref(buf: BufferArg) -> BufferRef:
        if isinstance(buf, BufferRef):
            return buf
        return buf.ref()
